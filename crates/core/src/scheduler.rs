//! The resource scheduler: selects the configuration best satisfying user
//! preferences under measured resource conditions.
//!
//! §6.2: "the measured resource characteristics and required user
//! preferences (expressed as allowable value ranges on application quality
//! metrics) are used to prune candidate configurations. Of the
//! configurations that remain, a simple multidimensional optimization
//! approach is used to pick the one that best satisfies the user-specified
//! objective criterion. When resource conditions do not fit the records in
//! the performance database, interpolation (or even extrapolation) of the
//! representative data is used ... If no candidate configurations exist,
//! the next preferred user constraint is examined."
//!
//! # Decision memoization
//!
//! One decision probes the database heavily: the validity-region walk
//! re-evaluates "is `config` still the best choice?" at every sampled
//! axis value, and each such check needs predictions for *every*
//! configuration. Many of those `(config, probe)` pairs repeat (the walk
//! revisits the center point per axis, and the objective comparison needs
//! the full prediction row at each probe), so a `DecisionCtx` shares a
//! per-decision memo: the candidate list is fetched from the database
//! index once, and each distinct probe's prediction row is computed once
//! and reused across `choose_excluding`, the region walk, and the
//! per-probe optimality checks.

use std::collections::HashMap;
use std::sync::Arc;

use obs::Adaptive;

use crate::env::ResourceVector;
use crate::monitor::ValidityRegion;
use crate::param::Configuration;
use crate::perfdb::{PerfDb, PredictMode};
use crate::qos::{Preference, PreferenceList, QosReport};

/// The scheduler's choice.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    pub config: Configuration,
    /// Metrics the database predicts for this choice.
    pub predicted: QosReport,
    /// Index into the preference list that was satisfiable (0 = most
    /// preferred).
    pub preference_rank: usize,
    /// Resource region within which the choice remains valid; handed to
    /// the monitoring agent.
    pub validity: ValidityRegion,
    /// True when no configuration satisfied any preference and this is the
    /// least-violating fallback (see
    /// [`ResourceScheduler::choose_least_violating`]). The runtime treats
    /// such decisions as *degraded* and keeps probing for recovery.
    pub best_effort: bool,
    /// Version of the preference list this decision was computed under
    /// (0 = the preferences have never been mutated). Lets audit tooling
    /// correlate a decision with the `config_set` event that re-ranked the
    /// preferences mid-run.
    pub pref_version: u64,
    /// Version of the performance database this decision priced against
    /// (0 = the profiled database was never refined). Bumped by each
    /// refine hot-swap (see `crate::refine`), so audit tooling can tell
    /// which decisions ran on stale predictions.
    pub db_version: u64,
}

/// The resource scheduler.
///
/// The performance database sits behind an [`Arc`]: scale-out deployments
/// (one `AdaptiveRuntime` per client session, see `visapp::load`) share a
/// single interned database across every scheduler instead of cloning the
/// record store N times. [`ResourceScheduler::new`] still accepts an owned
/// [`PerfDb`] and wraps it; use
/// [`new_shared`](ResourceScheduler::new_shared) to hand several
/// schedulers the same database.
#[derive(Debug)]
pub struct ResourceScheduler {
    /// The performance database behind a live-tunable handle. Every
    /// decision snapshots it once (a single atomic load), so a refine
    /// hot-swap ([`db_handle`](Self::db_handle) + `Adaptive::set`) takes
    /// effect atomically at the next decision: a racing swap yields a
    /// decision priced wholly against the old or wholly against the new
    /// database, never a mix of slices.
    db: Adaptive<Arc<PerfDb>>,
    /// `db`'s version when this scheduler last (re)published the database
    /// itself (obs attachment). Swaps past this baseline are refine
    /// hot-swaps; [`db_version`](Self::db_version) reports their count.
    db_base_version: u64,
    /// User preferences behind a live-tunable handle: register it (via
    /// [`prefs_handle`](Self::prefs_handle)) as the `scheduler.prefs`
    /// config knob and a `Command::Set` re-ranks preferences mid-run.
    /// Decisions snapshot the list once per `choose`, so a racing flip
    /// yields either wholly-old or wholly-new rankings, never a mix.
    prefs: Adaptive<PreferenceList>,
    pub mode: PredictMode,
    /// Workload key to consult in the database.
    pub input: String,
    /// Optional profiling hook timing every decision.
    obs: Option<SchedObs>,
}

/// Pre-registered span target so decision timing stays allocation-free.
#[derive(Debug, Clone)]
struct SchedObs {
    obs: obs::Obs,
    choose_span: obs::MetricId,
}

/// Per-decision working state: the candidate configurations (fetched from
/// the database index once per decision, not once per probe) and a memo of
/// prediction rows keyed by probe point.
struct DecisionCtx {
    /// All configurations profiled for the input (plus, for
    /// [`ResourceScheduler::validity_region`], the config under test when
    /// it is not in the database). Optimality checks compare against every
    /// entry; the choose loop additionally honors `eligible`.
    configs: Vec<Configuration>,
    /// False for configurations excluded from selection (failed steering
    /// negotiation, §6.3). Excluded configs still participate in
    /// optimality comparisons, exactly like the unmemoized code path.
    eligible: Vec<bool>,
    /// probe point -> predictions for each config (parallel to `configs`).
    memo: HashMap<Vec<u64>, Vec<Option<QosReport>>>,
}

/// Memo key: the probe's values, bit-exact. All probes within one decision
/// share the key *set* (they are single-axis perturbations of the same
/// center point), so the values alone identify the probe.
fn probe_key(probe: &ResourceVector) -> Vec<u64> {
    probe.iter().map(|(_, v)| v.to_bits()).collect()
}

/// The memoized prediction row for `probe`, computing it on first use.
/// A free function over the memo field (rather than a `DecisionCtx`
/// method) so callers can keep reading `configs`/`eligible` while the row
/// borrow is live.
fn memoized<'m>(
    memo: &'m mut HashMap<Vec<u64>, Vec<Option<QosReport>>>,
    configs: &[Configuration],
    db: &PerfDb,
    input: &str,
    mode: PredictMode,
    probe: &ResourceVector,
) -> &'m [Option<QosReport>] {
    memo.entry(probe_key(probe))
        .or_insert_with(|| configs.iter().map(|c| db.predict(c, input, probe, mode)).collect())
}

impl ResourceScheduler {
    pub fn new(db: PerfDb, prefs: PreferenceList, input: &str) -> Self {
        Self::new_shared(Arc::new(db), prefs, input)
    }

    /// Build a scheduler over a database shared with other schedulers (no
    /// clone of the record store). Attach any [`obs`](Self::set_obs) hook
    /// to the database *before* sharing it: once the `Arc` has multiple
    /// owners, [`set_obs`](Self::set_obs) can no longer reach inside it.
    pub fn new_shared(db: Arc<PerfDb>, prefs: PreferenceList, input: &str) -> Self {
        ResourceScheduler {
            db: Adaptive::new(db),
            db_base_version: 0,
            prefs: Adaptive::new(prefs),
            mode: PredictMode::Interpolate,
            input: input.into(),
            obs: None,
        }
    }

    /// Snapshot of the current performance database. The `Arc` stays
    /// valid across a concurrent refine hot-swap (it just goes stale).
    pub fn db(&self) -> Arc<PerfDb> {
        Arc::clone(self.db.get())
    }

    /// The live-tunable database handle. The refine engine
    /// (`crate::refine`) publishes re-profiled databases through this
    /// handle; the next decision picks them up atomically.
    pub fn db_handle(&self) -> Adaptive<Arc<PerfDb>> {
        self.db.clone()
    }

    /// How many times the database has been hot-swapped since this
    /// scheduler was built (0 = never refined).
    pub fn db_version(&self) -> u64 {
        self.db.version().saturating_sub(self.db_base_version)
    }

    /// Snapshot of the current preference list. The reference stays valid
    /// (pointing at the snapshot it was read from) even across a
    /// concurrent [`set_prefs`](Self::set_prefs).
    pub fn prefs(&self) -> &PreferenceList {
        self.prefs.get()
    }

    /// Replace the preference list mid-run; takes effect atomically at the
    /// next decision. Returns the new preference version.
    pub fn set_prefs(&self, prefs: PreferenceList) -> u64 {
        self.prefs.set(prefs)
    }

    /// The live-tunable preference handle, for registering as the
    /// `scheduler.prefs` config knob.
    pub fn prefs_handle(&self) -> Adaptive<PreferenceList> {
        self.prefs.clone()
    }

    /// How many times the preference list has been mutated (0 = never).
    pub fn prefs_version(&self) -> u64 {
        self.prefs.version()
    }

    /// Checked constructor: rejects inputs on which every
    /// [`choose`](ResourceScheduler::choose) would trivially return `None`
    /// (no database records for `input`, or an empty preference list).
    pub fn try_new(db: PerfDb, prefs: PreferenceList, input: &str) -> crate::error::Result<Self> {
        Self::try_new_shared(Arc::new(db), prefs, input)
    }

    /// Checked form of [`new_shared`](ResourceScheduler::new_shared).
    pub fn try_new_shared(
        db: Arc<PerfDb>,
        prefs: PreferenceList,
        input: &str,
    ) -> crate::error::Result<Self> {
        if prefs.prefs.is_empty() {
            return Err(crate::error::Error::EmptyPreferences);
        }
        if db.configs(input).is_empty() {
            return Err(crate::error::Error::EmptyDatabase { input: input.into() });
        }
        Ok(Self::new_shared(db, prefs, input))
    }

    /// Oracle accessor: the keys of every configuration profiled for this
    /// scheduler's input — the legal value set of a `decide` event's
    /// `config` field. A decision naming any other key is a bug, whatever
    /// the resource estimate said.
    pub fn config_keys(&self) -> std::collections::BTreeSet<String> {
        self.db.get().configs(&self.input).iter().map(|c| c.key()).collect()
    }

    /// Oracle accessor: how many preference levels this scheduler ranks
    /// over. `decide` events carry `rank < preference_depth()`.
    pub fn preference_depth(&self) -> usize {
        self.prefs.get().prefs.len()
    }

    pub fn with_mode(mut self, mode: PredictMode) -> Self {
        self.mode = mode;
        self
    }

    /// Time every decision into `obs`'s `"scheduler.choose"` histogram and
    /// every database prediction into `"perfdb.predict"`.
    ///
    /// The prediction span can only be attached while this scheduler is
    /// the database's sole owner; on a shared database (multiple `Arc`
    /// owners), attach the hook via [`PerfDb::set_obs`] before sharing and
    /// this call only wires the decision span.
    pub fn set_obs(&mut self, obs: &obs::Obs) {
        let cur = self.db.get();
        if Arc::strong_count(cur) == 1 {
            // Sole owner: republish a re-hooked copy through the live
            // handle. The republication is bookkeeping, not a refine
            // swap, so the version baseline moves with it and
            // `db_version()` stays 0.
            let mut db = (**cur).clone();
            db.set_obs(obs);
            self.db_base_version = self.db.set(Arc::new(db));
        }
        self.obs =
            Some(SchedObs { obs: obs.clone(), choose_span: obs.histogram("scheduler.choose") });
    }

    /// Builder form of [`set_obs`](ResourceScheduler::set_obs).
    pub fn with_obs(mut self, obs: &obs::Obs) -> Self {
        self.set_obs(obs);
        self
    }

    /// Choose a configuration for the given measured resources.
    pub fn choose(&self, resources: &ResourceVector) -> Option<Decision> {
        self.choose_excluding(resources, &[])
    }

    /// Choose, excluding configurations that e.g. failed steering-guard
    /// negotiation (§6.3).
    pub fn choose_excluding(
        &self,
        resources: &ResourceVector,
        excluded: &[Configuration],
    ) -> Option<Decision> {
        let _span = self.obs.as_ref().map(|h| h.obs.span(h.choose_span));
        // Snapshot version before the list: if a concurrent flip lands in
        // between, we report the older version with the older list rather
        // than a new version number against stale preferences. The same
        // discipline applies to the database: one snapshot per decision,
        // so a racing refine hot-swap never mixes old and new slices
        // within one choice.
        let pref_version = self.prefs.version();
        let prefs = self.prefs.get();
        let db_version = self.db_version();
        let db = self.db();
        let configs = db.configs(&self.input);
        let eligible: Vec<bool> = configs.iter().map(|c| !excluded.contains(c)).collect();
        if !eligible.contains(&true) {
            return None;
        }
        let mut ctx = DecisionCtx { configs, eligible, memo: HashMap::new() };
        for (rank, pref) in prefs.prefs.iter().enumerate() {
            let preds =
                memoized(&mut ctx.memo, &ctx.configs, &db, &self.input, self.mode, resources);
            let mut best: Option<usize> = None;
            for (i, pred) in preds.iter().enumerate() {
                if !ctx.eligible[i] {
                    continue;
                }
                let Some(pred) = pred else { continue };
                if !pref.satisfied_by(pred) {
                    continue;
                }
                let better = match best.and_then(|b| preds[b].as_ref()) {
                    None => true,
                    Some(best_pred) => pref.objective.better(pred, best_pred),
                };
                if better {
                    best = Some(i);
                }
            }
            if let Some(bi) = best {
                let Some(predicted) = preds[bi].clone() else { continue };
                let validity = self.validity_region_ctx(&db, &mut ctx, bi, pref, resources);
                return Some(Decision {
                    config: ctx.configs.swap_remove(bi),
                    predicted,
                    preference_rank: rank,
                    validity,
                    best_effort: false,
                    pref_version,
                    db_version,
                });
            }
        }
        None
    }

    /// The best-effort fallback chain: the full preference walk first,
    /// then — when nothing satisfies — the least-violating configuration.
    /// Returns `None` only when no configuration has a prediction at all.
    pub fn choose_best_effort(
        &self,
        resources: &ResourceVector,
        excluded: &[Configuration],
    ) -> Option<Decision> {
        self.choose_excluding(resources, excluded)
            .or_else(|| self.choose_least_violating(resources, excluded))
    }

    /// When no configuration satisfies any preference: pick the one with
    /// the smallest total relative constraint violation under the
    /// least-demanding (last) preference, ties broken by that preference's
    /// objective. The decision is marked `best_effort` and carries an
    /// unbounded validity region — the monitor cannot delimit a region in
    /// which a *failing* choice stays best, so the runtime instead keeps
    /// probing the scheduler for recovery while degraded.
    pub fn choose_least_violating(
        &self,
        resources: &ResourceVector,
        excluded: &[Configuration],
    ) -> Option<Decision> {
        let pref_version = self.prefs.version();
        let prefs = self.prefs.get();
        let pref = prefs.prefs.last()?;
        let db_version = self.db_version();
        let db = self.db();
        let configs = db.configs(&self.input);
        let mut best: Option<(usize, f64, QosReport)> = None;
        for (i, c) in configs.iter().enumerate() {
            if excluded.contains(c) {
                continue;
            }
            let Some(pred) = db.predict(c, &self.input, resources, self.mode) else {
                continue;
            };
            let score = pref.violation_score(&pred);
            let better = match &best {
                None => true,
                Some((_, s, bp)) => {
                    score < s - 1e-12
                        || ((score - s).abs() <= 1e-12 && pref.objective.better(&pred, bp))
                }
            };
            if better {
                best = Some((i, score, pred));
            }
        }
        let (bi, _, predicted) = best?;
        Some(Decision {
            config: configs[bi].clone(),
            predicted,
            preference_rank: prefs.prefs.len().saturating_sub(1),
            validity: ValidityRegion::unbounded(),
            best_effort: true,
            pref_version,
            db_version,
        })
    }

    /// True when config `chosen` both satisfies `pref` and remains the
    /// best (objective-optimal) satisfying candidate at `probe`.
    fn is_choice_at_ctx(
        &self,
        db: &PerfDb,
        ctx: &mut DecisionCtx,
        chosen: usize,
        pref: &Preference,
        probe: &ResourceVector,
    ) -> bool {
        let preds = memoized(&mut ctx.memo, &ctx.configs, db, &self.input, self.mode, probe);
        let Some(mine) = preds[chosen].as_ref() else {
            return false;
        };
        if !pref.satisfied_by(mine) {
            return false;
        }
        for (i, pred) in preds.iter().enumerate() {
            if i == chosen {
                continue;
            }
            if let Some(pred) = pred {
                if pref.satisfied_by(pred) && pref.objective.better(pred, mine) {
                    return false;
                }
            }
        }
        true
    }

    /// Compute the resource region around `around` within which `config`
    /// remains the scheduler's choice (satisfies `pref` *and* stays
    /// objective-optimal), by walking the database's sampled axis values
    /// outward along each axis (other axes held at `around`). Leaving this
    /// region is exactly the monitoring agent's trigger condition.
    pub fn validity_region(
        &self,
        config: &Configuration,
        pref: &Preference,
        around: &ResourceVector,
    ) -> ValidityRegion {
        let db = self.db();
        let configs = db.configs(&self.input);
        let eligible = vec![true; configs.len()];
        let mut ctx = DecisionCtx { configs, eligible, memo: HashMap::new() };
        // The config under test is usually one of the candidates; when it
        // is not (caller probing a hypothetical), append it so memo rows
        // stay parallel to `ctx.configs`.
        let chosen = match ctx.configs.iter().position(|c| c == config) {
            Some(i) => i,
            None => {
                ctx.configs.push(config.clone());
                ctx.eligible.push(true);
                ctx.configs.len() - 1
            }
        };
        self.validity_region_ctx(&db, &mut ctx, chosen, pref, around)
    }

    fn validity_region_ctx(
        &self,
        db: &PerfDb,
        ctx: &mut DecisionCtx,
        chosen: usize,
        pref: &Preference,
        around: &ResourceVector,
    ) -> ValidityRegion {
        let mut region = ValidityRegion::new();
        let axes = db.axes(&ctx.configs[chosen], &self.input);
        for axis in axes {
            let Some(center) = around.get(&axis) else { continue };
            let samples = db.axis_values(&ctx.configs[chosen], &self.input, &axis);
            if samples.is_empty() {
                continue;
            }
            // One probe buffer per axis: only this axis's value changes
            // during the walk.
            let mut probe = around.clone();
            // Walk down from the center.
            let mut lo = center;
            for &v in samples.iter().rev().filter(|&&v| v <= center) {
                probe.set(axis.clone(), v);
                if self.is_choice_at_ctx(db, ctx, chosen, pref, &probe) {
                    lo = v;
                } else {
                    break;
                }
            }
            // Walk up from the center.
            let mut hi = center;
            for &v in samples.iter().filter(|&&v| v >= center) {
                probe.set(axis.clone(), v);
                if self.is_choice_at_ctx(db, ctx, chosen, pref, &probe) {
                    hi = v;
                } else {
                    break;
                }
            }
            // Extend to the sampled extremes when they satisfy: beyond the
            // sampled range, prediction clamps, so validity extends to
            // infinity on a satisfied edge.
            let (Some(&min_s), Some(&max_s)) = (samples.first(), samples.last()) else {
                continue;
            };
            let lo_bound = if (lo - min_s).abs() < 1e-12 { 0.0 } else { lo };
            let hi_bound = if (hi - max_s).abs() < 1e-12 { f64::INFINITY } else { hi };
            region = region.with_range(axis, lo_bound.min(center), hi_bound.max(center));
        }
        region
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::ResourceKey;
    use crate::perfdb::PerfRecord;
    use crate::qos::{Constraint, Objective};

    fn cpu() -> ResourceKey {
        ResourceKey::cpu("client")
    }

    fn net() -> ResourceKey {
        ResourceKey::net("client")
    }

    /// Two configurations with a bandwidth crossover, like Figure 6(a):
    /// lzw sends 2 MB and costs 5 cpu-s; bzip sends 0.4 MB and costs 20
    /// cpu-s. Crossover at net ~ 107 KB/s (cpu = 1).
    fn crossover_db() -> PerfDb {
        let mut db = PerfDb::new();
        for &c in &[1i64, 2] {
            for &cpu_v in &[0.25, 0.5, 1.0] {
                for &net_v in &[50_000.0, 200_000.0, 500_000.0, 1_000_000.0] {
                    let t = if c == 1 {
                        2e6 / net_v + 5.0 / cpu_v
                    } else {
                        0.4e6 / net_v + 20.0 / cpu_v
                    };
                    db.add(PerfRecord {
                        config: Configuration::new(&[("c", c)]),
                        resources: ResourceVector::new(&[(cpu(), cpu_v), (net(), net_v)]),
                        input: "img".into(),
                        metrics: QosReport::new(&[("transmit_time", t), ("resolution", 4.0)]),
                    });
                }
            }
        }
        db
    }

    fn min_time_prefs() -> PreferenceList {
        PreferenceList::single(Preference::new(vec![], Objective::minimize("transmit_time")))
    }

    #[test]
    fn chooses_lzw_at_high_bandwidth() {
        let s = ResourceScheduler::new(crossover_db(), min_time_prefs(), "img");
        let r = ResourceVector::new(&[(cpu(), 1.0), (net(), 1_000_000.0)]);
        let d = s.choose(&r).unwrap();
        assert_eq!(d.config.get("c"), Some(1), "lzw wins at 1 MB/s");
        assert_eq!(d.preference_rank, 0);
        // The validity region ends where bzip starts winning (between the
        // 50 KB/s and 200 KB/s samples) — exactly the Experiment 1 trigger.
        let (lo, _) = d.validity.ranges[&net()];
        assert!((lo - 200_000.0).abs() < 1.0, "validity low bound {lo}");
        assert!(!d.validity.contains(&ResourceVector::new(&[(cpu(), 1.0), (net(), 50_000.0)])));
    }

    #[test]
    fn chooses_bzip_at_low_bandwidth() {
        let s = ResourceScheduler::new(crossover_db(), min_time_prefs(), "img");
        let r = ResourceVector::new(&[(cpu(), 1.0), (net(), 50_000.0)]);
        let d = s.choose(&r).unwrap();
        assert_eq!(d.config.get("c"), Some(2), "bzip wins at 50 KB/s");
    }

    #[test]
    fn constraint_pruning() {
        // Require transmit_time <= 12: at net=500K, cpu=1.0, lzw gives 9,
        // bzip gives 42 -> only lzw qualifies even though we maximize
        // nothing else.
        let prefs = PreferenceList::single(Preference::new(
            vec![Constraint::at_most("transmit_time", 12.0)],
            Objective::maximize("resolution"),
        ));
        let s = ResourceScheduler::new(crossover_db(), prefs, "img");
        let r = ResourceVector::new(&[(cpu(), 1.0), (net(), 500_000.0)]);
        let d = s.choose(&r).unwrap();
        assert_eq!(d.config.get("c"), Some(1));
    }

    #[test]
    fn falls_back_to_next_preference() {
        // First preference unsatisfiable (transmit_time <= 1), second has
        // no constraints.
        let prefs = PreferenceList::single(Preference::new(
            vec![Constraint::at_most("transmit_time", 1.0)],
            Objective::minimize("transmit_time"),
        ))
        .then(Preference::new(vec![], Objective::minimize("transmit_time")));
        let s = ResourceScheduler::new(crossover_db(), prefs, "img");
        let r = ResourceVector::new(&[(cpu(), 0.25), (net(), 50_000.0)]);
        let d = s.choose(&r).unwrap();
        assert_eq!(d.preference_rank, 1);
    }

    #[test]
    fn no_candidates_returns_none() {
        let prefs = PreferenceList::single(Preference::new(
            vec![Constraint::at_most("transmit_time", 0.001)],
            Objective::minimize("transmit_time"),
        ));
        let s = ResourceScheduler::new(crossover_db(), prefs, "img");
        let r = ResourceVector::new(&[(cpu(), 0.25), (net(), 50_000.0)]);
        assert!(s.choose(&r).is_none());
    }

    #[test]
    fn best_effort_falls_back_to_least_violating() {
        // Impossible constraint everywhere: nothing satisfies, so the
        // fallback ranks configurations by violation size. At cpu=0.25,
        // net=50K: lzw t = 40 + 20 = 60, bzip t = 8 + 80 = 88 — lzw
        // violates `t <= 0.001` less.
        let prefs = PreferenceList::single(Preference::new(
            vec![Constraint::at_most("transmit_time", 0.001)],
            Objective::minimize("transmit_time"),
        ));
        let s = ResourceScheduler::new(crossover_db(), prefs, "img");
        let r = ResourceVector::new(&[(cpu(), 0.25), (net(), 50_000.0)]);
        assert!(s.choose(&r).is_none());
        let d = s.choose_best_effort(&r, &[]).unwrap();
        assert!(d.best_effort);
        assert_eq!(d.config.get("c"), Some(1));
        assert!(d.validity.ranges.is_empty(), "no region can hold a failing choice");
        // Exclusions are honored in the fallback too.
        let lzw = Configuration::new(&[("c", 1)]);
        let d2 = s.choose_best_effort(&r, &[lzw]).unwrap();
        assert!(d2.best_effort);
        assert_eq!(d2.config.get("c"), Some(2));
        // A satisfiable preference passes through the chain unmarked.
        let s2 = ResourceScheduler::new(crossover_db(), min_time_prefs(), "img");
        let hi = ResourceVector::new(&[(cpu(), 1.0), (net(), 1_000_000.0)]);
        let d3 = s2.choose_best_effort(&hi, &[]).unwrap();
        assert!(!d3.best_effort);
    }

    #[test]
    fn exclusion_forces_alternative() {
        let s = ResourceScheduler::new(crossover_db(), min_time_prefs(), "img");
        let r = ResourceVector::new(&[(cpu(), 1.0), (net(), 1_000_000.0)]);
        let lzw = Configuration::new(&[("c", 1)]);
        let d = s.choose_excluding(&r, &[lzw]).unwrap();
        assert_eq!(d.config.get("c"), Some(2));
    }

    #[test]
    fn interpolated_point_between_grid() {
        let s = ResourceScheduler::new(crossover_db(), min_time_prefs(), "img");
        // net = 300 KB/s is between samples; lzw ~11.7s, bzip ~43.3s at cpu 1.
        let r = ResourceVector::new(&[(cpu(), 1.0), (net(), 300_000.0)]);
        let d = s.choose(&r).unwrap();
        assert_eq!(d.config.get("c"), Some(1));
        let t = d.predicted.get("transmit_time").unwrap();
        assert!(t > 9.0 && t < 16.0, "interpolated {t}");
    }

    #[test]
    fn validity_region_shrinks_with_constraints() {
        // transmit_time <= 15 with lzw at cpu=1: t = 2e6/net + 5, needs
        // net >= 200K. The region's net range must exclude 50K.
        let prefs = PreferenceList::single(Preference::new(
            vec![Constraint::at_most("transmit_time", 15.0)],
            Objective::minimize("transmit_time"),
        ));
        let s = ResourceScheduler::new(crossover_db(), prefs, "img");
        let r = ResourceVector::new(&[(cpu(), 1.0), (net(), 500_000.0)]);
        let d = s.choose(&r).unwrap();
        let (lo, hi) = d.validity.ranges[&net()];
        assert!(lo >= 200_000.0 - 1.0, "low bound {lo}");
        assert!(hi.is_infinite(), "satisfied at the top sample -> unbounded");
        // The monitor would trigger at 50 KB/s.
        let low_bw = ResourceVector::new(&[(net(), 50_000.0), (cpu(), 1.0)]);
        assert!(!d.validity.contains(&low_bw));
    }

    #[test]
    fn unconstrained_objective_has_wide_validity() {
        let s = ResourceScheduler::new(crossover_db(), min_time_prefs(), "img");
        let r = ResourceVector::new(&[(cpu(), 0.5), (net(), 500_000.0)]);
        let d = s.choose(&r).unwrap();
        // No constraints: every sampled point satisfies, so ranges span
        // everything.
        let (lo, hi) = d.validity.ranges[&cpu()];
        assert_eq!(lo, 0.0);
        assert!(hi.is_infinite());
    }

    #[test]
    fn validity_region_standalone_matches_decision() {
        // The public validity_region entry point (fresh memo, config
        // looked up or appended) must agree with the region computed
        // inside choose().
        let s = ResourceScheduler::new(crossover_db(), min_time_prefs(), "img");
        let r = ResourceVector::new(&[(cpu(), 1.0), (net(), 1_000_000.0)]);
        let d = s.choose(&r).unwrap();
        let standalone = s.validity_region(&d.config, &s.prefs().prefs[0], &r);
        assert_eq!(d.validity.ranges, standalone.ranges);
        // A config absent from the database yields an empty region.
        let ghost = Configuration::new(&[("c", 99)]);
        let empty = s.validity_region(&ghost, &s.prefs().prefs[0], &r);
        assert!(empty.ranges.is_empty());
    }
}
