//! Quality-of-service metrics, user preference constraints, and objectives.
//!
//! §4 (the `QoS_metric` construct) and §6: "each user preference constraint
//! is expressed as value ranges on a subset of output quality metrics and
//! is accompanied with an objective function to be optimized ... multiple
//! user preference constraints can be specified. The system examines them
//! in decreasing order of preference."

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Whether smaller or larger metric values are better.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Sense {
    LowerIsBetter,
    HigherIsBetter,
}

impl Sense {
    /// True when `a` is strictly better than `b` under this sense.
    pub fn better(&self, a: f64, b: f64) -> bool {
        match self {
            Sense::LowerIsBetter => a < b,
            Sense::HigherIsBetter => a > b,
        }
    }
}

/// Declaration of one application quality metric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QosMetricDef {
    pub name: String,
    pub sense: Sense,
    pub unit: String,
}

impl QosMetricDef {
    pub fn lower(name: &str, unit: &str) -> Self {
        QosMetricDef { name: name.into(), sense: Sense::LowerIsBetter, unit: unit.into() }
    }

    pub fn higher(name: &str, unit: &str) -> Self {
        QosMetricDef { name: name.into(), sense: Sense::HigherIsBetter, unit: unit.into() }
    }
}

/// Measured metric values from one run or one prediction.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QosReport {
    values: BTreeMap<String, f64>,
}

impl QosReport {
    pub fn new(pairs: &[(&str, f64)]) -> Self {
        let mut r = QosReport::default();
        for (k, v) in pairs {
            r.set(k, *v);
        }
        r
    }

    pub fn set(&mut self, name: &str, v: f64) {
        assert!(v.is_finite(), "non-finite metric {name} = {v}");
        self.values.insert(name.to_string(), v);
    }

    pub fn get(&self, name: &str) -> Option<f64> {
        self.values.get(name).copied()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.values.iter().map(|(k, &v)| (k.as_str(), v))
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Componentwise maximum relative difference against `other`, over the
    /// union of metrics (missing metric = infinite difference). Used for
    /// merging similar configurations in the performance database.
    pub fn max_rel_diff(&self, other: &QosReport) -> f64 {
        let mut worst = 0.0f64;
        for (k, _) in self.values.iter().chain(other.values.iter()) {
            let a = self.get(k);
            let b = other.get(k);
            match (a, b) {
                (Some(a), Some(b)) => {
                    let denom = a.abs().max(b.abs()).max(1e-12);
                    worst = worst.max((a - b).abs() / denom);
                }
                _ => return f64::INFINITY,
            }
        }
        worst
    }
}

impl fmt::Display for QosReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.values.iter().map(|(k, v)| format!("{k}={v:.3}")).collect();
        write!(f, "{{{}}}", parts.join(", "))
    }
}

/// An allowed value range on one metric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    pub metric: String,
    pub min: Option<f64>,
    pub max: Option<f64>,
}

impl Constraint {
    pub fn at_most(metric: &str, max: f64) -> Self {
        Constraint { metric: metric.into(), min: None, max: Some(max) }
    }

    pub fn at_least(metric: &str, min: f64) -> Self {
        Constraint { metric: metric.into(), min: Some(min), max: None }
    }

    pub fn between(metric: &str, min: f64, max: f64) -> Self {
        Constraint { metric: metric.into(), min: Some(min), max: Some(max) }
    }

    /// Does `report` satisfy this constraint? A missing metric fails.
    pub fn satisfied_by(&self, report: &QosReport) -> bool {
        match report.get(&self.metric) {
            None => false,
            Some(v) => self.min.is_none_or(|m| v >= m) && self.max.is_none_or(|m| v <= m),
        }
    }

    /// How badly `report` violates this constraint, as a relative
    /// overshoot of the breached bound; `0.0` when satisfied. A missing
    /// metric counts as a large fixed penalty so configurations that do
    /// not even report the metric rank last.
    pub fn violation(&self, report: &QosReport) -> f64 {
        const MISSING_METRIC_PENALTY: f64 = 1e9;
        let Some(v) = report.get(&self.metric) else {
            return MISSING_METRIC_PENALTY;
        };
        let mut s = 0.0;
        if let Some(min) = self.min {
            if v < min {
                s += (min - v) / min.abs().max(1e-12);
            }
        }
        if let Some(max) = self.max {
            if v > max {
                s += (v - max) / max.abs().max(1e-12);
            }
        }
        s
    }
}

/// The optimization objective: maximize or minimize a single metric
/// (the paper's "relatively restricted form" of objective function).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Objective {
    pub metric: String,
    pub sense: Sense,
}

impl Objective {
    pub fn minimize(metric: &str) -> Self {
        Objective { metric: metric.into(), sense: Sense::LowerIsBetter }
    }

    pub fn maximize(metric: &str) -> Self {
        Objective { metric: metric.into(), sense: Sense::HigherIsBetter }
    }

    /// True when `a` is strictly better than `b`. Reports missing the
    /// objective metric are never better.
    pub fn better(&self, a: &QosReport, b: &QosReport) -> bool {
        match (a.get(&self.metric), b.get(&self.metric)) {
            (Some(x), Some(y)) => self.sense.better(x, y),
            (Some(_), None) => true,
            _ => false,
        }
    }
}

/// One user preference: constraints plus an objective.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Preference {
    pub constraints: Vec<Constraint>,
    pub objective: Objective,
}

impl Preference {
    pub fn new(constraints: Vec<Constraint>, objective: Objective) -> Self {
        Preference { constraints, objective }
    }

    pub fn satisfied_by(&self, report: &QosReport) -> bool {
        self.constraints.iter().all(|c| c.satisfied_by(report))
    }

    /// Total relative constraint violation of `report`; `0.0` iff every
    /// constraint is satisfied. The scheduler's best-effort fallback
    /// minimizes this when no configuration satisfies the preference.
    pub fn violation_score(&self, report: &QosReport) -> f64 {
        self.constraints.iter().map(|c| c.violation(report)).sum()
    }
}

/// Preferences in decreasing order of desirability; the scheduler tries
/// each in turn until one is satisfiable (§6).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PreferenceList {
    pub prefs: Vec<Preference>,
}

impl PreferenceList {
    pub fn single(pref: Preference) -> Self {
        PreferenceList { prefs: vec![pref] }
    }

    pub fn then(mut self, pref: Preference) -> Self {
        self.prefs.push(pref);
        self
    }

    /// Parse the control plane's textual preference grammar:
    ///
    /// ```text
    /// list       = pref (" then " pref)*
    /// pref       = item ("," item)*          -- exactly one objective
    /// item       = constraint | objective
    /// constraint = metric ">=" num | metric "<=" num
    /// objective  = ("minimize" | "maximize") ":" metric
    /// ```
    ///
    /// e.g. `resolution>=3,minimize:response_time then minimize:response_time`.
    /// This is how a live `Command::Set` on the `scheduler.prefs` knob
    /// expresses a mid-run user-preference flip.
    pub fn parse_directive(s: &str) -> Result<PreferenceList, String> {
        let mut prefs = Vec::new();
        for seg in s.split(" then ") {
            let seg = seg.trim();
            if seg.is_empty() {
                return Err("empty preference segment".into());
            }
            let mut constraints = Vec::new();
            let mut objective: Option<Objective> = None;
            for item in seg.split(',') {
                let item = item.trim();
                if let Some(metric) = item.strip_prefix("minimize:") {
                    let metric = metric.trim();
                    if metric.is_empty() {
                        return Err(format!("objective `{item}` names no metric"));
                    }
                    if objective.replace(Objective::minimize(metric)).is_some() {
                        return Err(format!("multiple objectives in `{seg}`"));
                    }
                } else if let Some(metric) = item.strip_prefix("maximize:") {
                    let metric = metric.trim();
                    if metric.is_empty() {
                        return Err(format!("objective `{item}` names no metric"));
                    }
                    if objective.replace(Objective::maximize(metric)).is_some() {
                        return Err(format!("multiple objectives in `{seg}`"));
                    }
                } else if let Some((metric, bound)) = item.split_once(">=") {
                    let v: f64 = bound
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad bound in constraint `{item}`"))?;
                    constraints.push(Constraint::at_least(metric.trim(), v));
                } else if let Some((metric, bound)) = item.split_once("<=") {
                    let v: f64 = bound
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad bound in constraint `{item}`"))?;
                    constraints.push(Constraint::at_most(metric.trim(), v));
                } else {
                    return Err(format!(
                        "unrecognized preference item `{item}` (want `metric>=n`, \
                         `metric<=n`, `minimize:metric`, or `maximize:metric`)"
                    ));
                }
            }
            let Some(objective) = objective else {
                return Err(format!("preference `{seg}` has no objective"));
            };
            prefs.push(Preference::new(constraints, objective));
        }
        if prefs.is_empty() {
            return Err("empty preference list".into());
        }
        Ok(PreferenceList { prefs })
    }

    /// Render in the grammar [`parse_directive`](Self::parse_directive)
    /// accepts; `parse_directive(list.to_directive())` round-trips.
    pub fn to_directive(&self) -> String {
        self.prefs
            .iter()
            .map(|p| {
                let mut items: Vec<String> = Vec::new();
                for c in &p.constraints {
                    if let Some(min) = c.min {
                        items.push(format!("{}>={}", c.metric, min));
                    }
                    if let Some(max) = c.max {
                        items.push(format!("{}<={}", c.metric, max));
                    }
                }
                let verb = match p.objective.sense {
                    Sense::LowerIsBetter => "minimize",
                    Sense::HigherIsBetter => "maximize",
                };
                items.push(format!("{verb}:{}", p.objective.metric));
                items.join(",")
            })
            .collect::<Vec<_>>()
            .join(" then ")
    }
}

/// Live-tunable preference lists: wraps an [`obs::Adaptive`] handle as a
/// `scheduler.prefs` registry knob that reads and writes the textual
/// directive grammar, so a typed `Command::Set` can flip user preferences
/// mid-run. (A newtype because the orphan rule forbids implementing the
/// foreign `Knob` trait directly on the foreign `Adaptive` type.)
#[derive(Debug, Clone)]
pub struct PrefsKnob(obs::Adaptive<PreferenceList>);

impl PrefsKnob {
    pub fn new(handle: obs::Adaptive<PreferenceList>) -> Self {
        PrefsKnob(handle)
    }
}

impl obs::Knob for PrefsKnob {
    fn read(&self) -> obs::ConfigValue {
        obs::ConfigValue::Str(self.0.get().to_directive())
    }

    fn write(&self, value: obs::ConfigValue) -> Result<obs::ConfigValue, obs::KnobError> {
        let Some(directive) = value.as_str() else {
            return Err(obs::KnobError::TypeMismatch { expected: "prefs", got: value.type_name() });
        };
        let parsed =
            PreferenceList::parse_directive(directive).map_err(obs::KnobError::BadValue)?;
        let old = self.0.get().to_directive();
        self.0.set(parsed);
        Ok(obs::ConfigValue::Str(old))
    }

    fn type_name(&self) -> &'static str {
        "prefs"
    }

    fn version(&self) -> u64 {
        self.0.version()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sense_comparisons() {
        assert!(Sense::LowerIsBetter.better(1.0, 2.0));
        assert!(!Sense::LowerIsBetter.better(2.0, 1.0));
        assert!(Sense::HigherIsBetter.better(2.0, 1.0));
        assert!(!Sense::HigherIsBetter.better(2.0, 2.0), "ties are not better");
    }

    #[test]
    fn report_basics() {
        let r = QosReport::new(&[("transmit_time", 5.2), ("resolution", 4.0)]);
        assert_eq!(r.get("resolution"), Some(4.0));
        assert_eq!(r.get("missing"), None);
        assert_eq!(r.len(), 2);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_metric_rejected() {
        let mut r = QosReport::default();
        r.set("x", f64::NAN);
    }

    #[test]
    fn constraints() {
        let r = QosReport::new(&[("t", 8.0)]);
        assert!(Constraint::at_most("t", 10.0).satisfied_by(&r));
        assert!(!Constraint::at_most("t", 5.0).satisfied_by(&r));
        assert!(Constraint::at_least("t", 8.0).satisfied_by(&r));
        assert!(Constraint::between("t", 5.0, 10.0).satisfied_by(&r));
        assert!(!Constraint::at_most("u", 10.0).satisfied_by(&r), "missing metric fails");
    }

    #[test]
    fn objective_comparison() {
        let a = QosReport::new(&[("t", 3.0)]);
        let b = QosReport::new(&[("t", 5.0)]);
        let min_t = Objective::minimize("t");
        assert!(min_t.better(&a, &b));
        assert!(!min_t.better(&b, &a));
        let empty = QosReport::default();
        assert!(min_t.better(&a, &empty));
        assert!(!min_t.better(&empty, &a));
    }

    #[test]
    fn violation_scores() {
        let c = Constraint::at_most("t", 10.0);
        assert_eq!(c.violation(&QosReport::new(&[("t", 8.0)])), 0.0);
        assert!((c.violation(&QosReport::new(&[("t", 15.0)])) - 0.5).abs() < 1e-12);
        assert!(c.violation(&QosReport::new(&[("u", 1.0)])) > 1e8, "missing metric penalized");
        let p = Preference::new(
            vec![Constraint::at_most("t", 10.0), Constraint::at_least("q", 4.0)],
            Objective::minimize("t"),
        );
        assert_eq!(p.violation_score(&QosReport::new(&[("t", 9.0), ("q", 5.0)])), 0.0);
        let both = p.violation_score(&QosReport::new(&[("t", 20.0), ("q", 2.0)]));
        assert!((both - (1.0 + 0.5)).abs() < 1e-12, "violations add up: {both}");
    }

    #[test]
    fn preference_all_constraints_must_hold() {
        let p = Preference::new(
            vec![Constraint::at_most("t", 10.0), Constraint::at_least("q", 3.0)],
            Objective::maximize("q"),
        );
        assert!(p.satisfied_by(&QosReport::new(&[("t", 9.0), ("q", 4.0)])));
        assert!(!p.satisfied_by(&QosReport::new(&[("t", 11.0), ("q", 4.0)])));
        assert!(!p.satisfied_by(&QosReport::new(&[("t", 9.0), ("q", 2.0)])));
    }

    #[test]
    fn max_rel_diff() {
        let a = QosReport::new(&[("t", 10.0), ("q", 4.0)]);
        let b = QosReport::new(&[("t", 11.0), ("q", 4.0)]);
        assert!((a.max_rel_diff(&b) - 1.0 / 11.0).abs() < 1e-9);
        let c = QosReport::new(&[("t", 10.0)]);
        assert_eq!(a.max_rel_diff(&c), f64::INFINITY);
        assert_eq!(a.max_rel_diff(&a), 0.0);
    }

    #[test]
    fn directive_grammar_round_trips() {
        let p = PreferenceList::single(Preference::new(
            vec![Constraint::at_least("resolution", 3.0)],
            Objective::minimize("response_time"),
        ))
        .then(Preference::new(vec![], Objective::minimize("response_time")));
        let s = p.to_directive();
        assert_eq!(s, "resolution>=3,minimize:response_time then minimize:response_time");
        assert_eq!(PreferenceList::parse_directive(&s).unwrap(), p);

        let both = PreferenceList::single(Preference::new(
            vec![Constraint::between("t", 2.0, 10.0)],
            Objective::maximize("q"),
        ));
        let s = both.to_directive();
        assert_eq!(s, "t>=2,t<=10,maximize:q");
        // `between` renders as two one-sided constraints; semantics match.
        let back = PreferenceList::parse_directive(&s).unwrap();
        assert_eq!(back.prefs[0].objective, both.prefs[0].objective);
        let r = QosReport::new(&[("t", 5.0), ("q", 1.0)]);
        assert_eq!(back.prefs[0].satisfied_by(&r), both.prefs[0].satisfied_by(&r));
    }

    #[test]
    fn directive_parse_rejects_malformed_input() {
        for bad in [
            "",
            "minimize:",
            "resolution>=3",              // no objective
            "minimize:t,maximize:q",      // two objectives
            "resolution>=abc,minimize:t", // bad bound
            "garbage,minimize:t",         // unrecognized item
            "minimize:t then ",           // empty segment
        ] {
            assert!(PreferenceList::parse_directive(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn prefs_knob_reads_and_writes_directives() {
        use obs::Knob;
        let handle = obs::Adaptive::new(PreferenceList::single(Preference::new(
            vec![],
            Objective::minimize("transmit_time"),
        )));
        let knob = PrefsKnob::new(handle.clone());
        assert_eq!(knob.read(), obs::ConfigValue::Str("minimize:transmit_time".into()));
        let old =
            knob.write(obs::ConfigValue::Str("resolution>=3,maximize:resolution".into())).unwrap();
        assert_eq!(old, obs::ConfigValue::Str("minimize:transmit_time".into()));
        assert_eq!(handle.get().prefs[0].objective, Objective::maximize("resolution"));
        assert_eq!(Knob::version(&knob), 1);

        // Wrong type and unparseable directives are rejected without mutating.
        assert!(knob.write(obs::ConfigValue::U64(3)).is_err());
        assert!(knob.write(obs::ConfigValue::Str("nonsense".into())).is_err());
        assert_eq!(Knob::version(&knob), 1);
    }

    #[test]
    fn serde_roundtrip() {
        let p = PreferenceList::single(Preference::new(
            vec![Constraint::at_most("transmit_time", 10.0)],
            Objective::maximize("resolution"),
        ))
        .then(Preference::new(vec![], Objective::minimize("transmit_time")));
        let json = serde_json::to_string(&p).unwrap();
        // Builds linked against the offline serde_json stub cannot
        // deserialize; the round-trip is only checkable with the real crate.
        let Ok(back) = serde_json::from_str::<PreferenceList>(&json) else {
            return;
        };
        assert_eq!(back, p);
    }
}
