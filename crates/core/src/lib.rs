//! # adapt-core — automatic configuration and run-time adaptation of
//! distributed applications
//!
//! Faithful reimplementation of the framework of *Fangzhe Chang and Vijay
//! Karamcheti, "Automatic Configuration and Run-time Adaptation of
//! Distributed Applications", HPDC 2000*, over the `simnet` simulation
//! substrate and the `sandbox` virtual execution environment.
//!
//! The framework's three functions (paper Figure 1) map onto modules:
//!
//! **1. Specifying application configurations (§4)**
//! - [`param`]: control parameters and [`Configuration`]s;
//! - [`mod@env`]: execution environments, [`ResourceKey`]/[`ResourceVector`];
//! - [`qos`]: quality metrics, constraints, objectives, preference lists;
//! - [`task`]: tunable modules, guards, the task DAG, transitions;
//! - [`spec`]: the combined [`TunableSpec`];
//! - [`dsl`]: the annotation language and its preprocessor
//!   ([`dsl::parse`]), including the paper's Figure 2 example
//!   ([`dsl::ACTIVE_VIZ_SPEC`]).
//!
//! **2. Modeling application behavior (§5)**
//! - [`perfdb`]: the performance database — records, multilinear
//!   interpolation / nearest-record prediction, dominance pruning, and
//!   merging of similar configurations;
//! - [`profiler`]: the testbed driver sweeping configurations over a
//!   resource grid (optionally in parallel), with sensitivity-driven
//!   adaptive refinement.
//!
//! **3. Run-time application adaptation (§6)**
//! - [`monitor`]: the monitoring agent (10 ms period, sliding history
//!   window, out-of-validity-range triggering with hysteresis);
//! - [`scheduler`]: the resource scheduler (constraint pruning, objective
//!   optimization, preference fallback, validity regions);
//! - [`steering`]: the steering agent (switches only at task boundaries /
//!   transition points, guard-based negotiation);
//! - [`runtime`]: the integrated [`AdaptiveRuntime`] applications embed;
//! - [`refine`]: online model refinement — per-slice residual tracking
//!   against live measurements, sustained-drift alarms, and targeted
//!   re-profiling that hot-swaps stale database slices (§7.1's
//!   "representative data ... may become inaccurate over time").
//!
//! Cross-cutting:
//! - [`error`]: the unified [`enum@Error`] type and [`Result`] alias every
//!   fallible constructor in the workspace reports through;
//! - [`prelude`]: one-line import of the common vocabulary types.

pub mod dsl;
pub mod env;
pub mod error;
pub mod monitor;
pub mod param;
pub mod perfdb;
pub mod profiler;
pub mod qos;
pub mod refine;
pub mod runtime;
pub mod scheduler;
pub mod spec;
pub mod steering;
pub mod task;

pub use env::{ExecutionEnv, HostSpec, ResourceKey, ResourceKind, ResourceVector};
pub use error::{Error, Result};
pub use monitor::{MonitoringAgent, Trigger, ValidityRegion, Violation, MONITOR_PERIOD_US};
pub use param::{Configuration, ControlParam, ControlSpace, ParamDomain};
pub use perfdb::{PerfDb, PerfRecord, PredictMode};
pub use profiler::{ProfileRunner, Profiler, ResourceGrid, SensitivityOpts};
pub use qos::{
    Constraint, Objective, Preference, PreferenceList, PrefsKnob, QosMetricDef, QosReport, Sense,
};
pub use refine::{DriftAlarm, RefineEngine, SwapReport};
pub use runtime::{AdaptationEvent, AdaptiveRuntime};
pub use scheduler::{Decision, ResourceScheduler};
pub use spec::{PerfDbTemplate, TunableSpec};
pub use steering::{BoundaryOutcome, ReconfigureRequest, SteeringAgent, SwitchEvent};
pub use task::{Guard, TaskGraph, TaskSpec, TransitionAction, TransitionSpec};

/// The adaptation-framework vocabulary in one import:
/// `use adapt_core::prelude::*;`.
pub mod prelude {
    pub use crate::dsl;
    pub use crate::env::{ResourceKey, ResourceVector};
    pub use crate::error::{Error, Result};
    pub use crate::monitor::{MonitoringAgent, Trigger, ValidityRegion};
    pub use crate::param::Configuration;
    pub use crate::perfdb::{PerfDb, PerfRecord, PredictMode};
    pub use crate::profiler::{Profiler, ResourceGrid};
    pub use crate::qos::{Constraint, Objective, Preference, PreferenceList, PrefsKnob, QosReport};
    pub use crate::refine::{DriftAlarm, RefineEngine, SwapReport};
    pub use crate::runtime::{AdaptationEvent, AdaptiveRuntime};
    pub use crate::scheduler::{Decision, ResourceScheduler};
    pub use crate::spec::TunableSpec;
    pub use crate::steering::{BoundaryOutcome, ReconfigureRequest, SteeringAgent, SwitchEvent};
}
