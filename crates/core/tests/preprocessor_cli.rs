//! Integration test for the preprocessor binary.

use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_tunable-preprocessor")
}

#[test]
fn preprocesses_the_paper_spec() {
    let dir = std::env::temp_dir().join("tunpre_test_ok");
    let _ = std::fs::remove_dir_all(&dir);
    let input = dir.join("viz.tun");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(&input, adapt_core::dsl::ACTIVE_VIZ_SPEC).unwrap();
    let out = Command::new(bin()).arg(&input).arg(dir.join("out")).output().expect("runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    // All four artifacts exist and are consistent.
    let spec_json = std::fs::read_to_string(dir.join("out/spec.json")).unwrap();
    // Builds linked against the offline serde_json stub cannot
    // deserialize the JSON artifacts; check what the stub still allows.
    if let Ok(spec) = serde_json::from_str::<adapt_core::TunableSpec>(&spec_json) {
        assert_eq!(spec.control.cardinality(), 12);
        let normal = std::fs::read_to_string(dir.join("out/spec.normal.tun")).unwrap();
        assert_eq!(adapt_core::dsl::parse(&normal).unwrap(), spec);
    } else {
        let normal = std::fs::read_to_string(dir.join("out/spec.normal.tun")).unwrap();
        assert_eq!(adapt_core::dsl::parse(&normal).unwrap().control.cardinality(), 12);
    }
    let configs = std::fs::read_to_string(dir.join("out/configurations.txt")).unwrap();
    assert_eq!(configs.lines().count(), 12);
    let template = std::fs::read_to_string(dir.join("out/db_template.json")).unwrap();
    if let Ok(t) = serde_json::from_str::<adapt_core::PerfDbTemplate>(&template) {
        assert_eq!(t.axes.len(), 2);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn reports_parse_errors_with_location() {
    let dir = std::env::temp_dir().join("tunpre_test_err");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("bad.tun");
    std::fs::write(&input, "control_parameters {\n  int x in ??; }\n").unwrap();
    let out = Command::new(bin()).arg(&input).arg(dir.join("out")).output().expect("runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 2"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}
