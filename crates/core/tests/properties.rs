//! Property-based tests of the adaptation framework's invariants.

use proptest::prelude::*;

use adapt_core::{
    Configuration, Constraint, ControlParam, ControlSpace, Guard, Objective, ParamDomain, PerfDb,
    PerfRecord, PredictMode, Preference, PreferenceList, QosReport, ResourceKey, ResourceScheduler,
    ResourceVector, Sense,
};

fn cpu() -> ResourceKey {
    ResourceKey::cpu("client")
}

fn net() -> ResourceKey {
    ResourceKey::net("client")
}

/// A database of one configuration sampled on an arbitrary grid of a
/// monotone function t = a/cpu + b/net + c.
fn monotone_db(a: f64, b: f64, c: f64, cpus: &[f64], nets: &[f64]) -> PerfDb {
    let mut db = PerfDb::new();
    for &cv in cpus {
        for &nv in nets {
            db.add(PerfRecord {
                config: Configuration::new(&[("x", 1)]),
                resources: ResourceVector::new(&[(cpu(), cv), (net(), nv)]),
                input: "w".into(),
                metrics: QosReport::new(&[("t", a / cv + b / nv + c)]),
            });
        }
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn interpolation_stays_within_sampled_extremes(
        a in 1.0f64..100.0,
        b in 1e4f64..1e6,
        c in 0.0f64..10.0,
        q_cpu in 0.05f64..1.5,
        q_net in 1e4f64..2e6,
    ) {
        let cpus = [0.1, 0.3, 0.6, 1.0];
        let nets = [50_000.0, 200_000.0, 1_000_000.0];
        let db = monotone_db(a, b, c, &cpus, &nets);
        let cfg = Configuration::new(&[("x", 1)]);
        let q = ResourceVector::new(&[(cpu(), q_cpu), (net(), q_net)]);
        let p = db
            .predict(&cfg, "w", &q, PredictMode::Interpolate)
            .expect("prediction exists")
            .get("t")
            .unwrap();
        // All sampled values bound the interpolant (multilinear + clamping).
        let lo = a / 1.0 + b / 1_000_000.0 + c;
        let hi = a / 0.1 + b / 50_000.0 + c;
        prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{} not in [{}, {}]", p, lo, hi);
    }

    #[test]
    fn interpolation_is_exact_at_grid_points(
        a in 1.0f64..100.0,
        b in 1e4f64..1e6,
        ci in 0usize..4,
        ni in 0usize..3,
    ) {
        let cpus = [0.1, 0.3, 0.6, 1.0];
        let nets = [50_000.0, 200_000.0, 1_000_000.0];
        let db = monotone_db(a, b, 0.0, &cpus, &nets);
        let cfg = Configuration::new(&[("x", 1)]);
        let q = ResourceVector::new(&[(cpu(), cpus[ci]), (net(), nets[ni])]);
        let p = db.predict(&cfg, "w", &q, PredictMode::Interpolate).unwrap().get("t").unwrap();
        let expect = a / cpus[ci] + b / nets[ni];
        prop_assert!((p - expect).abs() < 1e-9);
    }

    #[test]
    fn interpolation_preserves_monotonicity_along_axes(
        a in 1.0f64..100.0,
        b in 1e4f64..1e6,
        q1 in 0.1f64..1.0,
        q2 in 0.1f64..1.0,
    ) {
        let cpus = [0.1, 0.3, 0.6, 1.0];
        let nets = [50_000.0, 200_000.0, 1_000_000.0];
        let db = monotone_db(a, b, 0.0, &cpus, &nets);
        let cfg = Configuration::new(&[("x", 1)]);
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let p_at = |cv: f64| {
            db.predict(
                &cfg,
                "w",
                &ResourceVector::new(&[(cpu(), cv), (net(), 200_000.0)]),
                PredictMode::Interpolate,
            )
            .unwrap()
            .get("t")
            .unwrap()
        };
        // t = a/cpu is decreasing in cpu; piecewise-linear interpolation of
        // a monotone function on a grid is monotone.
        prop_assert!(p_at(lo) >= p_at(hi) - 1e-9);
    }

    #[test]
    fn scheduler_choice_satisfies_constraints_and_is_optimal(
        costs in proptest::collection::vec((1.0f64..50.0, 0.0f64..20.0), 2..6),
        q_cpu in 0.1f64..1.0,
        deadline in 5.0f64..500.0,
    ) {
        // Each candidate i: t_i = a_i/cpu + c_i at a fixed bandwidth.
        let mut db = PerfDb::new();
        for (i, &(ai, ci)) in costs.iter().enumerate() {
            for &cv in &[0.1, 0.5, 1.0] {
                db.add(PerfRecord {
                    config: Configuration::new(&[("x", i as i64)]),
                    resources: ResourceVector::new(&[(cpu(), cv)]),
                    input: "w".into(),
                    metrics: QosReport::new(&[("t", ai / cv + ci)]),
                });
            }
        }
        let prefs = PreferenceList::single(Preference::new(
            vec![Constraint::at_most("t", deadline)],
            Objective::minimize("t"),
        ));
        let sched = ResourceScheduler::new(db.clone(), prefs, "w");
        let q = ResourceVector::new(&[(cpu(), q_cpu)]);
        match sched.choose(&q) {
            Some(d) => {
                let t = d.predicted.get("t").unwrap();
                prop_assert!(t <= deadline, "choice violates the deadline");
                // No other candidate predicts strictly better.
                for i in 0..costs.len() {
                    let other = Configuration::new(&[("x", i as i64)]);
                    let p = db.predict(&other, "w", &q, PredictMode::Interpolate).unwrap();
                    let ot = p.get("t").unwrap();
                    if ot <= deadline {
                        prop_assert!(t <= ot + 1e-9, "candidate {} is better: {} < {}", i, ot, t);
                    }
                }
            }
            None => {
                // Then no candidate satisfies the deadline.
                for i in 0..costs.len() {
                    let other = Configuration::new(&[("x", i as i64)]);
                    let p = db.predict(&other, "w", &q, PredictMode::Interpolate).unwrap();
                    prop_assert!(p.get("t").unwrap() > deadline);
                }
            }
        }
    }

    #[test]
    fn pruning_never_removes_the_best_choice(
        costs in proptest::collection::vec((1.0f64..50.0, 1e4f64..1e6), 2..6),
    ) {
        let mut db = PerfDb::new();
        for (i, &(ai, bi)) in costs.iter().enumerate() {
            for &cv in &[0.2, 1.0] {
                for &nv in &[50_000.0, 500_000.0] {
                    db.add(PerfRecord {
                        config: Configuration::new(&[("x", i as i64)]),
                        resources: ResourceVector::new(&[(cpu(), cv), (net(), nv)]),
                        input: "w".into(),
                        metrics: QosReport::new(&[("t", ai / cv + bi / nv)]),
                    });
                }
            }
        }
        // The best configuration at each sampled point before pruning...
        let mut best_at_points = Vec::new();
        for &cv in &[0.2, 1.0] {
            for &nv in &[50_000.0, 500_000.0] {
                let best = (0..costs.len())
                    .min_by(|&i, &j| {
                        let ti = costs[i].0 / cv + costs[i].1 / nv;
                        let tj = costs[j].0 / cv + costs[j].1 / nv;
                        ti.partial_cmp(&tj).unwrap()
                    })
                    .unwrap();
                best_at_points.push(best as i64);
            }
        }
        db.prune_dominated("t", Sense::LowerIsBetter, 0.0);
        let kept: Vec<i64> = db.configs("w").iter().map(|c| c.expect("x")).collect();
        for b in best_at_points {
            prop_assert!(kept.contains(&b), "pruning removed point-best config {}", b);
        }
    }

    #[test]
    fn guards_respect_boolean_algebra(p in any::<i64>(), v in any::<i64>()) {
        let c = Configuration::new(&[("k", p)]);
        let eq = Guard::Eq("k".into(), v);
        let not_eq = Guard::Not(Box::new(eq.clone()));
        prop_assert_eq!(eq.eval(&c), p == v);
        prop_assert_ne!(eq.eval(&c), not_eq.eval(&c));
        prop_assert!(eq.clone().or(not_eq.clone()).eval(&c), "excluded middle");
        prop_assert!(!eq.and(not_eq).eval(&c), "non-contradiction");
    }

    #[test]
    fn control_space_enumeration_is_complete_and_valid(
        sizes in proptest::collection::vec(1usize..4, 1..4),
    ) {
        let params: Vec<ControlParam> = sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| ControlParam {
                name: format!("p{i}"),
                domain: ParamDomain::Set((0..n as i64).collect()),
            })
            .collect();
        let space = ControlSpace::new(params);
        let all = space.enumerate();
        prop_assert_eq!(all.len(), space.cardinality());
        let keys: std::collections::BTreeSet<String> = all.iter().map(|c| c.key()).collect();
        prop_assert_eq!(keys.len(), all.len(), "all configurations distinct");
        for c in &all {
            prop_assert!(space.validate(c).is_ok());
        }
    }

    #[test]
    fn perfdb_serde_roundtrip(
        points in proptest::collection::vec((0.05f64..1.0, 1e4f64..1e6, 0.0f64..100.0), 1..10),
    ) {
        let mut db = PerfDb::new();
        for &(cv, nv, t) in &points {
            db.add(PerfRecord {
                config: Configuration::new(&[("x", 1)]),
                resources: ResourceVector::new(&[(cpu(), cv), (net(), nv)]),
                input: "w".into(),
                metrics: QosReport::new(&[("t", t)]),
            });
        }
        // Builds linked against the offline serde_json stub cannot
        // deserialize; the round-trip is only checkable with the real crate.
        let Ok(back) = PerfDb::from_json(&db.to_json()) else {
            return Ok(());
        };
        prop_assert_eq!(back.records(), db.records());
    }
}

mod index_props {
    use super::*;
    use proptest::test_runner::TestCaseError;

    const CPUS: [f64; 5] = [0.1, 0.25, 0.5, 0.75, 1.0];
    const NETS: [f64; 5] = [1e5, 2e5, 4e5, 8e5, 1.6e6];
    const MEMS: [f64; 5] = [1e6, 2e6, 4e6, 8e6, 1.6e7];

    /// Records over a small value lattice with deliberately mixed axis
    /// signatures: full `{cpu, net}` grid records, ragged `{cpu}`-only /
    /// `{net}`-only records, and `{cpu, net, mem}` records — so slices are
    /// non-rectangular and some records sit off the interpolation lattice.
    /// Duplicate points (same coordinates, different metrics) also occur.
    fn arb_record() -> impl Strategy<Value = PerfRecord> {
        (
            0i64..3,
            prop_oneof![Just("a"), Just("b")],
            0usize..4,
            0usize..5,
            0usize..5,
            0usize..5,
            1.0f64..100.0,
            proptest::option::of(1.0f64..100.0),
        )
            .prop_map(|(c, input, sig, ci, ni, mi, t, u)| {
                let mut res = ResourceVector::default();
                if sig != 1 {
                    res.set(cpu(), CPUS[ci]);
                }
                if sig != 2 {
                    res.set(net(), NETS[ni]);
                }
                if sig == 3 {
                    res.set(ResourceKey::mem("client"), MEMS[mi]);
                }
                let mut metrics = QosReport::new(&[("t", t)]);
                if let Some(u) = u {
                    metrics.set("u", u);
                }
                PerfRecord {
                    config: Configuration::new(&[("x", c)]),
                    resources: res,
                    input: input.into(),
                    metrics,
                }
            })
    }

    /// Queries both on and off the sampled lattice.
    fn arb_query() -> impl Strategy<Value = ResourceVector> {
        (0.05f64..1.2, 5e4f64..2e6, proptest::bool::ANY, 0usize..5, 0usize..5).prop_map(
            |(qc, qn, on_grid, ci, ni)| {
                if on_grid {
                    ResourceVector::new(&[(cpu(), CPUS[ci]), (net(), NETS[ni])])
                } else {
                    ResourceVector::new(&[(cpu(), qc), (net(), qn)])
                }
            },
        )
    }

    fn check_equivalent(
        indexed: &Option<QosReport>,
        scan: &Option<QosReport>,
        what: &str,
    ) -> Result<(), TestCaseError> {
        match (indexed, scan) {
            (None, None) => Ok(()),
            (Some(a), Some(b)) => {
                let av: Vec<(&str, f64)> = a.iter().collect();
                let bv: Vec<(&str, f64)> = b.iter().collect();
                prop_assert_eq!(av.len(), bv.len(), "metric sets differ: {}", what);
                for (&(ka, va), &(kb, vb)) in av.iter().zip(bv.iter()) {
                    prop_assert_eq!(ka, kb, "metric names differ: {}", what);
                    prop_assert!(
                        (va - vb).abs() <= 1e-9 * va.abs().max(1.0),
                        "{}: {} = {} indexed vs {} scan",
                        what,
                        ka,
                        va,
                        vb
                    );
                }
                Ok(())
            }
            _ => {
                prop_assert!(
                    false,
                    "{}: indexed {:?} vs scan {:?}",
                    what,
                    indexed.is_some(),
                    scan.is_some()
                );
                Ok(())
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// The tentpole's correctness contract: the lattice-indexed
        /// `predict` agrees with the reference linear scan for arbitrary
        /// (including ragged) databases, both modes, all query points.
        #[test]
        fn indexed_predict_matches_linear_scan(
            records in proptest::collection::vec(arb_record(), 1..40),
            queries in proptest::collection::vec(arb_query(), 1..6),
            nearest in proptest::bool::ANY,
        ) {
            let mut db = PerfDb::new();
            for r in records {
                db.add(r);
            }
            let mode = if nearest { PredictMode::Nearest } else { PredictMode::Interpolate };
            for q in &queries {
                for c in 0..3i64 {
                    for input in ["a", "b"] {
                        let cfg = Configuration::new(&[("x", c)]);
                        let a = db.predict(&cfg, input, q, mode);
                        let b = db.predict_scan(&cfg, input, q, mode);
                        check_equivalent(&a, &b, &format!("x={c} {input} {q} {mode:?}"))?;
                    }
                }
            }
        }

        /// Interleaving queries (which build the index) with `add` batches
        /// (which must invalidate it) never lets a stale index answer:
        /// after every mutation the indexed path still equals the scan,
        /// and the interned distinct sets match a from-scratch clone.
        #[test]
        fn add_after_query_invalidates_index(
            batches in proptest::collection::vec(
                proptest::collection::vec(arb_record(), 1..8), 1..4),
            q in arb_query(),
        ) {
            let mut db = PerfDb::new();
            for batch in batches {
                for r in batch {
                    db.add(r);
                }
                for c in 0..3i64 {
                    let cfg = Configuration::new(&[("x", c)]);
                    let a = db.predict(&cfg, "a", &q, PredictMode::Interpolate);
                    let b = db.predict_scan(&cfg, "a", &q, PredictMode::Interpolate);
                    check_equivalent(&a, &b, &format!("x={c} after batch"))?;
                }
                // A fresh db built from the same records has never had a
                // stale index; its views must agree with the mutated one.
                let mut fresh = PerfDb::new();
                for r in db.records() {
                    fresh.add(r.clone());
                }
                prop_assert_eq!(db.inputs(), fresh.inputs());
                for input in ["a", "b"] {
                    prop_assert_eq!(db.configs(input), fresh.configs(input));
                }
            }
        }

        /// The refine engine's hot-swap primitive preserves the indexed ==
        /// scan contract under *arbitrary* swap sequences: after every
        /// `swap_slice` (replacing one `(config, input)` slice with an
        /// arbitrary replacement slice, including an empty one), the
        /// lattice-indexed `predict` still agrees with the reference scan
        /// at every query, and the mutated database matches a from-scratch
        /// rebuild of the same records — no stale index ever answers.
        #[test]
        fn indexed_matches_scan_after_arbitrary_swap_sequences(
            records in proptest::collection::vec(arb_record(), 1..25),
            swaps in proptest::collection::vec(
                (0i64..3, proptest::bool::ANY,
                 proptest::collection::vec(arb_record(), 0..6)), 1..5),
            queries in proptest::collection::vec(arb_query(), 1..4),
            nearest in proptest::bool::ANY,
        ) {
            let mode = if nearest { PredictMode::Nearest } else { PredictMode::Interpolate };
            let mut db = PerfDb::new();
            for r in records {
                db.add(r);
            }
            for (c, which_input, repl) in swaps {
                let cfg = Configuration::new(&[("x", c)]);
                let input = if which_input { "a" } else { "b" };
                // Query first so the index is built (and would be stale if
                // the swap failed to invalidate it).
                for q in &queries {
                    let _ = db.predict(&cfg, input, q, mode);
                }
                // Retarget the replacement records at the swapped slice.
                let repl: Vec<PerfRecord> = repl
                    .into_iter()
                    .map(|r| PerfRecord { config: cfg.clone(), input: input.into(), ..r })
                    .collect();
                let n_repl = repl.len();
                let (_, added) = db.swap_slice(&cfg, input, repl);
                prop_assert_eq!(added, n_repl);
                for q in &queries {
                    for cq in 0..3i64 {
                        for iq in ["a", "b"] {
                            let cfgq = Configuration::new(&[("x", cq)]);
                            let a = db.predict(&cfgq, iq, q, mode);
                            let b = db.predict_scan(&cfgq, iq, q, mode);
                            check_equivalent(&a, &b, &format!("x={cq} {iq} after swap"))?;
                        }
                    }
                }
                let mut fresh = PerfDb::new();
                for r in db.records() {
                    fresh.add(r.clone());
                }
                for q in &queries {
                    for cq in 0..3i64 {
                        let cfgq = Configuration::new(&[("x", cq)]);
                        let a = db.predict(&cfgq, input, q, mode);
                        let b = fresh.predict(&cfgq, input, q, mode);
                        check_equivalent(&a, &b, &format!("x={cq} vs fresh rebuild"))?;
                    }
                }
            }
        }

        /// Refinement preserves the interpolation lattice's validity
        /// contract: after hot-swapping a full-grid slice with re-profiled
        /// metrics, every prediction for that slice stays within the
        /// refreshed slice's sampled extremes (multilinear interpolation +
        /// clamping never extrapolates), and grid points are exact.
        #[test]
        fn refined_predictions_stay_within_lattice_validity(
            a0 in 1.0f64..50.0, b0 in 1e4f64..1e6,
            a1 in 1.0f64..50.0, b1 in 1e4f64..1e6, c1 in 0.0f64..10.0,
            queries in proptest::collection::vec(arb_query(), 1..6),
            gi in 0usize..5, gj in 0usize..5,
        ) {
            let cfg = Configuration::new(&[("x", 1)]);
            let val = |a: f64, b: f64, c: f64, cv: f64, nv: f64| a / cv + b / nv + c;
            let grid_records = |a: f64, b: f64, c: f64| -> Vec<PerfRecord> {
                let mut recs = Vec::new();
                for &cv in &CPUS {
                    for &nv in &NETS {
                        recs.push(PerfRecord {
                            config: cfg.clone(),
                            resources: ResourceVector::new(&[(cpu(), cv), (net(), nv)]),
                            input: "a".into(),
                            metrics: QosReport::new(&[("t", val(a, b, c, cv, nv))]),
                        });
                    }
                }
                recs
            };
            let mut db = PerfDb::new();
            for r in grid_records(a0, b0, 0.0) {
                db.add(r);
            }
            // Build the index, then refine: same lattice, new metrics.
            let _ = db.predict(&cfg, "a", &queries[0], PredictMode::Interpolate);
            let (removed, added) = db.swap_slice(&cfg, "a", grid_records(a1, b1, c1));
            prop_assert_eq!(removed, 25);
            prop_assert_eq!(added, 25);
            let lo = val(a1, b1, c1, 1.0, 1.6e6);
            let hi = val(a1, b1, c1, 0.1, 1e5);
            for q in &queries {
                let p = db
                    .predict(&cfg, "a", q, PredictMode::Interpolate)
                    .expect("full-grid slice predicts everywhere")
                    .get("t")
                    .unwrap();
                prop_assert!(
                    p >= lo - 1e-9 && p <= hi + 1e-9,
                    "refined prediction {} escapes the refreshed lattice [{}, {}]",
                    p, lo, hi
                );
            }
            // Exact at refreshed grid points — no trace of the old slice.
            let gq = ResourceVector::new(&[(cpu(), CPUS[gi]), (net(), NETS[gj])]);
            let p = db.predict(&cfg, "a", &gq, PredictMode::Interpolate).unwrap().get("t").unwrap();
            let expect = val(a1, b1, c1, CPUS[gi], NETS[gj]);
            prop_assert!((p - expect).abs() < 1e-9 * expect.abs().max(1.0));
        }
    }
}

mod steering_props {
    use super::*;
    use adapt_core::{dsl, BoundaryOutcome, ReconfigureRequest, SteeringAgent, ValidityRegion};

    use simnet::SimTime;

    /// Arbitrary (possibly invalid) configurations over the paper's space.
    fn arb_config() -> impl Strategy<Value = Configuration> {
        (
            prop_oneof![Just(80i64), Just(160), Just(320), Just(999)],
            prop_oneof![Just(1i64), Just(2), Just(7)],
            prop_oneof![Just(3i64), Just(4), Just(0)],
        )
            .prop_map(|(dr, c, l)| Configuration::new(&[("dR", dr), ("c", c), ("l", l)]))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn steering_invariants_hold_for_any_request_sequence(
            requests in proptest::collection::vec(arb_config(), 0..12),
        ) {
            let spec = dsl::parse(dsl::ACTIVE_VIZ_SPEC).unwrap();
            let initial = Configuration::new(&[("dR", 80), ("c", 1), ("l", 4)]);
            let mut agent = SteeringAgent::new(initial.clone());
            let mut t = 0u64;
            for req in requests {
                t += 1;
                agent.request(ReconfigureRequest {
                    config: req.clone(),
                    validity: ValidityRegion::unbounded(),
                });
                let before = agent.current().clone();
                match agent.at_boundary(SimTime::from_secs(t), &spec) {
                    BoundaryOutcome::Switched(ev) => {
                        // Only valid configurations ever become current.
                        prop_assert!(spec.control.validate(&ev.new).is_ok());
                        prop_assert_eq!(&ev.old, &before);
                        prop_assert_eq!(agent.current(), &ev.new);
                    }
                    BoundaryOutcome::Rejected { config, .. } => {
                        // Rejected configs are invalid and current is kept.
                        prop_assert!(spec.control.validate(&config).is_err());
                        prop_assert_eq!(agent.current(), &before);
                    }
                    BoundaryOutcome::NoChange => {
                        prop_assert_eq!(agent.current(), &before);
                    }
                    BoundaryOutcome::Deferred { .. } => {
                        // Dwell guard: current is kept, request stays queued.
                        prop_assert_eq!(agent.current(), &before);
                        prop_assert!(agent.has_pending());
                    }
                }
                // The invariant of invariants: whatever happened, the
                // current configuration is always valid.
                prop_assert!(spec.control.validate(agent.current()).is_ok());
            }
            // History is time-ordered and starts with the initial config.
            let hist = agent.history();
            prop_assert_eq!(&hist[0].1, &initial);
            for w in hist.windows(2) {
                prop_assert!(w[0].0 <= w[1].0);
            }
        }

        #[test]
        fn monitor_estimate_is_bounded_by_observations(
            values in proptest::collection::vec(0.0f64..1.0, 1..100),
        ) {
            use adapt_core::MonitoringAgent;
            let key = ResourceKey::cpu("client");
            let mut m = MonitoringAgent::new(vec![key.clone()], 10_000_000);
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for (i, &v) in values.iter().enumerate() {
                m.observe(simnet::SimTime::from_ms(10 * i as u64), &key, v);
                lo = lo.min(v);
                hi = hi.max(v);
            }
            let est = m.estimate().get(&key).unwrap();
            prop_assert!(est >= lo - 1e-12 && est <= hi + 1e-12, "{} not in [{}, {}]", est, lo, hi);
        }
    }
}
