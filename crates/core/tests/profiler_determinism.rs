//! Profiling must be reproducible regardless of parallelism: the whole
//! adaptation stack keys decisions off the performance database, so a
//! thread-count-dependent database would make every downstream benchmark
//! and scheduler decision irreproducible. `Profiler::run_parallel`
//! merges worker results back into deterministic job order; these tests
//! pin that contract at the public API.

use adapt_core::param::{ControlParam, ControlSpace};
use adapt_core::prelude::*;
use adapt_core::profiler::{ResourceGrid, SensitivityOpts};

fn cpu() -> ResourceKey {
    ResourceKey::cpu("client")
}

fn net() -> ResourceKey {
    ResourceKey::net("client")
}

/// Synthetic application model with enough structure that records are
/// distinguishable along both axes and across configs and inputs.
fn runner(config: &Configuration, res: &ResourceVector, input: &str) -> QosReport {
    let l = config.expect("l") as f64;
    let share = res.get(&cpu()).unwrap_or(1.0);
    let bw = res.get(&net()).unwrap_or(1e6);
    let scale = if input == "large" { 4.0 } else { 1.0 };
    QosReport::new(&[
        ("transmit_time", scale * l * 4.0 / share + scale * 1e5 / bw),
        ("resolution", 256.0 / l),
    ])
}

fn profiler() -> Profiler {
    let configs = ControlSpace::new(vec![ControlParam::range("l", 1, 4, 1)]).enumerate();
    let grid = ResourceGrid::new()
        .with_axis(cpu(), &[0.2, 0.4, 0.6, 0.8, 1.0])
        .with_axis(net(), &[1e5, 5e5, 1e6]);
    Profiler::new(configs, grid, vec!["small".into(), "large".into()])
}

#[test]
fn one_thread_and_eight_threads_build_identical_databases() {
    let p = profiler();
    let one = p.run_parallel(&runner, 1);
    let eight = p.run_parallel(&runner, 8);
    assert_eq!(one.len(), eight.len());
    // Identical records in identical order — not just set equality: the
    // database's record order feeds interpolation tie-breaks.
    assert_eq!(one.records(), eight.records());
}

#[test]
fn thread_count_does_not_leak_into_refinement() {
    // Sensitivity refinement reads the base database back to pick new
    // sample points; a nondeterministic base would cascade into a
    // different refined grid. Pin the whole pipeline.
    let mk = || profiler().with_sensitivity(SensitivityOpts { threshold: 0.25, max_rounds: 2 });
    let one = mk().run_parallel(&runner, 1);
    let eight = mk().run_parallel(&runner, 8);
    assert_eq!(one.records(), eight.records());
    assert!(one.len() > profiler().base_run_count(), "refinement actually ran");
}

#[test]
fn parallel_matches_the_sequential_sweep() {
    let p = profiler();
    let seq = p.run(&runner);
    let par = p.run_parallel(&runner, 8);
    assert_eq!(seq.records(), par.records());
}
