//! Canonical Huffman coding over a byte alphabet.
//!
//! Final entropy-coding stage of the Bzip2-style pipeline. Code lengths are
//! built with the standard two-queue Huffman construction; codes are
//! assigned canonically so the table serializes as 256 length bytes.

use crate::bitio::{BitReader, BitWriter};
use crate::CodecError;

/// Maximum allowed code length; skewed distributions are flattened by
/// frequency scaling until they fit.
pub const MAX_LEN: u8 = 32;

/// Compute Huffman code lengths for `freqs` (one entry per symbol).
/// Symbols with zero frequency get length 0 (no code).
pub fn build_lengths(freqs: &[u64]) -> Vec<u8> {
    let mut f: Vec<u64> = freqs.to_vec();
    loop {
        let lengths = lengths_once(&f);
        let maxl = lengths.iter().copied().max().unwrap_or(0);
        if maxl <= MAX_LEN {
            return lengths;
        }
        // Flatten: halving (with floor at 1) shortens the deepest paths.
        for v in f.iter_mut() {
            if *v > 0 {
                *v = (*v).div_ceil(2);
            }
        }
    }
}

fn lengths_once(freqs: &[u64]) -> Vec<u8> {
    let n = freqs.len();
    let mut lengths = vec![0u8; n];
    let live: Vec<usize> = (0..n).filter(|&i| freqs[i] > 0).collect();
    match live.len() {
        0 => return lengths,
        1 => {
            // A single-symbol alphabet still needs one bit on the wire.
            lengths[live[0]] = 1;
            return lengths;
        }
        _ => {}
    }
    // Heap of (weight, node). Leaves are 0..n, internal nodes follow.
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
        live.iter().map(|&i| Reverse((freqs[i], i))).collect();
    let mut parent: Vec<usize> = vec![usize::MAX; n];
    let mut next_node = n;
    while heap.len() > 1 {
        let Reverse((wa, a)) = heap.pop().unwrap();
        let Reverse((wb, b)) = heap.pop().unwrap();
        parent.push(usize::MAX); // slot for next_node
        if a < parent.len() {
            parent[a] = next_node;
        }
        if b < parent.len() {
            parent[b] = next_node;
        }
        heap.push(Reverse((wa + wb, next_node)));
        next_node += 1;
    }
    // Depth of each leaf = number of parent hops to the root.
    for &i in &live {
        let mut d = 0u32;
        let mut node = i;
        while parent[node] != usize::MAX {
            node = parent[node];
            d += 1;
        }
        lengths[i] = d.min(255) as u8;
    }
    lengths
}

/// Canonical codes from lengths: symbols sorted by (length, symbol) get
/// consecutive codes. Returns `(code, len)` per symbol (len 0 = unused).
pub fn canonical_codes(lengths: &[u8]) -> Vec<(u32, u8)> {
    let maxl = lengths.iter().copied().max().unwrap_or(0) as usize;
    let mut count = vec![0u32; maxl + 1];
    for &l in lengths {
        if l > 0 {
            count[l as usize] += 1;
        }
    }
    let mut first = vec![0u32; maxl + 2];
    let mut code = 0u32;
    for l in 1..=maxl {
        code = (code + count[l - 1]) << 1;
        first[l] = code;
    }
    let mut next = first.clone();
    let mut out = vec![(0u32, 0u8); lengths.len()];
    for (sym, &l) in lengths.iter().enumerate() {
        if l > 0 {
            out[sym] = (next[l as usize], l);
            next[l as usize] += 1;
        }
    }
    out
}

/// Encode `data` (bytes) with the canonical code for `lengths`.
/// Panics if a byte has no code — callers must build lengths from the same
/// data's frequencies.
pub fn encode_with(lengths: &[u8], data: &[u8], w: &mut BitWriter) {
    let codes = canonical_codes(lengths);
    for &b in data {
        let (code, len) = codes[b as usize];
        assert!(len > 0, "symbol {b} has no Huffman code");
        w.put(code, len as u32);
    }
}

/// Canonical decoding tables.
pub struct Decoder {
    /// `first_code[l]`, `first_index[l]` per length l, plus sorted symbols.
    first_code: Vec<u32>,
    first_index: Vec<u32>,
    count: Vec<u32>,
    symbols: Vec<u16>,
    max_len: usize,
}

impl Decoder {
    #[allow(clippy::needless_range_loop)] // `l` indexes several parallel tables
    pub fn new(lengths: &[u8]) -> Result<Decoder, CodecError> {
        let maxl = lengths.iter().copied().max().unwrap_or(0) as usize;
        if maxl == 0 {
            return Ok(Decoder {
                first_code: vec![],
                first_index: vec![],
                count: vec![],
                symbols: vec![],
                max_len: 0,
            });
        }
        if maxl > MAX_LEN as usize {
            return Err(CodecError::corrupt("Huffman length too large"));
        }
        let mut count = vec![0u32; maxl + 1];
        for &l in lengths {
            if l > 0 {
                count[l as usize] += 1;
            }
        }
        // Kraft check: over-subscribed tables are corrupt.
        let mut kraft: u64 = 0;
        for l in 1..=maxl {
            kraft += (count[l] as u64) << (maxl - l);
        }
        if kraft > 1u64 << maxl {
            return Err(CodecError::corrupt("Huffman table over-subscribed"));
        }
        let mut first_code = vec![0u32; maxl + 1];
        let mut first_index = vec![0u32; maxl + 1];
        let mut code = 0u32;
        let mut index = 0u32;
        for l in 1..=maxl {
            code = (code + if l >= 2 { count[l - 1] } else { 0 }) << 1;
            // Recompute as in canonical_codes: first[l] = (first[l-1]+count[l-1])<<1
            first_code[l] = code;
            first_index[l] = index;
            index += count[l];
        }
        // Symbols sorted by (length, symbol).
        let mut symbols = Vec::with_capacity(index as usize);
        for l in 1..=maxl {
            for (sym, &sl) in lengths.iter().enumerate() {
                if sl as usize == l {
                    symbols.push(sym as u16);
                }
            }
        }
        Ok(Decoder { first_code, first_index, count, symbols, max_len: maxl })
    }

    /// Decode one symbol.
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<u16, CodecError> {
        if self.max_len == 0 {
            return Err(CodecError::corrupt("empty Huffman table"));
        }
        let mut code = 0u32;
        for l in 1..=self.max_len {
            let bit = r.get_bit().ok_or_else(|| CodecError::corrupt("Huffman stream truncated"))?;
            code = (code << 1) | bit;
            let c = self.count[l];
            if c > 0 && code >= self.first_code[l] && code < self.first_code[l] + c {
                let idx = self.first_index[l] + (code - self.first_code[l]);
                return Ok(self.symbols[idx as usize]);
            }
        }
        Err(CodecError::corrupt("invalid Huffman code"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn roundtrip(data: &[u8]) {
        let mut freqs = vec![0u64; 256];
        for &b in data {
            freqs[b as usize] += 1;
        }
        let lengths = build_lengths(&freqs);
        let mut w = BitWriter::new();
        encode_with(&lengths, data, &mut w);
        let bits = w.finish();
        let dec = Decoder::new(&lengths).unwrap();
        let mut r = BitReader::new(&bits);
        let out: Vec<u8> = (0..data.len()).map(|_| dec.decode(&mut r).unwrap() as u8).collect();
        assert_eq!(out, data);
    }

    #[test]
    fn simple_roundtrip() {
        roundtrip(b"abracadabra");
        roundtrip(b"mississippi river banks");
    }

    #[test]
    fn single_symbol_alphabet() {
        roundtrip(&[7u8; 100]);
        let mut freqs = vec![0u64; 256];
        freqs[7] = 100;
        let lengths = build_lengths(&freqs);
        assert_eq!(lengths[7], 1);
        assert!(lengths.iter().enumerate().all(|(i, &l)| i == 7 || l == 0));
    }

    #[test]
    fn random_roundtrip() {
        let mut rng = StdRng::seed_from_u64(5);
        for len in [1usize, 10, 1000, 50_000] {
            let data: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
            roundtrip(&data);
        }
    }

    #[test]
    fn skewed_distribution_roundtrip() {
        // Exponentially skewed frequencies stress the length limiter.
        let mut data = Vec::new();
        for (i, reps) in (0u8..40).zip((0..40).map(|k| 1usize << (k.min(20)))) {
            data.extend(std::iter::repeat_n(i, reps));
        }
        roundtrip(&data);
        let mut freqs = vec![0u64; 256];
        for &b in &data {
            freqs[b as usize] += 1;
        }
        let lengths = build_lengths(&freqs);
        assert!(lengths.iter().all(|&l| l <= MAX_LEN));
    }

    #[test]
    fn frequent_symbols_get_short_codes() {
        let mut freqs = vec![0u64; 256];
        freqs[0] = 1000;
        freqs[1] = 10;
        freqs[2] = 10;
        freqs[3] = 10;
        let lengths = build_lengths(&freqs);
        assert!(lengths[0] < lengths[1]);
    }

    #[test]
    fn kraft_inequality_holds() {
        let mut rng = StdRng::seed_from_u64(11);
        let freqs: Vec<u64> = (0..256).map(|_| rng.gen_range(0..1000)).collect();
        let lengths = build_lengths(&freqs);
        let maxl = *lengths.iter().max().unwrap() as u32;
        let kraft: u64 =
            lengths.iter().filter(|&&l| l > 0).map(|&l| 1u64 << (maxl - l as u32)).sum();
        assert!(kraft <= 1u64 << maxl, "Kraft violated: {kraft} > 2^{maxl}");
    }

    #[test]
    fn compression_beats_raw_for_skewed_data() {
        let data: Vec<u8> =
            std::iter::repeat_n(b'a', 9000).chain(std::iter::repeat_n(b'b', 1000)).collect();
        let mut freqs = vec![0u64; 256];
        for &b in &data {
            freqs[b as usize] += 1;
        }
        let lengths = build_lengths(&freqs);
        let mut w = BitWriter::new();
        encode_with(&lengths, &data, &mut w);
        let bits = w.finish();
        assert!(bits.len() < data.len() / 4, "{} vs {}", bits.len(), data.len());
    }

    #[test]
    fn corrupt_table_rejected() {
        // All 256 symbols with length 1 massively violates Kraft.
        let lengths = vec![1u8; 256];
        assert!(Decoder::new(&lengths).is_err());
    }

    #[test]
    fn truncated_stream_errors() {
        let mut freqs = vec![0u64; 256];
        freqs[b'a' as usize] = 5;
        freqs[b'b' as usize] = 3;
        let lengths = build_lengths(&freqs);
        let dec = Decoder::new(&lengths).unwrap();
        let empty: [u8; 0] = [];
        let mut r = BitReader::new(&empty);
        assert!(dec.decode(&mut r).is_err());
    }
}
