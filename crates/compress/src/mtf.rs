//! Move-to-front coding: turns the BWT's locally-clustered output into a
//! stream dominated by small values (especially zero).

/// MTF-encode `data` in place semantics (returns a new buffer).
pub fn encode(data: &[u8]) -> Vec<u8> {
    let mut table: Vec<u8> = (0..=255).collect();
    let mut out = Vec::with_capacity(data.len());
    for &b in data {
        let pos = table.iter().position(|&t| t == b).unwrap();
        out.push(pos as u8);
        table.copy_within(0..pos, 1);
        table[0] = b;
    }
    out
}

/// Inverse of [`encode`].
pub fn decode(data: &[u8]) -> Vec<u8> {
    let mut table: Vec<u8> = (0..=255).collect();
    let mut out = Vec::with_capacity(data.len());
    for &p in data {
        let pos = p as usize;
        let b = table[pos];
        out.push(b);
        table.copy_within(0..pos, 1);
        table[0] = b;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn roundtrip_random() {
        let mut rng = StdRng::seed_from_u64(4);
        for len in [0usize, 1, 100, 10_000] {
            let data: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
            assert_eq!(decode(&encode(&data)), data);
        }
    }

    #[test]
    fn runs_become_zeros() {
        let data = b"aaaabbbbcccc";
        let enc = encode(data);
        // After the first occurrence of each byte, repeats encode as 0.
        assert_eq!(enc.iter().filter(|&&v| v == 0).count(), 9);
    }

    #[test]
    fn first_occurrence_is_table_index() {
        let enc = encode(&[0u8, 1, 2]);
        assert_eq!(enc, vec![0, 1, 2]);
        let enc = encode(&[255u8]);
        assert_eq!(enc, vec![255]);
    }

    #[test]
    fn clustered_data_skews_small() {
        let mut rng = StdRng::seed_from_u64(6);
        // Clustered: long runs of few symbols (BWT-like).
        let mut data = Vec::new();
        for _ in 0..200 {
            let b: u8 = rng.gen_range(b'a'..b'f');
            data.extend(std::iter::repeat_n(b, rng.gen_range(5..20)));
        }
        let enc = encode(&data);
        let small = enc.iter().filter(|&&v| v < 8).count();
        assert!(small as f64 > 0.9 * enc.len() as f64);
    }
}
