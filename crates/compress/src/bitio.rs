//! Bit-level I/O, MSB-first, shared by the LZW and Huffman coders.

/// Write bits into a growing byte buffer, most significant bit first.
#[derive(Debug, Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Bits accumulated in `cur`, 0..8.
    nbits: u32,
    cur: u8,
}

impl BitWriter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append the low `n` bits of `v` (MSB of those bits first). `n <= 32`.
    pub fn put(&mut self, v: u32, n: u32) {
        assert!(n <= 32);
        for i in (0..n).rev() {
            let bit = (v >> i) & 1;
            self.cur = (self.cur << 1) | bit as u8;
            self.nbits += 1;
            if self.nbits == 8 {
                self.buf.push(self.cur);
                self.cur = 0;
                self.nbits = 0;
            }
        }
    }

    /// Number of whole bits written so far.
    pub fn bit_len(&self) -> usize {
        self.buf.len() * 8 + self.nbits as usize
    }

    /// Flush (zero-padding the final byte) and return the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.cur <<= 8 - self.nbits;
            self.buf.push(self.cur);
        }
        self.buf
    }
}

/// Read bits from a byte slice, MSB-first.
#[derive(Debug)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    pos: usize, // bit position
}

impl<'a> BitReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        BitReader { buf, pos: 0 }
    }

    /// Read `n` bits (`n <= 32`); `None` if the stream is exhausted.
    pub fn get(&mut self, n: u32) -> Option<u32> {
        assert!(n <= 32);
        if self.pos + n as usize > self.buf.len() * 8 {
            return None;
        }
        let mut v = 0u32;
        for _ in 0..n {
            let byte = self.buf[self.pos / 8];
            let bit = (byte >> (7 - (self.pos % 8))) & 1;
            v = (v << 1) | bit as u32;
            self.pos += 1;
        }
        Some(v)
    }

    /// Read one bit.
    pub fn get_bit(&mut self) -> Option<u32> {
        self.get(1)
    }

    /// Bits remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() * 8 - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_widths() {
        let mut w = BitWriter::new();
        w.put(0b101, 3);
        w.put(0xDEAD, 16);
        w.put(1, 1);
        w.put(0x3FF, 10);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get(3), Some(0b101));
        assert_eq!(r.get(16), Some(0xDEAD));
        assert_eq!(r.get(1), Some(1));
        assert_eq!(r.get(10), Some(0x3FF));
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut w = BitWriter::new();
        w.put(0xF, 4);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get(8), Some(0xF0)); // includes padding
        assert_eq!(r.get(1), None);
    }

    #[test]
    fn bit_len_counts() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.put(0, 5);
        assert_eq!(w.bit_len(), 5);
        w.put(0, 5);
        assert_eq!(w.bit_len(), 10);
    }

    #[test]
    fn remaining_decreases() {
        let data = [0xAB, 0xCD];
        let mut r = BitReader::new(&data);
        assert_eq!(r.remaining(), 16);
        r.get(5);
        assert_eq!(r.remaining(), 11);
    }

    #[test]
    fn single_bits() {
        let mut w = BitWriter::new();
        for b in [1, 0, 1, 1, 0, 0, 1, 0, 1] {
            w.put(b, 1);
        }
        let bytes = w.finish();
        assert_eq!(bytes.len(), 2);
        let mut r = BitReader::new(&bytes);
        let got: Vec<u32> = (0..9).map(|_| r.get_bit().unwrap()).collect();
        assert_eq!(got, vec![1, 0, 1, 1, 0, 0, 1, 0, 1]);
    }
}
