//! LZW with variable-width codes — the paper's "compression A".
//!
//! Classic compress/GIF-style LZW: 256 literals, a CLEAR code (256) and an
//! EOF code (257); code width starts at 9 bits and grows to 12; when the
//! code space fills, CLEAR is emitted and the dictionary resets. Fast,
//! modest compression — the cheap-CPU / higher-bandwidth point in the
//! compression trade-off of Figure 6(a).
//!
//! Width synchronization: both encoder and decoder advance a shared
//! *emission counter* `n` (starting at `FIRST_FREE`) after every data
//! code and widen when `n` reaches `1 << width`. Because the counter
//! depends only on the code stream itself, encoder and decoder widths can
//! never diverge (including around CLEAR, EOF, and the KwKwK case).

use std::collections::HashMap;

use crate::bitio::{BitReader, BitWriter};
use crate::CodecError;

const CLEAR: u32 = 256;
const EOF: u32 = 257;
const FIRST_FREE: u32 = 258;
const MIN_WIDTH: u32 = 9;
const MAX_WIDTH: u32 = 12;
const MAX_CODE: u32 = (1 << MAX_WIDTH) - 1;

/// Width/counter state shared (conceptually) by encoder and decoder.
#[derive(Debug, Clone, Copy)]
struct Sync {
    width: u32,
    n: u32,
}

impl Sync {
    fn fresh() -> Self {
        Sync { width: MIN_WIDTH, n: FIRST_FREE }
    }

    /// Advance after a data code has been written/read.
    fn bump(&mut self) {
        self.n += 1;
        if self.n == (1 << self.width) && self.width < MAX_WIDTH {
            self.width += 1;
        }
    }

    /// True when the code space is exhausted and the encoder must CLEAR.
    fn full(&self) -> bool {
        self.n > MAX_CODE
    }
}

/// Compress `data` with LZW.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut w = BitWriter::new();
    let mut dict: HashMap<(u32, u8), u32> = HashMap::new();
    let mut s = Sync::fresh();
    w.put(CLEAR, s.width);
    let mut it = data.iter();
    let mut cur: u32 = match it.next() {
        Some(&b) => b as u32,
        None => {
            w.put(EOF, s.width);
            return w.finish();
        }
    };
    for &b in it {
        match dict.get(&(cur, b)) {
            Some(&code) => cur = code,
            None => {
                w.put(cur, s.width);
                dict.insert((cur, b), s.n);
                s.bump();
                if s.full() {
                    w.put(CLEAR, s.width);
                    dict.clear();
                    s = Sync::fresh();
                }
                cur = b as u32;
            }
        }
    }
    w.put(cur, s.width);
    s.bump();
    w.put(EOF, s.width);
    w.finish()
}

/// Decompress an LZW stream produced by [`compress`].
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, CodecError> {
    let mut r = BitReader::new(data);
    let mut out = Vec::new();
    // Dictionary: entries[i] is code FIRST_FREE+i -> (prefix code, suffix).
    let mut entries: Vec<(u32, u8)> = Vec::new();
    let mut s = Sync::fresh();
    let mut prev: Option<u32> = None;

    fn expand(code: u32, entries: &[(u32, u8)], out: &mut Vec<u8>) -> Result<usize, CodecError> {
        let start = out.len();
        let mut c = code;
        loop {
            if c < 256 {
                out.push(c as u8);
                break;
            }
            let idx = (c - FIRST_FREE) as usize;
            let &(prefix, last) =
                entries.get(idx).ok_or_else(|| CodecError::corrupt("LZW code out of range"))?;
            out.push(last);
            c = prefix;
            if out.len() - start > MAX_CODE as usize + 2 {
                return Err(CodecError::corrupt("LZW expansion loop"));
            }
        }
        out[start..].reverse();
        Ok(start)
    }

    loop {
        let code = r.get(s.width).ok_or_else(|| CodecError::corrupt("LZW stream truncated"))?;
        match code {
            EOF => return Ok(out),
            CLEAR => {
                entries.clear();
                s = Sync::fresh();
                prev = None;
            }
            _ => {
                let next_entry = FIRST_FREE + entries.len() as u32;
                if let Some(p) = prev {
                    if code < next_entry {
                        let start = expand(code, &entries, &mut out)?;
                        let first = out[start];
                        entries.push((p, first));
                    } else if code == next_entry {
                        // KwKwK: the new entry is prev + first(prev).
                        let start = expand(p, &entries, &mut out)?;
                        let first = out[start];
                        out.push(first);
                        entries.push((p, first));
                    } else {
                        return Err(CodecError::corrupt("LZW code ahead of dictionary"));
                    }
                } else {
                    if code >= FIRST_FREE {
                        return Err(CodecError::corrupt("LZW non-literal after clear"));
                    }
                    expand(code, &entries, &mut out)?;
                }
                s.bump();
                prev = Some(code);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c).unwrap();
        assert_eq!(d, data, "roundtrip failed for {} bytes", data.len());
    }

    #[test]
    fn empty_input() {
        roundtrip(b"");
    }

    #[test]
    fn single_byte() {
        roundtrip(b"x");
    }

    #[test]
    fn repetitive_text_compresses() {
        let data = b"tobeornottobeortobeornot".repeat(100);
        let c = compress(&data);
        assert!(c.len() < data.len() / 2, "{} vs {}", c.len(), data.len());
        roundtrip(&data);
    }

    #[test]
    fn kwkwk_case() {
        // Classic pattern triggering code == next_entry in the decoder.
        roundtrip(b"aaaaaaaaaaaaaaaaaaaaaa");
        roundtrip(b"abababababababababab");
    }

    #[test]
    fn all_byte_values() {
        let data: Vec<u8> = (0..=255u8).cycle().take(5000).collect();
        roundtrip(&data);
    }

    #[test]
    fn width_boundary_lengths() {
        // Exercise lengths around the 9->10->11->12-bit width transitions
        // and around dictionary resets, where off-by-one bugs live.
        let mut rng = StdRng::seed_from_u64(99);
        for len in 200..=280 {
            let data: Vec<u8> = (0..len * 13).map(|_| rng.gen()).collect();
            roundtrip(&data);
        }
    }

    #[test]
    fn random_data_roundtrips() {
        let mut rng = StdRng::seed_from_u64(42);
        for len in [1, 2, 100, 4096, 100_000] {
            let data: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
            roundtrip(&data);
        }
    }

    #[test]
    fn dictionary_reset_path() {
        // Enough distinct digrams to overflow the 12-bit code space and
        // force CLEAR emission.
        let mut rng = StdRng::seed_from_u64(7);
        let data: Vec<u8> = (0..200_000).map(|_| rng.gen_range(0..16u8)).collect();
        roundtrip(&data);
    }

    #[test]
    fn random_compresses_worse_than_structured() {
        let mut rng = StdRng::seed_from_u64(3);
        let random: Vec<u8> = (0..10_000).map(|_| rng.gen()).collect();
        let structured = b"the quick brown fox jumps over the lazy dog ".repeat(250);
        let cr = compress(&random).len() as f64 / random.len() as f64;
        let cs = compress(&structured[..10_000]).len() as f64 / 10_000.0;
        assert!(cs < cr);
    }

    #[test]
    fn truncated_stream_errors() {
        let c = compress(b"hello world hello world");
        assert!(decompress(&c[..c.len() / 2]).is_err());
        assert!(decompress(&[]).is_err());
    }
}
