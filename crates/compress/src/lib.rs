//! # compress — from-scratch LZW and a Bzip2-style block-sorting pipeline
//!
//! The active-visualization application (paper §2.1) "can optionally
//! compress the data before injecting it into the network, reducing
//! network bandwidth at the expense of requiring decompression at the
//! client", choosing between **compression A (LZW)** and **compression B
//! (Bzip2)**. Both are implemented here from scratch:
//!
//! - [`lzw`]: variable-width-code LZW (9–12 bits, CLEAR/EOF codes);
//! - [`bzip`]: BWT ([`bwt`], prefix-doubling suffix array) → move-to-front
//!   ([`mtf`]) → zero run-length ([`rle`]) → canonical Huffman
//!   ([`huffman`]), blocked at 100 kB;
//! - [`Method`] is the run-time-selectable interface, and
//!   [`CostModel`] its simulated CPU price (reference-machine us/byte),
//!   which is what produces the Figure 6(a) crossover: B compresses better
//!   but costs ~10x the CPU of A.

pub mod bitio;
pub mod bwt;
pub mod bzip;
pub mod huffman;
pub mod lzw;
pub mod method;
pub mod mtf;
pub mod rle;

pub use method::{CostModel, Method};

/// Error from decompression of corrupt or truncated payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    msg: String,
}

impl CodecError {
    pub(crate) fn corrupt(msg: &str) -> Self {
        CodecError { msg: msg.to_string() }
    }

    pub fn message(&self) -> &str {
        &self.msg
    }
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "codec error: {}", self.msg)
    }
}

impl std::error::Error for CodecError {}
