//! Burrows–Wheeler transform, forward and inverse.
//!
//! Forward: rotations are sorted via a prefix-doubling suffix array of the
//! doubled input (`O(n log^2 n)`, no sentinel needed); the output is the
//! last column plus the primary index (the row holding the original
//! string). Inverse: the standard LF-mapping reconstruction.

use crate::CodecError;

/// Prefix-doubling suffix array over `s`.
pub fn suffix_array(s: &[u8]) -> Vec<u32> {
    let n = s.len();
    if n == 0 {
        return Vec::new();
    }
    let mut sa: Vec<u32> = (0..n as u32).collect();
    let mut rank: Vec<i64> = s.iter().map(|&b| b as i64).collect();
    let mut tmp = vec![0i64; n];
    let mut k = 1usize;
    loop {
        let key = |i: u32| -> (i64, i64) {
            let i = i as usize;
            let second = if i + k < n { rank[i + k] } else { -1 };
            (rank[i], second)
        };
        sa.sort_unstable_by_key(|&i| key(i));
        tmp[sa[0] as usize] = 0;
        for w in 1..n {
            let prev = sa[w - 1];
            let cur = sa[w];
            tmp[cur as usize] = tmp[prev as usize] + i64::from(key(prev) != key(cur));
        }
        rank.copy_from_slice(&tmp);
        if rank[sa[n - 1] as usize] as usize == n - 1 {
            break;
        }
        k *= 2;
        if k >= n {
            // All ranks distinct at the next doubling by construction.
            sa.sort_unstable_by_key(|&i| rank[i as usize]);
            break;
        }
    }
    sa
}

/// Forward BWT: returns `(last_column, primary_index)`.
pub fn forward(data: &[u8]) -> (Vec<u8>, usize) {
    let n = data.len();
    if n == 0 {
        return (Vec::new(), 0);
    }
    if n == 1 {
        return (data.to_vec(), 0);
    }
    // Rotation order = order of suffixes of data+data that start in [0, n).
    let mut doubled = Vec::with_capacity(2 * n);
    doubled.extend_from_slice(data);
    doubled.extend_from_slice(data);
    let sa = suffix_array(&doubled);
    let mut last = Vec::with_capacity(n);
    let mut primary = 0usize;
    for &start in sa.iter().filter(|&&i| (i as usize) < n) {
        let start = start as usize;
        if start == 0 {
            primary = last.len();
        }
        last.push(data[(start + n - 1) % n]);
    }
    debug_assert_eq!(last.len(), n);
    (last, primary)
}

/// Inverse BWT.
pub fn inverse(last: &[u8], primary: usize) -> Result<Vec<u8>, CodecError> {
    let n = last.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    if primary >= n {
        return Err(CodecError::corrupt("BWT primary index out of range"));
    }
    // starts[c] = first row whose first column is byte c.
    let mut count = [0usize; 256];
    for &b in last {
        count[b as usize] += 1;
    }
    let mut starts = [0usize; 256];
    let mut acc = 0usize;
    for c in 0..256 {
        starts[c] = acc;
        acc += count[c];
    }
    // LF mapping: row i -> row of the rotation one step earlier.
    let mut lf = vec![0u32; n];
    let mut seen = [0usize; 256];
    for (i, &b) in last.iter().enumerate() {
        let c = b as usize;
        lf[i] = (starts[c] + seen[c]) as u32;
        seen[c] += 1;
    }
    let mut out = vec![0u8; n];
    let mut row = primary;
    for k in (0..n).rev() {
        out[k] = last[row];
        row = lf[row] as usize;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn roundtrip(data: &[u8]) {
        let (last, primary) = forward(data);
        assert_eq!(last.len(), data.len());
        let back = inverse(&last, primary).unwrap();
        assert_eq!(back, data, "roundtrip failed for {:?}", data);
    }

    #[test]
    fn known_example() {
        // The canonical "banana" example: rotations sorted, last column.
        let (last, primary) = forward(b"banana");
        let back = inverse(&last, primary).unwrap();
        assert_eq!(back, b"banana");
        // BWT of banana groups like characters.
        assert_eq!(last.iter().filter(|&&b| b == b'n').count(), 2);
    }

    #[test]
    fn edge_cases() {
        roundtrip(b"");
        roundtrip(b"x");
        roundtrip(b"xy");
        roundtrip(b"yx");
    }

    #[test]
    fn periodic_inputs() {
        // Equal rotations exercise tie-breaking.
        roundtrip(b"aaaaaaaa");
        roundtrip(b"abababab");
        roundtrip(b"abcabcabcabc");
    }

    #[test]
    fn random_roundtrip() {
        let mut rng = StdRng::seed_from_u64(8);
        for len in [3usize, 17, 256, 4096, 40_000] {
            let data: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
            roundtrip(&data);
        }
    }

    #[test]
    fn low_entropy_roundtrip() {
        let mut rng = StdRng::seed_from_u64(9);
        let data: Vec<u8> = (0..20_000).map(|_| rng.gen_range(b'a'..b'e')).collect();
        roundtrip(&data);
    }

    #[test]
    fn bwt_groups_similar_context() {
        // On English-like text, the BWT output has longer same-byte runs
        // than the input — the property MTF+RLE exploits.
        let data = b"the quick brown fox jumps over the lazy dog ".repeat(50);
        let (last, _) = forward(&data);
        let runs = |s: &[u8]| s.windows(2).filter(|w| w[0] == w[1]).count();
        assert!(runs(&last) > runs(&data) * 2, "{} vs {}", runs(&last), runs(&data));
    }

    #[test]
    fn suffix_array_is_sorted() {
        let data = b"mississippi";
        let sa = suffix_array(data);
        for w in sa.windows(2) {
            assert!(data[w[0] as usize..] < data[w[1] as usize..]);
        }
        assert_eq!(sa.len(), data.len());
    }

    #[test]
    fn bad_primary_rejected() {
        assert!(inverse(b"abc", 5).is_err());
    }
}
