//! Uniform compression-method interface plus the CPU cost model used to
//! charge simulated work for (de)compression.
//!
//! The active-visualization application chooses between compression
//! methods at run time (control parameter `c`); the framework's
//! performance database records how each method behaves under different
//! CPU/bandwidth conditions. The simulated CPU cost of a method is its
//! *measured algorithmic work*, expressed in reference-machine
//! microseconds per byte ([`CostModel`]), with constants calibrated to the
//! paper's era (a 450 MHz Pentium II): LZW runs at roughly 12 MB/s while
//! the block-sorting pipeline manages roughly 1.2 MB/s.

use crate::{bzip, lzw, CodecError};

/// A compression method selectable at run time.
///
/// ```
/// use compress::Method;
///
/// let data = b"progressive wavelet coefficients ".repeat(64);
/// for method in Method::ALL {
///     let packed = method.compress(&data);
///     assert_eq!(method.decompress(&packed).unwrap(), data);
/// }
/// // Method B costs several times method A's CPU per byte:
/// assert!(Method::Bzip.cost().compress_per_byte > 5.0 * Method::Lzw.cost().compress_per_byte);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Method {
    /// No compression (baseline).
    Raw,
    /// Compression A: LZW (fast, modest ratio).
    Lzw,
    /// Compression B: Bzip2-style block sorting (slow, strong ratio).
    Bzip,
}

impl Method {
    pub const ALL: [Method; 3] = [Method::Raw, Method::Lzw, Method::Bzip];

    pub fn name(self) -> &'static str {
        match self {
            Method::Raw => "raw",
            Method::Lzw => "lzw",
            Method::Bzip => "bzip",
        }
    }

    /// Numeric code for protocol messages and control parameters.
    pub fn code(self) -> i64 {
        match self {
            Method::Raw => 0,
            Method::Lzw => 1,
            Method::Bzip => 2,
        }
    }

    pub fn from_code(code: i64) -> Option<Method> {
        Some(match code {
            0 => Method::Raw,
            1 => Method::Lzw,
            2 => Method::Bzip,
            _ => return None,
        })
    }

    /// Compress `data`.
    pub fn compress(self, data: &[u8]) -> Vec<u8> {
        match self {
            Method::Raw => data.to_vec(),
            Method::Lzw => lzw::compress(data),
            Method::Bzip => bzip::compress(data),
        }
    }

    /// Decompress a payload produced by [`Method::compress`].
    pub fn decompress(self, data: &[u8]) -> Result<Vec<u8>, CodecError> {
        match self {
            Method::Raw => Ok(data.to_vec()),
            Method::Lzw => lzw::decompress(data),
            Method::Bzip => bzip::decompress(data),
        }
    }

    /// The CPU cost model for this method.
    pub fn cost(self) -> CostModel {
        match self {
            // ~200 MB/s memcpy-ish.
            Method::Raw => {
                CostModel { compress_per_byte: 0.005, decompress_per_byte: 0.005, fixed: 20.0 }
            }
            // ~12 MB/s compress, ~20 MB/s decompress on the reference host.
            Method::Lzw => {
                CostModel { compress_per_byte: 0.085, decompress_per_byte: 0.05, fixed: 100.0 }
            }
            // ~1.2 MB/s compress, ~3.3 MB/s decompress.
            Method::Bzip => {
                CostModel { compress_per_byte: 0.85, decompress_per_byte: 0.30, fixed: 300.0 }
            }
        }
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// CPU work for (de)compression, in reference-machine microseconds
/// (`simnet` work-units: 1 unit = 1us on a speed-1.0 host).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    pub compress_per_byte: f64,
    pub decompress_per_byte: f64,
    /// Per-call overhead (setup, tables).
    pub fixed: f64,
}

impl CostModel {
    /// Work-units to compress `bytes` of input.
    pub fn compress_work(&self, bytes: usize) -> f64 {
        self.fixed + self.compress_per_byte * bytes as f64
    }

    /// Work-units to decompress back to `bytes` of output.
    pub fn decompress_work(&self, bytes: usize) -> f64 {
        self.fixed + self.decompress_per_byte * bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip() {
        for m in Method::ALL {
            assert_eq!(Method::from_code(m.code()), Some(m));
        }
        assert_eq!(Method::from_code(99), None);
    }

    #[test]
    fn all_methods_roundtrip_data() {
        let data = b"resource-aware applications adapt to changing resources ".repeat(100);
        for m in Method::ALL {
            let c = m.compress(&data);
            assert_eq!(m.decompress(&c).unwrap(), data, "{m}");
        }
    }

    #[test]
    fn bzip_compresses_better_but_costs_more() {
        let data = b"progressive transmission of wavelet coefficients ".repeat(200);
        let lz = Method::Lzw.compress(&data).len();
        let bz = Method::Bzip.compress(&data).len();
        assert!(bz < lz, "bzip {bz} vs lzw {lz}");
        assert!(Method::Bzip.cost().compress_per_byte > 5.0 * Method::Lzw.cost().compress_per_byte);
    }

    #[test]
    fn cost_model_arithmetic() {
        let c = Method::Lzw.cost();
        assert!((c.compress_work(1000) - (100.0 + 85.0)).abs() < 1e-9);
        assert!((c.decompress_work(0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn raw_is_identity() {
        let data = vec![1u8, 2, 3];
        assert_eq!(Method::Raw.compress(&data), data);
        assert_eq!(Method::Raw.decompress(&data).unwrap(), data);
    }
}
