//! The block-sorting pipeline — the paper's "compression B" (Bzip2).
//!
//! Per block: BWT → MTF → zero-RLE → canonical Huffman. Much better
//! compression than LZW on structured data at several times the CPU cost:
//! the expensive-CPU / low-bandwidth point of Figure 6(a).

use crate::bitio::{BitReader, BitWriter};
use crate::{bwt, huffman, mtf, rle, CodecError};

/// Default block size (bytes). Real bzip2 uses 100k-900k; 100k keeps the
/// O(n log^2 n) rotation sort fast while preserving the compression
/// behavior.
pub const DEFAULT_BLOCK: usize = 100_000;

const MAGIC: [u8; 4] = *b"RBZ1";

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos).ok_or_else(|| CodecError::corrupt("bzip varint truncated"))?;
        *pos += 1;
        if shift >= 64 {
            return Err(CodecError::corrupt("bzip varint overflow"));
        }
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Compress with the default block size.
pub fn compress(data: &[u8]) -> Vec<u8> {
    compress_with_block(data, DEFAULT_BLOCK)
}

/// Compress with an explicit block size (min 1).
pub fn compress_with_block(data: &[u8], block: usize) -> Vec<u8> {
    let block = block.max(1);
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    let blocks: Vec<&[u8]> = data.chunks(block).collect();
    put_varint(&mut out, blocks.len() as u64);
    for b in blocks {
        let (last, primary) = bwt::forward(b);
        let m = mtf::encode(&last);
        let z = rle::encode(&m);
        let mut freqs = vec![0u64; 256];
        for &v in &z {
            freqs[v as usize] += 1;
        }
        let lengths = huffman::build_lengths(&freqs);
        let mut w = BitWriter::new();
        huffman::encode_with(&lengths, &z, &mut w);
        let bits = w.finish();
        put_varint(&mut out, b.len() as u64);
        put_varint(&mut out, primary as u64);
        put_varint(&mut out, z.len() as u64);
        out.extend_from_slice(&lengths);
        put_varint(&mut out, bits.len() as u64);
        out.extend_from_slice(&bits);
    }
    out
}

/// Decompress a payload produced by [`compress`].
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, CodecError> {
    if data.len() < 4 || data[..4] != MAGIC {
        return Err(CodecError::corrupt("bad bzip magic"));
    }
    let mut pos = 4usize;
    let nblocks = get_varint(data, &mut pos)? as usize;
    if nblocks > data.len() {
        return Err(CodecError::corrupt("implausible block count"));
    }
    let mut out = Vec::new();
    for _ in 0..nblocks {
        let orig_len = get_varint(data, &mut pos)? as usize;
        let primary = get_varint(data, &mut pos)? as usize;
        let zlen = get_varint(data, &mut pos)? as usize;
        if orig_len > (1 << 30) || zlen > (1 << 30) {
            return Err(CodecError::corrupt("implausible block sizes"));
        }
        let lengths = data
            .get(pos..pos + 256)
            .ok_or_else(|| CodecError::corrupt("truncated Huffman table"))?;
        pos += 256;
        let bits_len = get_varint(data, &mut pos)? as usize;
        let bits = data
            .get(pos..pos + bits_len)
            .ok_or_else(|| CodecError::corrupt("truncated block payload"))?;
        pos += bits_len;
        let dec = huffman::Decoder::new(lengths)?;
        let mut r = BitReader::new(bits);
        let mut z = Vec::with_capacity(zlen);
        for _ in 0..zlen {
            z.push(dec.decode(&mut r)? as u8);
        }
        let m = rle::decode(&z)?;
        if m.len() != orig_len {
            return Err(CodecError::corrupt("block length mismatch after RLE"));
        }
        let last = mtf::decode(&m);
        let orig = bwt::inverse(&last, primary)?;
        out.extend_from_slice(&orig);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn edge_cases() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(&[0u8; 1000]);
    }

    #[test]
    fn text_roundtrip_and_ratio() {
        let data = b"the quick brown fox jumps over the lazy dog. ".repeat(500);
        let c = compress(&data);
        assert!(c.len() < data.len() / 5, "{} vs {}", c.len(), data.len());
        roundtrip(&data);
    }

    #[test]
    fn beats_lzw_on_structured_data() {
        let data = b"adaptive distributed applications adapt ".repeat(400);
        let b = compress(&data).len();
        let l = crate::lzw::compress(&data).len();
        assert!(b < l, "bzip {b} should beat lzw {l}");
    }

    #[test]
    fn random_data_roundtrips() {
        let mut rng = StdRng::seed_from_u64(21);
        for len in [1usize, 255, 4096, 150_000] {
            let data: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
            roundtrip(&data);
        }
    }

    #[test]
    fn multi_block_boundaries() {
        let mut rng = StdRng::seed_from_u64(22);
        let data: Vec<u8> = (0..2500).map(|_| rng.gen_range(b'a'..b'h')).collect();
        for block in [1usize, 7, 1000, 2499, 2500, 2501, 10_000] {
            let c = compress_with_block(&data, block);
            assert_eq!(decompress(&c).unwrap(), data, "block={block}");
        }
    }

    #[test]
    fn corrupt_inputs_error_cleanly() {
        assert!(decompress(b"").is_err());
        assert!(decompress(b"NOPE").is_err());
        let mut c = compress(b"hello world hello world hello");
        let mid = c.len() / 2;
        c[mid] ^= 0xff;
        // Either an error or (unlikely) a wrong roundtrip — but never a panic.
        let _ = decompress(&c);
        let c2 = compress(b"hello world");
        assert!(decompress(&c2[..c2.len() - 3]).is_err());
    }
}
