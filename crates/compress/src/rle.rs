//! Zero-run-length encoding of MTF output (the RLE2 stage of bzip2,
//! simplified): a zero byte is followed by a varint run length, so the
//! long zero runs MTF produces collapse to a couple of bytes.

use crate::CodecError;

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos).ok_or_else(|| CodecError::corrupt("RLE varint truncated"))?;
        *pos += 1;
        if shift >= 64 {
            return Err(CodecError::corrupt("RLE varint overflow"));
        }
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Encode: `0 x k` becomes `[0, varint(k-1)]`; other bytes are literal.
pub fn encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len());
    let mut i = 0usize;
    while i < data.len() {
        let b = data[i];
        if b == 0 {
            let mut run = 1usize;
            while i + run < data.len() && data[i + run] == 0 {
                run += 1;
            }
            out.push(0);
            put_varint(&mut out, (run - 1) as u64);
            i += run;
        } else {
            out.push(b);
            i += 1;
        }
    }
    out
}

/// Inverse of [`encode`].
pub fn decode(data: &[u8]) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::with_capacity(data.len());
    let mut pos = 0usize;
    while pos < data.len() {
        let b = data[pos];
        pos += 1;
        if b == 0 {
            let extra = get_varint(data, &mut pos)? as usize;
            // Cap expansion so corrupt input cannot OOM us.
            if extra > (1 << 30) {
                return Err(CodecError::corrupt("RLE run too long"));
            }
            out.extend(std::iter::repeat_n(0u8, extra + 1));
        } else {
            out.push(b);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn roundtrip(data: &[u8]) {
        assert_eq!(decode(&encode(data)).unwrap(), data);
    }

    #[test]
    fn edge_cases() {
        roundtrip(b"");
        roundtrip(&[0]);
        roundtrip(&[0, 0, 0]);
        roundtrip(&[1, 2, 3]);
        roundtrip(&[0, 1, 0, 0, 2, 0]);
    }

    #[test]
    fn long_zero_run_collapses() {
        let data = vec![0u8; 100_000];
        let enc = encode(&data);
        assert!(enc.len() <= 4, "run should collapse to 0 + varint, got {}", enc.len());
        roundtrip(&data);
    }

    #[test]
    fn random_roundtrip() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..20 {
            let data: Vec<u8> = (0..rng.gen_range(0..5000))
                .map(|_| if rng.gen_bool(0.7) { 0 } else { rng.gen() })
                .collect();
            roundtrip(&data);
        }
    }

    #[test]
    fn incompressible_data_grows_little() {
        let mut rng = StdRng::seed_from_u64(14);
        let data: Vec<u8> = (0..10_000).map(|_| rng.gen_range(1..=255u8)).collect();
        let enc = encode(&data);
        assert_eq!(enc.len(), data.len(), "no zeros, no overhead");
    }

    #[test]
    fn truncated_run_errors() {
        // A zero marker with its varint cut off.
        assert!(decode(&[5, 0]).is_err());
    }
}
