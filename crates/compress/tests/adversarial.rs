//! Adversarial round-trip inputs for every codec: the degenerate shapes
//! that historically break block/dictionary compressors — empty input,
//! single bytes, runs of one symbol, alternating symbols that defeat
//! run-length stages, and payloads straddling the bzip block boundary.

use compress::{bzip, lzw, Method};

fn adversarial_inputs() -> Vec<(&'static str, Vec<u8>)> {
    vec![
        ("empty", Vec::new()),
        ("one zero byte", vec![0]),
        ("one 0xff byte", vec![0xFF]),
        ("two distinct", vec![0, 255]),
        ("all equal short", vec![7; 64]),
        ("all equal long", vec![42; 300_000]),
        ("alternating pair", (0..100_000).map(|i| if i % 2 == 0 { 0xAA } else { 0x55 }).collect()),
        ("all 256 symbols", (0..=255u8).cycle().take(4096).collect()),
        ("sawtooth", (0..200_000).map(|i| (i % 251) as u8).collect()),
        ("single run then noise", {
            let mut v = vec![0u8; 1000];
            v.extend((0..1000).map(|i: u32| (i.wrapping_mul(2_654_435_761) >> 24) as u8));
            v
        }),
    ]
}

#[test]
fn every_method_round_trips_adversarial_inputs() {
    for method in Method::ALL {
        for (name, input) in adversarial_inputs() {
            let packed = method.compress(&input);
            let unpacked = method
                .decompress(&packed)
                .unwrap_or_else(|e| panic!("{method:?} failed on {name}: {e}"));
            assert_eq!(unpacked, input, "{method:?} corrupted {name}");
        }
    }
}

#[test]
fn bzip_round_trips_across_block_boundaries() {
    // Tiny block sizes force many blocks over one payload (kept small:
    // block size 1 means one BWT per byte); larger sizes split a bigger
    // payload into one or a few blocks.
    let small: Vec<u8> = (0..2_000u32).map(|i| (i.wrapping_mul(193) % 241) as u8).collect();
    for block in [1, 2, 255] {
        let packed = bzip::compress_with_block(&small, block);
        let unpacked =
            bzip::decompress(&packed).unwrap_or_else(|e| panic!("block size {block} failed: {e}"));
        assert_eq!(unpacked, small, "block size {block} corrupted the payload");
    }
    let data: Vec<u8> = (0..250_000u32).map(|i| (i.wrapping_mul(193) % 241) as u8).collect();
    for block in [4096, bzip::DEFAULT_BLOCK] {
        let packed = bzip::compress_with_block(&data, block);
        let unpacked =
            bzip::decompress(&packed).unwrap_or_else(|e| panic!("block size {block} failed: {e}"));
        assert_eq!(unpacked, data, "block size {block} corrupted the payload");
    }
    for size in [bzip::DEFAULT_BLOCK - 1, bzip::DEFAULT_BLOCK, bzip::DEFAULT_BLOCK + 1] {
        let data: Vec<u8> = (0..size as u32).map(|i| (i % 253) as u8).collect();
        let unpacked = bzip::decompress(&bzip::compress(&data)).expect("boundary payload");
        assert_eq!(unpacked, data, "payload of {size} bytes straddling the block boundary");
    }
}

#[test]
fn decompressors_reject_garbage_without_panicking() {
    // Corrupt/truncated payloads must produce errors, never panics or
    // bogus data that silently round-trips.
    let garbage: Vec<u8> =
        (0..4096u32).map(|i| (i.wrapping_mul(2_654_435_761) >> 13) as u8).collect();
    assert!(lzw::decompress(&garbage).is_err() || bzip::decompress(&garbage).is_err());
    for method in [Method::Lzw, Method::Bzip] {
        let mut packed = method.compress(b"the quick brown fox jumps over the lazy dog");
        packed.truncate(packed.len() / 2);
        // Truncation may error or decode a prefix, but must not panic.
        let _ = method.decompress(&packed);
    }
}
