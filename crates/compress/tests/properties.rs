//! Property-based tests: every codec stage must roundtrip for arbitrary
//! inputs, and composition properties must hold.

use proptest::prelude::*;

use compress::{bwt, bzip, huffman, lzw, mtf, rle, Method};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lzw_roundtrips(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let c = lzw::compress(&data);
        prop_assert_eq!(lzw::decompress(&c).unwrap(), data);
    }

    #[test]
    fn lzw_roundtrips_low_entropy(data in proptest::collection::vec(0u8..4, 0..8192)) {
        let c = lzw::compress(&data);
        prop_assert_eq!(lzw::decompress(&c).unwrap(), data);
    }

    #[test]
    fn bzip_roundtrips(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let c = bzip::compress(&data);
        prop_assert_eq!(bzip::decompress(&c).unwrap(), data);
    }

    #[test]
    fn bzip_roundtrips_any_block_size(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        block in 1usize..3000,
    ) {
        let c = bzip::compress_with_block(&data, block);
        prop_assert_eq!(bzip::decompress(&c).unwrap(), data);
    }

    #[test]
    fn bwt_roundtrips(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let (last, primary) = bwt::forward(&data);
        prop_assert_eq!(last.len(), data.len());
        prop_assert_eq!(bwt::inverse(&last, primary).unwrap(), data);
    }

    #[test]
    fn bwt_is_a_permutation(data in proptest::collection::vec(any::<u8>(), 1..1024)) {
        let (last, _) = bwt::forward(&data);
        let mut a = data.clone();
        let mut b = last.clone();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b, "BWT must permute, not alter, the bytes");
    }

    #[test]
    fn suffix_array_is_sorted_permutation(data in proptest::collection::vec(any::<u8>(), 1..512)) {
        let sa = bwt::suffix_array(&data);
        prop_assert_eq!(sa.len(), data.len());
        let mut seen = vec![false; data.len()];
        for &i in &sa {
            prop_assert!(!seen[i as usize]);
            seen[i as usize] = true;
        }
        for w in sa.windows(2) {
            prop_assert!(data[w[0] as usize..] <= data[w[1] as usize..]);
        }
    }

    #[test]
    fn mtf_roundtrips(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        prop_assert_eq!(mtf::decode(&mtf::encode(&data)), data);
    }

    #[test]
    fn rle_roundtrips(data in proptest::collection::vec(prop_oneof![Just(0u8), any::<u8>()], 0..4096)) {
        prop_assert_eq!(rle::decode(&rle::encode(&data)).unwrap(), data);
    }

    #[test]
    fn rle_never_grows_zero_heavy_data(runs in proptest::collection::vec((any::<u8>(), 1usize..50), 0..50)) {
        let mut data = Vec::new();
        for (b, n) in runs {
            data.extend(std::iter::repeat_n(b, n));
        }
        let enc = rle::encode(&data);
        // Worst case: one extra varint byte per isolated zero.
        prop_assert!(enc.len() <= data.len() + data.iter().filter(|&&b| b == 0).count());
        prop_assert_eq!(rle::decode(&enc).unwrap(), data);
    }

    #[test]
    fn huffman_roundtrips(data in proptest::collection::vec(any::<u8>(), 1..2048)) {
        let mut freqs = vec![0u64; 256];
        for &b in &data {
            freqs[b as usize] += 1;
        }
        let lengths = huffman::build_lengths(&freqs);
        let mut w = compress::bitio::BitWriter::new();
        huffman::encode_with(&lengths, &data, &mut w);
        let bits = w.finish();
        let dec = huffman::Decoder::new(&lengths).unwrap();
        let mut r = compress::bitio::BitReader::new(&bits);
        for &expect in &data {
            prop_assert_eq!(dec.decode(&mut r).unwrap(), expect as u16);
        }
    }

    #[test]
    fn huffman_lengths_satisfy_kraft(freqs in proptest::collection::vec(0u64..10_000, 256)) {
        let lengths = huffman::build_lengths(&freqs);
        let maxl = lengths.iter().copied().max().unwrap_or(0) as u32;
        prop_assume!(maxl > 0);
        let kraft: u128 = lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 1u128 << (maxl - l as u32))
            .sum();
        prop_assert!(kraft <= 1u128 << maxl);
        // Every nonzero-frequency symbol got a code.
        for (i, &f) in freqs.iter().enumerate() {
            prop_assert_eq!(f > 0, lengths[i] > 0, "symbol {}", i);
        }
    }

    #[test]
    fn methods_roundtrip_and_decode_rejects_wrong_method(
        data in proptest::collection::vec(any::<u8>(), 1..1024),
    ) {
        for m in Method::ALL {
            let c = m.compress(&data);
            prop_assert_eq!(m.decompress(&c).unwrap(), data.clone(), "{}", m);
        }
        // Decompressing an LZW stream as bzip must error (magic check).
        let c = Method::Lzw.compress(&data);
        prop_assert!(Method::Bzip.decompress(&c).is_err());
    }

    #[test]
    fn decompress_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Any of these may error, none may panic.
        let _ = lzw::decompress(&data);
        let _ = bzip::decompress(&data);
        let _ = rle::decode(&data);
    }
}
