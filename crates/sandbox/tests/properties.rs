//! Property-based tests of the virtual execution environment: enforced
//! shares hold for arbitrary limits and workloads.

use std::sync::Arc;
use std::sync::Mutex;

use proptest::prelude::*;

use sandbox::{Limits, LimitsHandle, SandboxStats, Sandboxed, TokenBucket};
use simnet::{Actor, Ctx, Sim, SimTime};

struct Worker {
    work: f64,
    done: Arc<Mutex<Option<SimTime>>>,
}
impl Actor for Worker {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.compute(self.work);
        ctx.continue_with(0);
    }
    fn on_continue(&mut self, _t: u64, ctx: &mut Ctx<'_>) {
        *self.done.lock().unwrap() = Some(ctx.now());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn cpu_share_enforced_for_any_share(share in 0.05f64..1.0, work_ms in 50.0f64..2000.0) {
        let work = work_ms * 1000.0;
        let mut sim = Sim::new();
        let h = sim.add_host("h", 1.0, 1 << 30);
        let done = Arc::new(Mutex::new(None));
        let lh = LimitsHandle::new(Limits::cpu(share));
        sim.spawn(
            h,
            Box::new(Sandboxed::new(
                Worker { work, done: done.clone() },
                lh,
                SandboxStats::default(),
            )),
        );
        sim.set_event_limit(Some(10_000_000));
        sim.run_until_idle();
        let measured = done.lock().unwrap().expect("completes").as_secs_f64();
        let expected = work / share / 1e6;
        // Within one quantum of the ideal.
        prop_assert!(
            (measured - expected).abs() <= expected * 0.02 + 0.011,
            "share {} work {} -> {} vs {}",
            share, work, measured, expected
        );
    }

    #[test]
    fn achieved_share_never_exceeds_cap(share in 0.05f64..0.95) {
        let mut sim = Sim::new();
        let h = sim.add_host("h", 1.0, 1 << 30);
        let done = Arc::new(Mutex::new(None));
        let lh = LimitsHandle::new(Limits::cpu(share));
        let stats = SandboxStats::new(60_000_000);
        sim.spawn(
            h,
            Box::new(Sandboxed::new(
                Worker { work: 400_000.0, done: done.clone() },
                lh,
                stats.clone(),
            )),
        );
        sim.run_until_idle();
        let est = stats.cpu_share().expect("samples exist");
        prop_assert!(est <= share * 1.05 + 0.01, "estimated {} vs cap {}", est, share);
        prop_assert!(est >= share * 0.85, "sandbox should deliver the full share when alone");
    }

    #[test]
    fn token_bucket_long_run_rate_is_bounded(
        rate in 1_000.0f64..1_000_000.0,
        msgs in proptest::collection::vec(1u64..100_000, 1..40),
    ) {
        let mut b = TokenBucket::with_default_burst(rate);
        let mut t = SimTime::ZERO;
        let mut total = 0u64;
        for &m in &msgs {
            let d = b.acquire(t, m);
            t += d;
            total += m;
        }
        let elapsed = t.as_secs_f64();
        if elapsed > 0.5 {
            let burst = rate * 0.1 + 2048.0;
            let effective = (total as f64 - burst) / elapsed;
            prop_assert!(
                effective <= rate * 1.05,
                "effective {} exceeds rate {}",
                effective, rate
            );
        }
    }

    #[test]
    fn sandboxed_equals_kernel_cap(share in 0.1f64..1.0) {
        // The user-level sandbox must track the ideal kernel-enforced cap
        // (Figure 3b's claim) for arbitrary shares.
        let work = 300_000.0;
        let run_sandbox = |share: f64| {
            let mut sim = Sim::new();
            let h = sim.add_host("h", 1.0, 1 << 30);
            let done = Arc::new(Mutex::new(None));
            let lh = LimitsHandle::new(Limits::cpu(share));
            sim.spawn(
                h,
                Box::new(Sandboxed::new(Worker { work, done: done.clone() }, lh, SandboxStats::default())),
            );
            sim.run_until_idle();
            let t = *done.lock().unwrap();
            t.unwrap().as_secs_f64()
        };
        let run_kernel = |share: f64| {
            let mut sim = Sim::new();
            let h = sim.add_host("h", 1.0, 1 << 30);
            let done = Arc::new(Mutex::new(None));
            let a = sim.spawn(h, Box::new(Worker { work, done: done.clone() }));
            sim.set_cpu_cap(a, Some(share));
            sim.run_until_idle();
            let t = *done.lock().unwrap();
            t.unwrap().as_secs_f64()
        };
        let (sb, k) = (run_sandbox(share), run_kernel(share));
        prop_assert!((sb - k).abs() / k < 0.05, "sandbox {} vs kernel {}", sb, k);
    }
}
