//! # sandbox — a virtual execution environment over `simnet`
//!
//! Reproduction of §5.1 of *Chang & Karamcheti (HPDC 2000)*: a user-level
//! sandbox that constrains an application's average utilization of CPU,
//! memory, and network without modifying the application, and that doubles
//! as (1) the *testbed* in which configuration behavior is profiled and
//! (2) the run-time *policing* mechanism backing admission control.
//!
//! The original implementation injected code into Win32 processes via API
//! interception, manipulated process priority every few milliseconds to
//! enforce CPU shares, toggled page protections for memory limits, and
//! delayed message sends/receives for bandwidth limits. Here the same
//! architecture is built on `simnet`'s interposition hook:
//!
//! | Paper mechanism | This crate |
//! |---|---|
//! | API interception / code injection | [`Sandboxed`] wrapper actor draining and re-emitting the application's actions |
//! | priority manipulation every few ms | compute chopped into 10 ms quanta + inserted idle gaps ([`wrap::QUANTUM_US`]) |
//! | delaying sends/receives | token-bucket shaping ([`TokenBucket`]) of sends and of receive *processing* |
//! | page-protection memory limits | paging-penalty inflation of compute once allocation exceeds the limit |
//! | progress metric estimation | [`ProgressEstimator`] / [`SandboxStats`] sliding-window estimates |
//! | admission control & reservation | [`HostVmm`] |
//! | NT Performance Monitor traces | [`UsageSampler`] |
//!
//! Multiple sandboxes can coexist on one host without interfering — each
//! wraps its own actor — which is what makes the profile-database testbed
//! and run-time reservations cheap (§6.2).

pub mod bucket;
pub mod limits;
pub mod progress;
pub mod sampler;
pub mod vm;
pub mod wrap;

pub use bucket::TokenBucket;
pub use limits::{LimitSchedule, Limits, LimitsHandle};
pub use progress::{CpuSample, NetSample, ProgressEstimator, SandboxStats};
pub use sampler::{SeriesHandle, UsageSampler};
pub use vm::{AdmissionError, HostVmm, Reservation};
pub use wrap::{Sandboxed, QUANTUM_US, TAG_BASE};

/// The sandbox vocabulary in one import: `use sandbox::prelude::*;`.
pub mod prelude {
    pub use crate::limits::{LimitSchedule, Limits, LimitsHandle};
    pub use crate::progress::{ProgressEstimator, SandboxStats};
    pub use crate::sampler::{SeriesHandle, UsageSampler};
    pub use crate::vm::{HostVmm, Reservation};
    pub use crate::wrap::Sandboxed;
}
