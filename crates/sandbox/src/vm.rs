//! Admission control and reservation over virtual execution environments.
//!
//! §6.2 of the paper: "we can reserve a specific CPU share (as well as
//! network bandwidth and amount of physical memory) with simple admission
//! control. For example, the application can be admitted if the total
//! request for CPU share across all applications is less than a certain
//! threshold." [`HostVmm`] implements exactly that bookkeeping for one
//! host: named reservations of CPU share, bandwidth, and memory, admitted
//! only while aggregate totals stay below thresholds.

use std::collections::BTreeMap;

/// A resource reservation request for one sandboxed application.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Reservation {
    pub cpu_share: f64,
    pub net_bps: f64,
    pub mem_bytes: u64,
}

/// Why an admission request was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionError {
    CpuExhausted { requested: f64, available: f64 },
    NetExhausted { requested: f64, available: f64 },
    MemExhausted { requested: u64, available: u64 },
    DuplicateName(String),
    InvalidRequest(String),
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::CpuExhausted { requested, available } => {
                write!(f, "CPU share exhausted: requested {requested}, available {available}")
            }
            AdmissionError::NetExhausted { requested, available } => {
                write!(f, "bandwidth exhausted: requested {requested}, available {available}")
            }
            AdmissionError::MemExhausted { requested, available } => {
                write!(f, "memory exhausted: requested {requested}, available {available}")
            }
            AdmissionError::DuplicateName(n) => write!(f, "duplicate reservation name {n}"),
            AdmissionError::InvalidRequest(m) => write!(f, "invalid request: {m}"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Per-host admission controller.
#[derive(Debug)]
pub struct HostVmm {
    /// Maximum total CPU share handed out (the paper leaves headroom for
    /// uncontrollable OS activity; default 0.95).
    pub cpu_threshold: f64,
    /// Total reservable bandwidth, bytes/second.
    pub net_capacity_bps: f64,
    /// Total reservable memory, bytes.
    pub mem_capacity: u64,
    reservations: BTreeMap<String, Reservation>,
}

impl HostVmm {
    pub fn new(net_capacity_bps: f64, mem_capacity: u64) -> Self {
        HostVmm {
            cpu_threshold: 0.95,
            net_capacity_bps,
            mem_capacity,
            reservations: BTreeMap::new(),
        }
    }

    pub fn with_cpu_threshold(mut self, t: f64) -> Self {
        assert!(t > 0.0 && t <= 1.0);
        self.cpu_threshold = t;
        self
    }

    fn totals(&self) -> Reservation {
        let mut t = Reservation::default();
        for r in self.reservations.values() {
            t.cpu_share += r.cpu_share;
            t.net_bps += r.net_bps;
            t.mem_bytes += r.mem_bytes;
        }
        t
    }

    /// Try to admit a named reservation. All-or-nothing.
    pub fn admit(&mut self, name: &str, req: Reservation) -> Result<(), AdmissionError> {
        if req.cpu_share < 0.0 || req.cpu_share > 1.0 {
            return Err(AdmissionError::InvalidRequest(format!(
                "cpu share {} out of [0,1]",
                req.cpu_share
            )));
        }
        if req.net_bps < 0.0 {
            return Err(AdmissionError::InvalidRequest("negative bandwidth".into()));
        }
        if self.reservations.contains_key(name) {
            return Err(AdmissionError::DuplicateName(name.to_string()));
        }
        let t = self.totals();
        let cpu_avail = self.cpu_threshold - t.cpu_share;
        if req.cpu_share > cpu_avail + 1e-12 {
            return Err(AdmissionError::CpuExhausted {
                requested: req.cpu_share,
                available: cpu_avail.max(0.0),
            });
        }
        let net_avail = self.net_capacity_bps - t.net_bps;
        if req.net_bps > net_avail + 1e-9 {
            return Err(AdmissionError::NetExhausted {
                requested: req.net_bps,
                available: net_avail.max(0.0),
            });
        }
        let mem_avail = self.mem_capacity.saturating_sub(t.mem_bytes);
        if req.mem_bytes > mem_avail {
            return Err(AdmissionError::MemExhausted {
                requested: req.mem_bytes,
                available: mem_avail,
            });
        }
        self.reservations.insert(name.to_string(), req);
        Ok(())
    }

    /// Release a reservation; returns it if present.
    pub fn release(&mut self, name: &str) -> Option<Reservation> {
        self.reservations.remove(name)
    }

    /// Current reservation for `name`.
    pub fn reservation(&self, name: &str) -> Option<Reservation> {
        self.reservations.get(name).copied()
    }

    /// Remaining admissible CPU share.
    pub fn cpu_available(&self) -> f64 {
        (self.cpu_threshold - self.totals().cpu_share).max(0.0)
    }

    pub fn reservation_count(&self) -> usize {
        self.reservations.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu(share: f64) -> Reservation {
        Reservation { cpu_share: share, ..Reservation::default() }
    }

    #[test]
    fn admits_until_threshold() {
        let mut vmm = HostVmm::new(1e9, 1 << 30);
        vmm.admit("a", cpu(0.5)).unwrap();
        vmm.admit("b", cpu(0.4)).unwrap();
        let err = vmm.admit("c", cpu(0.2)).unwrap_err();
        assert!(matches!(err, AdmissionError::CpuExhausted { .. }));
        assert!((vmm.cpu_available() - 0.05).abs() < 1e-9);
    }

    #[test]
    fn release_frees_capacity() {
        let mut vmm = HostVmm::new(1e9, 1 << 30);
        vmm.admit("a", cpu(0.9)).unwrap();
        assert!(vmm.admit("b", cpu(0.2)).is_err());
        assert_eq!(vmm.release("a"), Some(cpu(0.9)));
        vmm.admit("b", cpu(0.2)).unwrap();
        assert_eq!(vmm.reservation_count(), 1);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut vmm = HostVmm::new(1e9, 1 << 30);
        vmm.admit("a", cpu(0.1)).unwrap();
        assert!(matches!(vmm.admit("a", cpu(0.1)), Err(AdmissionError::DuplicateName(_))));
    }

    #[test]
    fn net_and_mem_limits_enforced() {
        let mut vmm = HostVmm::new(1_000_000.0, 1_000);
        vmm.admit("a", Reservation { cpu_share: 0.1, net_bps: 800_000.0, mem_bytes: 600 }).unwrap();
        assert!(matches!(
            vmm.admit("b", Reservation { cpu_share: 0.1, net_bps: 300_000.0, mem_bytes: 0 }),
            Err(AdmissionError::NetExhausted { .. })
        ));
        assert!(matches!(
            vmm.admit("c", Reservation { cpu_share: 0.1, net_bps: 0.0, mem_bytes: 500 }),
            Err(AdmissionError::MemExhausted { .. })
        ));
    }

    #[test]
    fn invalid_requests_rejected() {
        let mut vmm = HostVmm::new(1e9, 1 << 30);
        assert!(vmm.admit("a", cpu(1.5)).is_err());
        assert!(vmm
            .admit("b", Reservation { cpu_share: 0.1, net_bps: -1.0, mem_bytes: 0 })
            .is_err());
    }

    #[test]
    fn custom_threshold() {
        let mut vmm = HostVmm::new(1e9, 1 << 30).with_cpu_threshold(0.5);
        assert!(vmm.admit("a", cpu(0.6)).is_err());
        vmm.admit("a", cpu(0.5)).unwrap();
    }
}
