//! Token-bucket rate limiting, used for the sandbox's network shaping
//! ("delaying sending and receiving of messages to ensure that the
//! application sees the desired bandwidth", paper §5.1).

use simnet::SimTime;

/// A token bucket: tokens are bytes, refilled at `rate` bytes/second up to
/// `burst` bytes. [`TokenBucket::acquire`] answers "how long must this
/// message wait so the long-run average stays at or below the rate".
#[derive(Debug, Clone)]
pub struct TokenBucket {
    tokens: f64,
    burst: f64,
    /// Bytes per microsecond.
    rate: f64,
    last: SimTime,
}

impl TokenBucket {
    /// Create a bucket with the given rate (bytes/second) and burst size
    /// (bytes). The bucket starts full.
    pub fn new(rate_bps: f64, burst_bytes: f64) -> Self {
        assert!(rate_bps > 0.0 && burst_bytes > 0.0);
        TokenBucket {
            tokens: burst_bytes,
            burst: burst_bytes,
            rate: rate_bps / 1e6,
            last: SimTime::ZERO,
        }
    }

    /// A bucket whose burst is 100 ms worth of the rate (min 2 KiB), a
    /// reasonable default for message-oriented shaping.
    pub fn with_default_burst(rate_bps: f64) -> Self {
        let burst = (rate_bps * 0.1).max(2048.0);
        TokenBucket::new(rate_bps, burst)
    }

    /// Change the rate (bytes/second); tokens and burst are preserved.
    pub fn set_rate(&mut self, now: SimTime, rate_bps: f64) {
        assert!(rate_bps > 0.0);
        self.refill(now);
        self.rate = rate_bps / 1e6;
    }

    pub fn rate_bps(&self) -> f64 {
        self.rate * 1e6
    }

    fn refill(&mut self, now: SimTime) {
        let dt = now.since(self.last) as f64;
        self.last = now;
        self.tokens = (self.tokens + dt * self.rate).min(self.burst);
    }

    /// Charge `bytes` at time `now`; returns the delay in microseconds the
    /// caller must wait before the operation conforms to the rate.
    pub fn acquire(&mut self, now: SimTime, bytes: u64) -> u64 {
        self.refill(now);
        let b = bytes as f64;
        if self.tokens >= b {
            self.tokens -= b;
            0
        } else {
            let deficit = b - self.tokens;
            self.tokens = 0.0;
            // The deficit is paid off by future refill; the caller waits for it.
            let delay = (deficit / self.rate).ceil() as u64;
            // Move the clock forward logically: the refill during `delay`
            // exactly covers the deficit, so tokens stay at 0.
            self.last = now + delay;
            delay.max(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_passes_without_delay() {
        let mut b = TokenBucket::new(1_000_000.0, 10_000.0);
        assert_eq!(b.acquire(SimTime::ZERO, 10_000), 0);
    }

    #[test]
    fn deficit_incurs_delay() {
        let mut b = TokenBucket::new(1_000_000.0, 10_000.0); // 1 byte/us
        assert_eq!(b.acquire(SimTime::ZERO, 10_000), 0);
        // Bucket empty; 5000 bytes need 5000us of refill.
        assert_eq!(b.acquire(SimTime::ZERO, 5_000), 5_000);
    }

    #[test]
    fn refill_restores_tokens() {
        let mut b = TokenBucket::new(1_000_000.0, 10_000.0);
        assert_eq!(b.acquire(SimTime::ZERO, 10_000), 0);
        // After 10ms the bucket is full again (capped at burst).
        assert_eq!(b.acquire(SimTime::from_ms(10), 10_000), 0);
    }

    #[test]
    fn long_run_average_respects_rate() {
        // 100 KB/s; send 10 x 50 KB messages back to back from t=0.
        let mut b = TokenBucket::new(100_000.0, 50_000.0);
        let mut t = SimTime::ZERO;
        let mut total_delay = 0u64;
        for _ in 0..10 {
            let d = b.acquire(t, 50_000);
            total_delay += d;
            t += d; // sender waits before each message
        }
        // 500 KB at 100 KB/s needs ~5s minus the 0.5s burst credit.
        let effective = 500_000.0 / (t.as_secs_f64().max(1e-9));
        assert!(
            effective <= 115_000.0,
            "long-run rate {effective} must stay near the 100 KB/s cap"
        );
        assert!(total_delay >= 4_000_000, "delays must accumulate");
    }

    #[test]
    fn rate_change_takes_effect() {
        let mut b = TokenBucket::new(1_000_000.0, 1_000.0);
        b.acquire(SimTime::ZERO, 1_000);
        b.set_rate(SimTime::ZERO, 100_000.0); // 10x slower
        let d = b.acquire(SimTime::ZERO, 1_000);
        assert_eq!(d, 10_000, "1000 bytes at 0.1 byte/us");
    }
}
