//! Periodic resource-usage sampling (the "NT Performance Monitor" analog).
//!
//! Figure 3(a) of the paper shows a Performance Monitor trace of an
//! application's CPU usage while the testbed varies its share.
//! [`UsageSampler`] reproduces that: an independent actor that samples a
//! target actor's accounting every interval and records the observed CPU
//! share (CPU time received / interval) into a shared time series.

use simnet::{Actor, ActorId, Ctx, SimTime};
use std::sync::{Arc, Mutex};

/// A shared, append-only `(time, value)` series.
#[derive(Debug, Clone, Default)]
pub struct SeriesHandle(Arc<Mutex<Vec<(SimTime, f64)>>>);

impl SeriesHandle {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&self, t: SimTime, v: f64) {
        self.0.lock().unwrap().push((t, v));
    }

    /// Copy the collected points out.
    pub fn points(&self) -> Vec<(SimTime, f64)> {
        self.0.lock().unwrap().clone()
    }

    pub fn len(&self) -> usize {
        self.0.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.lock().unwrap().is_empty()
    }

    /// Mean value over points with `t` in `[from, to)`.
    pub fn mean_in(&self, from: SimTime, to: SimTime) -> Option<f64> {
        let pts = self.0.lock().unwrap();
        let vals: Vec<f64> =
            pts.iter().filter(|(t, _)| *t >= from && *t < to).map(|(_, v)| *v).collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }
}

/// Samples the CPU usage of `target` every `interval_us`, recording the
/// share of one full processor used during each interval.
pub struct UsageSampler {
    target: ActorId,
    interval_us: u64,
    series: SeriesHandle,
    stop_at: Option<SimTime>,
    last_cpu_us: f64,
    obs: Option<SamplerObs>,
}

/// Pre-registered metric targets so each sample stays allocation-free.
struct SamplerObs {
    obs: obs::Obs,
    sample_span: obs::MetricId,
    cpu_share: obs::MetricId,
}

impl UsageSampler {
    pub fn new(target: ActorId, interval_us: u64, series: SeriesHandle) -> Self {
        assert!(interval_us > 0);
        UsageSampler { target, interval_us, series, stop_at: None, last_cpu_us: 0.0, obs: None }
    }

    /// Stop sampling at `t` (otherwise samples forever, keeping the
    /// simulation alive).
    pub fn until(mut self, t: SimTime) -> Self {
        self.stop_at = Some(t);
        self
    }

    /// Mirror every sample into `obs`: the observed share on the
    /// `"sandbox.cpu_share"` gauge and per-sample latency on the
    /// `"sandbox.sample"` histogram.
    pub fn with_obs(mut self, obs: &obs::Obs) -> Self {
        self.obs = Some(SamplerObs {
            obs: obs.clone(),
            sample_span: obs.histogram("sandbox.sample"),
            cpu_share: obs.gauge("sandbox.cpu_share"),
        });
        self
    }
}

impl Actor for UsageSampler {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.interval_us, 0);
    }

    fn on_timer(&mut self, _tag: u64, ctx: &mut Ctx<'_>) {
        let _span = self.obs.as_ref().map(|h| h.obs.span(h.sample_span));
        let snap = ctx.snapshot_of(self.target);
        let share = (snap.cpu_time_us - self.last_cpu_us) / self.interval_us as f64;
        self.last_cpu_us = snap.cpu_time_us;
        self.series.push(ctx.now(), share);
        if let Some(h) = &self.obs {
            h.obs.set(h.cpu_share, share);
        }
        match self.stop_at {
            Some(t) if ctx.now() + self.interval_us > t => {}
            _ => ctx.set_timer(self.interval_us, 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::limits::{Limits, LimitsHandle};
    use crate::progress::SandboxStats;
    use crate::wrap::Sandboxed;
    use simnet::{dur, Sim};

    struct Grinder;
    impl Actor for Grinder {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.compute(1e12); // effectively forever
        }
    }

    #[test]
    fn sampler_tracks_capped_usage() {
        let mut sim = Sim::new();
        let h = sim.add_host("ref", 1.0, 1 << 30);
        let lh = LimitsHandle::new(Limits::cpu(0.8));
        let sb = Sandboxed::new(Grinder, lh.clone(), SandboxStats::default());
        let target = sim.spawn(h, Box::new(sb));
        let series = SeriesHandle::new();
        sim.spawn(
            h,
            Box::new(
                UsageSampler::new(target, dur::secs(1), series.clone())
                    .until(SimTime::from_secs(10)),
            ),
        );
        sim.at(SimTime::from_secs(5), move |_| lh.set_cpu_share(Some(0.3)));
        sim.run_until(SimTime::from_secs(10));
        // First half ~0.8, second half ~0.3.
        let early = series.mean_in(SimTime::from_secs(1), SimTime::from_secs(5)).unwrap();
        let late = series.mean_in(SimTime::from_secs(7), SimTime::from_secs(10)).unwrap();
        assert!((early - 0.8).abs() < 0.05, "early mean {early}");
        assert!((late - 0.3).abs() < 0.05, "late mean {late}");
    }

    #[test]
    fn sampler_mirrors_into_obs() {
        let obs = obs::Obs::new();
        let mut sim = Sim::new();
        let h = sim.add_host("ref", 1.0, 1 << 30);
        let lh = LimitsHandle::new(Limits::cpu(0.5));
        let sb = Sandboxed::new(Grinder, lh, SandboxStats::default());
        let target = sim.spawn(h, Box::new(sb));
        let series = SeriesHandle::new();
        sim.spawn(
            h,
            Box::new(
                UsageSampler::new(target, dur::secs(1), series.clone())
                    .until(SimTime::from_secs(5))
                    .with_obs(&obs),
            ),
        );
        sim.run_until(SimTime::from_secs(5));
        let gauge = obs.lookup("sandbox.cpu_share").unwrap();
        let span = obs.lookup("sandbox.sample").unwrap();
        // Gauge holds the most recent sample; histogram saw one span per sample.
        let last = series.points().last().unwrap().1;
        assert_eq!(obs.gauge_value(gauge), last);
        assert_eq!(obs.histogram_stats(span).count, series.len() as u64);
    }

    #[test]
    fn sampler_stops_at_deadline() {
        let mut sim = Sim::new();
        let h = sim.add_host("ref", 1.0, 1 << 30);
        struct Idle;
        impl Actor for Idle {}
        let target = sim.spawn(h, Box::new(Idle));
        let series = SeriesHandle::new();
        sim.spawn(
            h,
            Box::new(
                UsageSampler::new(target, dur::secs(1), series.clone())
                    .until(SimTime::from_secs(3)),
            ),
        );
        sim.run_until_idle();
        assert_eq!(series.len(), 3);
        assert!(series.points().iter().all(|(_, v)| *v == 0.0));
    }
}
