//! Resource limits for a sandboxed application, and run-time schedules of
//! limit changes.
//!
//! A [`LimitsHandle`] is shared between the sandbox wrapper (which reads it
//! every scheduling quantum) and the experiment driver (which mutates it,
//! possibly from scripted [`simnet::Sim::at`] events). Changes therefore
//! take effect within one quantum, matching the paper's testbed where the
//! interception layer re-reads its configuration every few milliseconds.

use simnet::{Sim, SimTime};
use std::sync::{Arc, Mutex};

/// Resource caps enforced by the virtual execution environment.
/// `None` always means "unconstrained".
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Limits {
    /// Maximum average CPU share, as a fraction of the host in (0, 1].
    pub cpu_share: Option<f64>,
    /// Maximum inbound network bandwidth, bytes per second.
    pub net_recv_bps: Option<f64>,
    /// Maximum outbound network bandwidth, bytes per second.
    pub net_send_bps: Option<f64>,
    /// Maximum resident memory in bytes; exceeding it slows computation
    /// (paging model).
    pub mem_bytes: Option<u64>,
}

impl Limits {
    /// No constraints at all.
    pub fn unconstrained() -> Self {
        Limits::default()
    }

    /// Only a CPU-share cap.
    pub fn cpu(share: f64) -> Self {
        assert!(share > 0.0 && share <= 1.0, "cpu share must be in (0,1], got {share}");
        Limits { cpu_share: Some(share), ..Limits::default() }
    }

    /// Only a symmetric network bandwidth cap (bytes/second).
    pub fn net(bps: f64) -> Self {
        assert!(bps > 0.0, "bandwidth must be positive");
        Limits { net_recv_bps: Some(bps), net_send_bps: Some(bps), ..Limits::default() }
    }

    /// Builder-style: add a CPU cap.
    pub fn with_cpu(mut self, share: f64) -> Self {
        assert!(share > 0.0 && share <= 1.0);
        self.cpu_share = Some(share);
        self
    }

    /// Builder-style: add a symmetric bandwidth cap (bytes/second).
    pub fn with_net(mut self, bps: f64) -> Self {
        assert!(bps > 0.0);
        self.net_recv_bps = Some(bps);
        self.net_send_bps = Some(bps);
        self
    }

    /// Builder-style: add a memory cap (bytes).
    pub fn with_mem(mut self, bytes: u64) -> Self {
        self.mem_bytes = Some(bytes);
        self
    }
}

/// Shared, mutable handle to a sandbox's limits.
#[derive(Debug, Clone, Default)]
pub struct LimitsHandle(Arc<Mutex<Limits>>);

impl LimitsHandle {
    pub fn new(limits: Limits) -> Self {
        LimitsHandle(Arc::new(Mutex::new(limits)))
    }

    /// Current limits (copied out).
    pub fn get(&self) -> Limits {
        *self.0.lock().unwrap()
    }

    /// Replace the limits wholesale.
    pub fn set(&self, limits: Limits) {
        *self.0.lock().unwrap() = limits;
    }

    pub fn set_cpu_share(&self, share: Option<f64>) {
        if let Some(s) = share {
            assert!(s > 0.0 && s <= 1.0, "cpu share must be in (0,1], got {s}");
        }
        self.0.lock().unwrap().cpu_share = share;
    }

    pub fn set_net_bps(&self, bps: Option<f64>) {
        let mut l = self.0.lock().unwrap();
        l.net_recv_bps = bps;
        l.net_send_bps = bps;
    }

    pub fn set_mem_bytes(&self, bytes: Option<u64>) {
        self.0.lock().unwrap().mem_bytes = bytes;
    }
}

/// A piecewise-constant schedule of limit changes, e.g. the paper's
/// "80% share, then 40% at t=20s, then 60% at t=50s" (Figure 3a).
#[derive(Debug, Clone, Default)]
pub struct LimitSchedule {
    /// `(time, limits)` pairs; applied in order.
    pub steps: Vec<(SimTime, Limits)>,
}

impl LimitSchedule {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a step: at `t`, switch to `limits`.
    pub fn at(mut self, t: SimTime, limits: Limits) -> Self {
        self.steps.push((t, limits));
        self
    }

    /// Install the schedule into a simulation, driving `handle`.
    /// Steps in the past (relative to `sim.now()`) are applied immediately.
    pub fn install(self, sim: &mut Sim, handle: &LimitsHandle) {
        for (t, limits) in self.steps {
            let h = handle.clone();
            if t <= sim.now() {
                h.set(limits);
            } else {
                sim.at(t, move |_| h.set(limits));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let l = Limits::unconstrained().with_cpu(0.4).with_net(50_000.0).with_mem(1 << 20);
        assert_eq!(l.cpu_share, Some(0.4));
        assert_eq!(l.net_recv_bps, Some(50_000.0));
        assert_eq!(l.net_send_bps, Some(50_000.0));
        assert_eq!(l.mem_bytes, Some(1 << 20));
    }

    #[test]
    #[should_panic]
    fn cpu_share_over_one_rejected() {
        let _ = Limits::cpu(1.5);
    }

    #[test]
    fn handle_shares_state() {
        let h = LimitsHandle::new(Limits::cpu(0.8));
        let h2 = h.clone();
        h2.set_cpu_share(Some(0.4));
        assert_eq!(h.get().cpu_share, Some(0.4));
    }

    #[test]
    fn schedule_applies_at_times() {
        let mut sim = Sim::new();
        sim.add_host("h", 1.0, 1 << 30);
        let h = LimitsHandle::new(Limits::cpu(0.8));
        LimitSchedule::new()
            .at(SimTime::from_secs(20), Limits::cpu(0.4))
            .at(SimTime::from_secs(50), Limits::cpu(0.6))
            .install(&mut sim, &h);
        sim.run_until(SimTime::from_secs(10));
        assert_eq!(h.get().cpu_share, Some(0.8));
        sim.run_until(SimTime::from_secs(25));
        assert_eq!(h.get().cpu_share, Some(0.4));
        sim.run_until(SimTime::from_secs(55));
        assert_eq!(h.get().cpu_share, Some(0.6));
    }

    #[test]
    fn schedule_past_step_applies_immediately() {
        let mut sim = Sim::new();
        sim.add_host("h", 1.0, 1 << 30);
        let h = LimitsHandle::new(Limits::unconstrained());
        LimitSchedule::new().at(SimTime::ZERO, Limits::cpu(0.5)).install(&mut sim, &h);
        assert_eq!(h.get().cpu_share, Some(0.5));
    }
}
