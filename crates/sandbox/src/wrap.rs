//! The sandbox wrapper: a user-level virtual execution environment.
//!
//! [`Sandboxed`] wraps an application actor and interposes on every action
//! it takes — the simulation analog of the paper's Win32 API interception
//! (§5.1). The wrapped application is unmodified; the wrapper:
//!
//! - **CPU**: chops each `Compute` request into ~10 ms quanta and inserts
//!   idle gaps after each quantum so the application's *average* CPU share
//!   stays at or below the configured cap (the paper dynamically manipulated
//!   process priority every few milliseconds to the same end). Because
//!   limits are re-read every quantum, run-time limit changes take effect
//!   within one quantum.
//! - **Network**: delays sends and the processing of received messages with
//!   token buckets so observed bandwidth matches the configured cap.
//! - **Memory**: inflates compute time once the application's allocation
//!   exceeds its memory limit (paging-slowdown model).
//!
//! While enforcing, the wrapper also *estimates progress* — CPU share and
//! effective bandwidth actually obtained — into a shared [`SandboxStats`],
//! which is exactly the machinery the paper's run-time monitoring agent
//! reuses (§6.1).

use std::collections::VecDeque;

use simnet::{Action, Actor, ActorId, Ctx, Message, SimTime};

use crate::bucket::TokenBucket;
use crate::limits::LimitsHandle;
use crate::progress::{CpuSample, NetSample, SandboxStats};

/// Scheduling quantum for CPU chopping, microseconds.
pub const QUANTUM_US: u64 = 10_000;

/// Continuation tags reserved by the sandbox. Wrapped applications must not
/// use tags at or above [`TAG_BASE`].
pub const TAG_BASE: u64 = u64::MAX - 16;
const TAG_CHUNK: u64 = TAG_BASE;
const TAG_NEXT: u64 = TAG_BASE + 1;
const TAG_RECV: u64 = TAG_BASE + 2;

/// Paging-penalty coefficient: slowdown = 1 + K * overcommit_fraction.
const MEM_PENALTY_K: f64 = 4.0;

/// An application actor running inside a virtual execution environment.
///
/// ```
/// use sandbox::{Limits, LimitsHandle, SandboxStats, Sandboxed};
/// use simnet::{Actor, Ctx, Sim, SimTime};
///
/// struct OneSecondOfWork;
/// impl Actor for OneSecondOfWork {
///     fn on_start(&mut self, ctx: &mut Ctx<'_>) {
///         ctx.compute(1_000_000.0);
///     }
/// }
///
/// let mut sim = Sim::new();
/// let host = sim.add_host("pii450", 1.0, 1 << 30);
/// let limits = LimitsHandle::new(Limits::cpu(0.5));
/// sim.spawn(host, Box::new(Sandboxed::new(OneSecondOfWork, limits, SandboxStats::default())));
/// sim.run_until_idle();
/// // 1s of work at a 50% share takes ~2s of wall time.
/// assert!((sim.now().as_secs_f64() - 2.0).abs() < 0.05);
/// ```
pub struct Sandboxed<A: Actor> {
    inner: A,
    limits: LimitsHandle,
    stats: SandboxStats,
    /// Intercepted application actions not yet issued to the kernel.
    queue: VecDeque<Action>,
    /// Remaining raw work of the `Compute` currently being chopped.
    chop_remaining: Option<f64>,
    chunk_start: SimTime,
    chunk_work: f64,
    /// True while kernel actions we issued are outstanding.
    busy: bool,
    pending_recv: VecDeque<(ActorId, Message, SimTime)>,
    send_bucket: Option<TokenBucket>,
    recv_bucket: Option<TokenBucket>,
}

impl<A: Actor> Sandboxed<A> {
    /// Wrap `inner`, constrained by `limits`, reporting progress into
    /// `stats`.
    pub fn new(inner: A, limits: LimitsHandle, stats: SandboxStats) -> Self {
        Sandboxed {
            inner,
            limits,
            stats,
            queue: VecDeque::new(),
            chop_remaining: None,
            chunk_start: SimTime::ZERO,
            chunk_work: 0.0,
            busy: false,
            pending_recv: VecDeque::new(),
            send_bucket: None,
            recv_bucket: None,
        }
    }

    /// The shared progress statistics (CPU share / bandwidth estimates).
    pub fn stats(&self) -> SandboxStats {
        self.stats.clone()
    }

    /// The shared limits handle.
    pub fn limits(&self) -> LimitsHandle {
        self.limits.clone()
    }

    /// Immutable access to the wrapped application.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    fn drain_inner(&mut self, ctx: &mut Ctx<'_>) {
        for a in ctx.drain_actions() {
            self.queue.push_back(a);
        }
    }

    fn mem_penalty(&self, ctx: &mut Ctx<'_>) -> f64 {
        match self.limits.get().mem_bytes {
            Some(limit) if limit > 0 => {
                let used = ctx.my_snapshot().mem_used;
                if used > limit {
                    1.0 + MEM_PENALTY_K * ((used - limit) as f64 / limit as f64)
                } else {
                    1.0
                }
            }
            _ => 1.0,
        }
    }

    /// Delay (us) required by the send-side token bucket for `bytes`.
    fn send_delay(&mut self, now: SimTime, bytes: u64) -> u64 {
        match self.limits.get().net_send_bps {
            Some(rate) => {
                let b =
                    self.send_bucket.get_or_insert_with(|| TokenBucket::with_default_burst(rate));
                if (b.rate_bps() - rate).abs() > 1e-6 {
                    b.set_rate(now, rate);
                }
                b.acquire(now, bytes)
            }
            None => 0,
        }
    }

    fn recv_delay(&mut self, now: SimTime, bytes: u64) -> u64 {
        match self.limits.get().net_recv_bps {
            Some(rate) => {
                let b =
                    self.recv_bucket.get_or_insert_with(|| TokenBucket::with_default_burst(rate));
                if (b.rate_bps() - rate).abs() > 1e-6 {
                    b.set_rate(now, rate);
                }
                b.acquire(now, bytes)
            }
            None => 0,
        }
    }

    fn deliver_inner_msg(
        &mut self,
        from: ActorId,
        msg: Message,
        queued: SimTime,
        ctx: &mut Ctx<'_>,
    ) {
        self.stats.push_net(NetSample {
            queued,
            processed: ctx.now(),
            bytes: msg.wire_bytes,
            inbound: true,
        });
        self.inner.on_message(from, msg, ctx);
        self.drain_inner(ctx);
    }

    /// Issue intercepted actions to the kernel until something blocking is
    /// outstanding or the queue drains.
    fn issue(&mut self, ctx: &mut Ctx<'_>) {
        debug_assert!(!self.busy);
        loop {
            if let Some(rem) = self.chop_remaining {
                let share = self.limits.get().cpu_share.unwrap_or(1.0);
                let speed = ctx.host_speed(ctx.my_host());
                let quantum_work = (share * QUANTUM_US as f64 * speed).max(1.0);
                let chunk = rem.min(quantum_work);
                let left = rem - chunk;
                self.chop_remaining = if left > 1e-9 { Some(left) } else { None };
                let eff = chunk * self.mem_penalty(ctx);
                self.chunk_start = ctx.now();
                self.chunk_work = eff;
                ctx.compute(eff);
                ctx.continue_with(TAG_CHUNK);
                self.busy = true;
                return;
            }
            match self.queue.pop_front() {
                Some(Action::Compute { work }) => {
                    if work > 1e-9 {
                        self.chop_remaining = Some(work);
                    }
                }
                Some(Action::Send { dst, msg }) => {
                    let now = ctx.now();
                    let bytes = msg.wire_bytes;
                    let delay = self.send_delay(now, bytes);
                    self.stats.push_net(NetSample {
                        queued: now,
                        processed: now + delay,
                        bytes,
                        inbound: false,
                    });
                    if delay > 0 {
                        ctx.sleep(delay);
                        ctx.send(dst, msg);
                        ctx.continue_with(TAG_NEXT);
                        self.busy = true;
                        return;
                    }
                    ctx.send(dst, msg);
                }
                Some(Action::Sleep { us }) => {
                    if us > 0 {
                        ctx.sleep(us);
                        ctx.continue_with(TAG_NEXT);
                        self.busy = true;
                        return;
                    }
                }
                Some(Action::Continue { tag }) => {
                    self.inner.on_continue(tag, ctx);
                    self.drain_inner(ctx);
                }
                None => {
                    if let Some((from, msg, queued)) = self.pending_recv.pop_front() {
                        self.deliver_inner_msg(from, msg, queued, ctx);
                        continue;
                    }
                    return;
                }
            }
        }
    }
}

impl<A: Actor> Actor for Sandboxed<A> {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.inner.on_start(ctx);
        self.drain_inner(ctx);
        self.issue(ctx);
    }

    fn on_restart(&mut self, ctx: &mut Ctx<'_>) {
        // The crash discarded every outstanding kernel action, so the
        // interposition state from the previous incarnation is void.
        self.queue.clear();
        self.chop_remaining = None;
        self.busy = false;
        self.pending_recv.clear();
        self.send_bucket = None;
        self.recv_bucket = None;
        self.inner.on_restart(ctx);
        self.drain_inner(ctx);
        self.issue(ctx);
    }

    fn on_message(&mut self, from: ActorId, msg: Message, ctx: &mut Ctx<'_>) {
        debug_assert!(!self.busy, "kernel delivered a message to a busy actor");
        let now = ctx.now();
        let queued = ctx.last_received().map(|t| t.queued).unwrap_or(now);
        let delay = self.recv_delay(now, msg.wire_bytes);
        if delay > 0 {
            self.pending_recv.push_back((from, msg, queued));
            ctx.sleep(delay);
            ctx.continue_with(TAG_RECV);
            self.busy = true;
        } else {
            self.deliver_inner_msg(from, msg, queued, ctx);
            self.issue(ctx);
        }
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_>) {
        assert!(tag < TAG_BASE, "application timers must use tags below TAG_BASE");
        // Timers fire even while our own actions (a compute chunk and its
        // continuation) are outstanding in the kernel queue. Those must be
        // preserved: drain them first, collect what the application
        // enqueues, then restore ours.
        let preserved = ctx.drain_actions();
        self.inner.on_timer(tag, ctx);
        let produced = ctx.drain_actions();
        for a in preserved {
            ctx.push_action(a);
        }
        for a in produced {
            self.queue.push_back(a);
        }
        if !self.busy {
            self.issue(ctx);
        }
    }

    fn on_continue(&mut self, tag: u64, ctx: &mut Ctx<'_>) {
        match tag {
            TAG_CHUNK => {
                self.busy = false;
                let now = ctx.now();
                let elapsed = now.since(self.chunk_start) as f64;
                let speed = ctx.host_speed(ctx.my_host());
                let share = self.limits.get().cpu_share.unwrap_or(1.0);
                let cpu_us = self.chunk_work / speed;
                // Pad the quantum with idle time so the average rate over
                // the whole period matches the requested share.
                let target = self.chunk_work / (speed * share);
                let sleep_us = (target - elapsed).max(0.0).round() as u64;
                self.stats.push_cpu(CpuSample {
                    start: self.chunk_start,
                    end: now + sleep_us,
                    cpu_us,
                });
                if sleep_us > 0 {
                    ctx.sleep(sleep_us);
                    ctx.continue_with(TAG_NEXT);
                    self.busy = true;
                } else {
                    self.issue(ctx);
                }
            }
            TAG_NEXT => {
                self.busy = false;
                self.issue(ctx);
            }
            TAG_RECV => {
                self.busy = false;
                if let Some((from, msg, queued)) = self.pending_recv.pop_front() {
                    self.deliver_inner_msg(from, msg, queued, ctx);
                }
                self.issue(ctx);
            }
            t => {
                // An application continuation re-emitted verbatim (should
                // not normally happen — the queue handles them — but be
                // forgiving).
                self.inner.on_continue(t, ctx);
                self.drain_inner(ctx);
                if !self.busy {
                    self.issue(ctx);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::limits::{LimitSchedule, Limits};
    use simnet::{dur, Sim};
    use std::sync::Arc;
    use std::sync::Mutex;

    struct Worker {
        work: f64,
        done_at: Arc<Mutex<Option<SimTime>>>,
    }
    impl Actor for Worker {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.compute(self.work);
            ctx.continue_with(1);
        }
        fn on_continue(&mut self, _tag: u64, ctx: &mut Ctx<'_>) {
            *self.done_at.lock().unwrap() = Some(ctx.now());
        }
    }

    fn sandboxed_worker(
        work: f64,
        limits: Limits,
    ) -> (Sim, Arc<Mutex<Option<SimTime>>>, LimitsHandle, SandboxStats) {
        let mut sim = Sim::new();
        let h = sim.add_host("ref", 1.0, 1 << 30);
        let done = Arc::new(Mutex::new(None));
        let lh = LimitsHandle::new(limits);
        let stats = SandboxStats::default();
        let sb = Sandboxed::new(Worker { work, done_at: done.clone() }, lh.clone(), stats.clone());
        sim.spawn(h, Box::new(sb));
        (sim, done, lh, stats)
    }

    #[test]
    fn unconstrained_runs_at_full_speed() {
        let (mut sim, done, _, _) = sandboxed_worker(1_000_000.0, Limits::unconstrained());
        sim.run_until_idle();
        assert_eq!(*done.lock().unwrap(), Some(SimTime::from_secs(1)));
    }

    #[test]
    fn half_share_doubles_wall_time() {
        let (mut sim, done, _, stats) = sandboxed_worker(1_000_000.0, Limits::cpu(0.5));
        sim.run_until_idle();
        let t = done.lock().unwrap().unwrap().as_secs_f64();
        assert!((t - 2.0).abs() < 0.02, "expected ~2s, got {t}");
        let share = stats.cpu_share().unwrap();
        assert!((share - 0.5).abs() < 0.02, "estimated share {share}");
    }

    #[test]
    fn ten_percent_share() {
        let (mut sim, done, _, stats) = sandboxed_worker(500_000.0, Limits::cpu(0.1));
        sim.run_until_idle();
        let t = done.lock().unwrap().unwrap().as_secs_f64();
        assert!((t - 5.0).abs() < 0.05, "expected ~5s, got {t}");
        assert!((stats.cpu_share().unwrap() - 0.1).abs() < 0.01);
    }

    #[test]
    fn limit_change_mid_run() {
        // 1s of work: 0.5s at 100% does half, then 40% share makes the
        // remaining 0.5s take 1.25s -> total 1.75s.
        let (mut sim, done, lh, _) = sandboxed_worker(1_000_000.0, Limits::unconstrained());
        LimitSchedule::new().at(SimTime::from_ms(500), Limits::cpu(0.4)).install(&mut sim, &lh);
        sim.run_until_idle();
        let t = done.lock().unwrap().unwrap().as_secs_f64();
        assert!((t - 1.75).abs() < 0.03, "expected ~1.75s, got {t}");
    }

    #[test]
    fn kernel_cap_and_sandbox_cap_agree() {
        // The user-level quantum-chopping sandbox should match the ideal
        // kernel-enforced cap closely (this is Figure 3b's claim).
        for share in [0.2, 0.5, 0.8] {
            let (mut sim, done, _, _) = sandboxed_worker(1_000_000.0, Limits::cpu(share));
            sim.run_until_idle();
            let sandbox_t = done.lock().unwrap().unwrap().as_secs_f64();

            let mut sim2 = Sim::new();
            let h = sim2.add_host("ref", 1.0, 1 << 30);
            let done2 = Arc::new(Mutex::new(None));
            let a = sim2.spawn(h, Box::new(Worker { work: 1_000_000.0, done_at: done2.clone() }));
            sim2.set_cpu_cap(a, Some(share));
            sim2.run_until_idle();
            let kernel_t = done2.lock().unwrap().unwrap().as_secs_f64();

            let rel = (sandbox_t - kernel_t).abs() / kernel_t;
            assert!(rel < 0.02, "share {share}: sandbox {sandbox_t} vs kernel {kernel_t}");
        }
    }

    /// Replies to every request with a fixed-size payload.
    struct BlobServer {
        reply_bytes: u64,
    }
    impl Actor for BlobServer {
        fn on_message(&mut self, from: ActorId, msg: Message, ctx: &mut Ctx<'_>) {
            ctx.send(from, Message::signal(msg.tag, self.reply_bytes));
        }
    }

    /// Requests `remaining` replies, one at a time.
    struct Downloader {
        server: ActorId,
        remaining: u32,
        finished: Arc<Mutex<Option<SimTime>>>,
    }
    impl Actor for Downloader {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.send(self.server, Message::signal(0, 64));
        }
        fn on_message(&mut self, _f: ActorId, _m: Message, ctx: &mut Ctx<'_>) {
            self.remaining -= 1;
            if self.remaining == 0 {
                *self.finished.lock().unwrap() = Some(ctx.now());
            } else {
                ctx.send(self.server, Message::signal(0, 64));
            }
        }
    }

    #[test]
    fn recv_shaping_limits_effective_bandwidth() {
        let mut sim = Sim::new();
        let hc = sim.add_host("client", 1.0, 1 << 30);
        let hs = sim.add_host("server", 1.0, 1 << 30);
        // Fast physical link: 12.5 MB/s.
        sim.set_link(hc, hs, 12_500_000.0, 100);
        let server = sim.spawn(hs, Box::new(BlobServer { reply_bytes: 100_000 }));
        let finished = Arc::new(Mutex::new(None));
        let lh = LimitsHandle::new(Limits::net(100_000.0)); // 100 KB/s
        let stats = SandboxStats::new(60_000_000);
        let dl = Downloader { server, remaining: 10, finished: finished.clone() };
        sim.spawn(hc, Box::new(Sandboxed::new(dl, lh, stats.clone())));
        sim.run_until_idle();
        let t = finished.lock().unwrap().unwrap().as_secs_f64();
        // 10 x 100 KB = 1 MB at 100 KB/s ~ 10s (burst credit shaves a bit).
        assert!(t > 8.5 && t < 11.0, "shaped download took {t}s");
        let bw = stats.bandwidth_bps(true).unwrap();
        assert!(
            bw > 80_000.0 && bw < 130_000.0,
            "estimated inbound bandwidth {bw} should be near the 100 KB/s cap"
        );
    }

    #[test]
    fn send_shaping_delays_uploads() {
        struct Uploader {
            dst: ActorId,
            done: Arc<Mutex<Option<SimTime>>>,
        }
        impl Actor for Uploader {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                for _ in 0..10 {
                    ctx.send(self.dst, Message::signal(0, 100_000));
                }
                ctx.continue_with(9);
            }
            fn on_continue(&mut self, _t: u64, ctx: &mut Ctx<'_>) {
                *self.done.lock().unwrap() = Some(ctx.now());
            }
        }
        struct Sink;
        impl Actor for Sink {}

        let mut sim = Sim::new();
        let hc = sim.add_host("client", 1.0, 1 << 30);
        let hs = sim.add_host("server", 1.0, 1 << 30);
        sim.set_link(hc, hs, 12_500_000.0, 100);
        let sink = sim.spawn(hs, Box::new(Sink));
        let done = Arc::new(Mutex::new(None));
        let lh = LimitsHandle::new(Limits { net_send_bps: Some(100_000.0), ..Limits::default() });
        let up = Uploader { dst: sink, done: done.clone() };
        sim.spawn(hc, Box::new(Sandboxed::new(up, lh, SandboxStats::default())));
        sim.run_until_idle();
        let t = done.lock().unwrap().unwrap().as_secs_f64();
        assert!(t > 8.5, "1 MB at 100 KB/s should take ~10s, got {t}");
    }

    #[test]
    fn memory_limit_inflates_compute() {
        struct Hog {
            done: Arc<Mutex<Option<SimTime>>>,
        }
        impl Actor for Hog {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.alloc(2_000_000);
                ctx.compute(1_000_000.0);
                ctx.continue_with(0);
            }
            fn on_continue(&mut self, _t: u64, ctx: &mut Ctx<'_>) {
                *self.done.lock().unwrap() = Some(ctx.now());
            }
        }
        let mut sim = Sim::new();
        let h = sim.add_host("ref", 1.0, 1 << 30);
        let done = Arc::new(Mutex::new(None));
        let lh = LimitsHandle::new(Limits::unconstrained().with_mem(1_000_000));
        sim.spawn(
            h,
            Box::new(Sandboxed::new(Hog { done: done.clone() }, lh, SandboxStats::default())),
        );
        sim.run_until_idle();
        // Overcommit 1.0, K=4 -> 5x slowdown.
        let t = done.lock().unwrap().unwrap().as_secs_f64();
        assert!((t - 5.0).abs() < 0.05, "expected ~5s, got {t}");
    }

    #[test]
    fn timer_during_chunk_does_not_lose_wrapper_state() {
        // Regression: a timer firing while a compute chunk is outstanding
        // used to steal the wrapper's own continuation from the kernel
        // queue, deadlocking the sandbox.
        struct Periodic {
            done: Arc<Mutex<Option<SimTime>>>,
            ticks: u32,
        }
        impl Actor for Periodic {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(dur::ms(3), 1); // fires mid-chunk
                ctx.compute(500_000.0); // 0.5s of work in many chunks
                ctx.continue_with(0);
            }
            fn on_timer(&mut self, _tag: u64, ctx: &mut Ctx<'_>) {
                self.ticks += 1;
                if self.ticks < 100 {
                    ctx.set_timer(dur::ms(3), 1);
                }
            }
            fn on_continue(&mut self, _t: u64, ctx: &mut Ctx<'_>) {
                *self.done.lock().unwrap() = Some(ctx.now());
            }
        }
        let mut sim = Sim::new();
        let h = sim.add_host("ref", 1.0, 1 << 30);
        let done = Arc::new(Mutex::new(None));
        let lh = LimitsHandle::new(Limits::cpu(0.5));
        sim.spawn(
            h,
            Box::new(Sandboxed::new(
                Periodic { done: done.clone(), ticks: 0 },
                lh,
                SandboxStats::default(),
            )),
        );
        sim.set_event_limit(Some(1_000_000));
        sim.run_until_idle();
        let t = done.lock().unwrap().expect("work must complete despite timers").as_secs_f64();
        assert!((t - 1.0).abs() < 0.05, "0.5s at 50% share ~ 1s, got {t}");
    }

    #[test]
    fn timer_handler_work_is_interposed() {
        // Work enqueued from a timer handler must still be throttled.
        struct TimerWorker {
            done: Arc<Mutex<Option<SimTime>>>,
        }
        impl Actor for TimerWorker {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(dur::ms(1), 1);
            }
            fn on_timer(&mut self, _tag: u64, ctx: &mut Ctx<'_>) {
                ctx.compute(100_000.0); // 0.1s of work
                ctx.continue_with(0);
            }
            fn on_continue(&mut self, _t: u64, ctx: &mut Ctx<'_>) {
                *self.done.lock().unwrap() = Some(ctx.now());
            }
        }
        let mut sim = Sim::new();
        let h = sim.add_host("ref", 1.0, 1 << 30);
        let done = Arc::new(Mutex::new(None));
        let lh = LimitsHandle::new(Limits::cpu(0.25));
        sim.spawn(
            h,
            Box::new(Sandboxed::new(
                TimerWorker { done: done.clone() },
                lh,
                SandboxStats::default(),
            )),
        );
        sim.run_until_idle();
        let t = done.lock().unwrap().expect("must finish").as_secs_f64();
        assert!((t - 0.401).abs() < 0.02, "0.1s at 25% share ~ 0.4s, got {t}");
    }

    #[test]
    fn timers_pass_through_to_inner() {
        struct Timed {
            fired: Arc<Mutex<u32>>,
        }
        impl Actor for Timed {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(dur::ms(5), 3);
                ctx.compute(100_000.0);
            }
            fn on_timer(&mut self, tag: u64, _ctx: &mut Ctx<'_>) {
                assert_eq!(tag, 3);
                *self.fired.lock().unwrap() += 1;
            }
        }
        let mut sim = Sim::new();
        let h = sim.add_host("ref", 1.0, 1 << 30);
        let fired = Arc::new(Mutex::new(0));
        let lh = LimitsHandle::new(Limits::cpu(0.5));
        sim.spawn(
            h,
            Box::new(Sandboxed::new(Timed { fired: fired.clone() }, lh, SandboxStats::default())),
        );
        sim.run_until_idle();
        assert_eq!(*fired.lock().unwrap(), 1);
    }

    #[test]
    fn inner_continuations_preserve_order() {
        struct Seq {
            log: Arc<Mutex<Vec<u64>>>,
        }
        impl Actor for Seq {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.compute(1000.0);
                ctx.continue_with(1);
                ctx.compute(1000.0);
                ctx.continue_with(2);
            }
            fn on_continue(&mut self, tag: u64, ctx: &mut Ctx<'_>) {
                self.log.lock().unwrap().push(tag);
                if tag == 1 {
                    // Enqueue more work mid-stream; must run before tag 2?
                    // No: FIFO semantics — it runs after already-queued
                    // actions, i.e. after compute+continue(2).
                    ctx.continue_with(3);
                }
            }
        }
        let mut sim = Sim::new();
        let h = sim.add_host("ref", 1.0, 1 << 30);
        let log = Arc::new(Mutex::new(Vec::new()));
        let lh = LimitsHandle::new(Limits::cpu(0.5));
        sim.spawn(
            h,
            Box::new(Sandboxed::new(Seq { log: log.clone() }, lh, SandboxStats::default())),
        );
        sim.run_until_idle();
        assert_eq!(log.lock().unwrap().as_slice(), &[1, 2, 3]);
    }
}
