//! Progress estimation: what fraction of each resource is the application
//! actually obtaining?
//!
//! The paper's sandbox continually estimates a "progress" metric (e.g.
//! what fraction of the CPU the application has been receiving) from
//! application-visible observations, and the run-time monitoring agent
//! reuses the same machinery (§6.1). [`ProgressEstimator`] keeps sliding
//! windows of CPU and network observations; [`SandboxStats`] is the shared
//! handle the sandbox wrapper feeds and monitors read.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use simnet::SimTime;

/// One CPU observation: during `[start, end]` the application received
/// `cpu_us` microseconds of processor time while wanting to run the whole
/// interval.
#[derive(Debug, Clone, Copy)]
pub struct CpuSample {
    pub start: SimTime,
    pub end: SimTime,
    pub cpu_us: f64,
}

/// One network observation: a message of `bytes` whose effective transfer
/// occupied `[queued, processed]` from the application's point of view
/// (includes both wire serialization and any sandbox-imposed delay).
#[derive(Debug, Clone, Copy)]
pub struct NetSample {
    pub queued: SimTime,
    pub processed: SimTime,
    pub bytes: u64,
    pub inbound: bool,
}

/// Sliding-window estimator over CPU and network samples.
#[derive(Debug)]
pub struct ProgressEstimator {
    window_us: u64,
    cpu: VecDeque<CpuSample>,
    net: VecDeque<NetSample>,
}

impl ProgressEstimator {
    /// `window_us` is the history window length; the paper's monitoring
    /// agent processes "raw data within a history window" sampled at 10 ms.
    pub fn new(window_us: u64) -> Self {
        assert!(window_us > 0);
        ProgressEstimator { window_us, cpu: VecDeque::new(), net: VecDeque::new() }
    }

    pub fn window_us(&self) -> u64 {
        self.window_us
    }

    pub fn push_cpu(&mut self, s: CpuSample) {
        self.cpu.push_back(s);
        self.evict(s.end);
    }

    pub fn push_net(&mut self, s: NetSample) {
        self.net.push_back(s);
        self.evict(s.processed);
    }

    fn evict(&mut self, now: SimTime) {
        let cutoff = SimTime(now.0.saturating_sub(self.window_us));
        while let Some(s) = self.cpu.front() {
            if s.end < cutoff {
                self.cpu.pop_front();
            } else {
                break;
            }
        }
        while let Some(s) = self.net.front() {
            if s.processed < cutoff {
                self.net.pop_front();
            } else {
                break;
            }
        }
    }

    /// Estimated CPU share obtained over the samples in the window:
    /// total CPU time received / total wall time wanting the CPU.
    /// `None` with no samples (the application did not try to compute).
    pub fn cpu_share(&self) -> Option<f64> {
        let mut wall = 0.0;
        let mut cpu = 0.0;
        for s in &self.cpu {
            wall += s.end.since(s.start) as f64;
            cpu += s.cpu_us;
        }
        if wall > 0.0 {
            Some((cpu / wall).min(1.0))
        } else {
            None
        }
    }

    /// Estimated effective bandwidth (bytes/second) over inbound (or, with
    /// `inbound == false`, outbound) transfers in the window: total bytes /
    /// total busy transfer time. `None` without samples.
    pub fn bandwidth_bps(&self, inbound: bool) -> Option<f64> {
        let mut bytes = 0u64;
        let mut busy_us = 0u64;
        for s in &self.net {
            if s.inbound == inbound {
                bytes += s.bytes;
                busy_us += s.processed.since(s.queued);
            }
        }
        if busy_us > 0 && bytes > 0 {
            Some(bytes as f64 / (busy_us as f64 / 1e6))
        } else {
            None
        }
    }

    /// Number of retained samples (cpu, net) — mostly for tests.
    pub fn len(&self) -> (usize, usize) {
        (self.cpu.len(), self.net.len())
    }

    pub fn is_empty(&self) -> bool {
        self.cpu.is_empty() && self.net.is_empty()
    }
}

/// Shared statistics handle connecting a sandbox wrapper to monitors.
#[derive(Debug, Clone)]
pub struct SandboxStats(Arc<Mutex<ProgressEstimator>>);

impl SandboxStats {
    pub fn new(window_us: u64) -> Self {
        SandboxStats(Arc::new(Mutex::new(ProgressEstimator::new(window_us))))
    }

    pub fn push_cpu(&self, s: CpuSample) {
        self.0.lock().unwrap().push_cpu(s);
    }

    pub fn push_net(&self, s: NetSample) {
        self.0.lock().unwrap().push_net(s);
    }

    pub fn cpu_share(&self) -> Option<f64> {
        self.0.lock().unwrap().cpu_share()
    }

    pub fn bandwidth_bps(&self, inbound: bool) -> Option<f64> {
        self.0.lock().unwrap().bandwidth_bps(inbound)
    }
}

impl Default for SandboxStats {
    /// One-second window, matching the experiments' sampling horizon.
    fn default() -> Self {
        SandboxStats::new(1_000_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_us(us)
    }

    #[test]
    fn cpu_share_is_cpu_over_wall() {
        let mut p = ProgressEstimator::new(1_000_000);
        p.push_cpu(CpuSample { start: t(0), end: t(100), cpu_us: 40.0 });
        p.push_cpu(CpuSample { start: t(100), end: t(200), cpu_us: 40.0 });
        assert!((p.cpu_share().unwrap() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_estimator_returns_none() {
        let p = ProgressEstimator::new(1_000);
        assert!(p.cpu_share().is_none());
        assert!(p.bandwidth_bps(true).is_none());
        assert!(p.is_empty());
    }

    #[test]
    fn old_samples_are_evicted() {
        let mut p = ProgressEstimator::new(1_000);
        p.push_cpu(CpuSample { start: t(0), end: t(100), cpu_us: 100.0 });
        p.push_cpu(CpuSample { start: t(5_000), end: t(5_100), cpu_us: 10.0 });
        // The first sample ended more than 1000us before t=5100.
        assert_eq!(p.len().0, 1);
        assert!((p.cpu_share().unwrap() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_from_busy_time() {
        let mut p = ProgressEstimator::new(10_000_000);
        // 100_000 bytes over 2 seconds of busy transfer = 50 KB/s.
        p.push_net(NetSample {
            queued: t(0),
            processed: t(2_000_000),
            bytes: 100_000,
            inbound: true,
        });
        assert!((p.bandwidth_bps(true).unwrap() - 50_000.0).abs() < 1e-6);
        assert!(p.bandwidth_bps(false).is_none(), "outbound unaffected");
    }

    #[test]
    fn share_clamped_to_one() {
        let mut p = ProgressEstimator::new(1_000_000);
        p.push_cpu(CpuSample { start: t(0), end: t(100), cpu_us: 150.0 });
        assert_eq!(p.cpu_share(), Some(1.0));
    }

    #[test]
    fn stats_handle_shares() {
        let s = SandboxStats::new(1_000_000);
        let s2 = s.clone();
        s2.push_cpu(CpuSample { start: t(0), end: t(100), cpu_us: 50.0 });
        assert!((s.cpu_share().unwrap() - 0.5).abs() < 1e-12);
    }
}
