//! Real-socket integration tests: an echo peer over loopback TCP (and
//! UDS where the platform supports it), plus reconnect-with-backoff.

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use adapt_transport::{
    ByteReader, ByteWriter, CodecError, Envelope, SocketAddrSpec, SocketListener, SocketTransport,
    Transport, TransportError, WireCodec,
};
use simnet::{ActorId, Message};

/// Test codec over raw `Vec<u8>` bodies (marker byte + bytes).
struct RawCodec;

impl WireCodec for RawCodec {
    fn encode(&self, msg: &Message) -> Result<Vec<u8>, CodecError> {
        let mut w = ByteWriter::new();
        match msg.body::<Vec<u8>>() {
            Some(body) => {
                w.u8(1);
                w.bytes(body);
            }
            None => w.u8(0),
        }
        Ok(w.into_vec())
    }

    fn decode(&self, tag: u64, wire_bytes: u64, payload: &[u8]) -> Result<Message, CodecError> {
        let mut r = ByteReader::new(payload);
        let msg = match r.u8()? {
            0 => Message::signal(tag, wire_bytes),
            1 => Message::new(tag, wire_bytes, r.bytes()?.to_vec()),
            _ => return Err(CodecError::Malformed("bad payload marker")),
        };
        r.finish()?;
        Ok(msg)
    }
}

/// Poll `t.try_recv()` until an envelope arrives or the deadline passes.
fn recv_within(t: &mut SocketTransport, window: Duration) -> Option<Envelope> {
    let deadline = Instant::now() + window;
    while Instant::now() < deadline {
        match t.try_recv() {
            Ok(Some(env)) => return Some(env),
            Ok(None) => thread::sleep(Duration::from_millis(1)),
            Err(TransportError::WouldBlock) => thread::sleep(Duration::from_millis(1)),
            Err(e) => panic!("recv failed: {e}"),
        }
    }
    None
}

/// Accept one connection and echo `n` envelopes back verbatim.
fn echo_once(listener: &SocketListener, n: usize) -> thread::JoinHandle<()> {
    let codec: Arc<dyn WireCodec> = Arc::new(RawCodec);
    let mut server = listener.accept(codec).expect("accept");
    thread::spawn(move || {
        let mut echoed = 0;
        let deadline = Instant::now() + Duration::from_secs(10);
        while echoed < n && Instant::now() < deadline {
            match server.try_recv() {
                Ok(Some(env)) => {
                    server.send(env).expect("echo send");
                    echoed += 1;
                }
                Ok(None) => thread::sleep(Duration::from_millis(1)),
                Err(TransportError::Closed) => break,
                Err(e) => panic!("server recv failed: {e}"),
            }
        }
    })
}

fn run_echo_session(listener: SocketListener) {
    let spec = listener.local_spec().expect("local spec");
    let handle = thread::spawn(move || echo_once(&listener, 3).join().unwrap());

    let obs = obs::Obs::new();
    let codec: Arc<dyn WireCodec> = Arc::new(RawCodec);
    let mut client = SocketTransport::dial(spec, codec).with_obs(&obs);
    assert!(!client.is_connected());
    assert!(matches!(
        client.send(Envelope::to(ActorId(0), Message::signal(1, 8))),
        Err(TransportError::NotConnected)
    ));
    client.connect().expect("connect");
    assert!(client.is_connected());

    // One signal, one small body, one body big enough to span several
    // read chunks — all with distinct envelope metadata.
    let bodies: Vec<Message> = vec![
        Message::signal(10, 64),
        Message::new(11, 256, vec![7u8; 100]),
        Message::new(12, 1 << 16, (0..40_000u32).map(|i| (i % 251) as u8).collect::<Vec<u8>>()),
    ];
    for (i, msg) in bodies.iter().enumerate() {
        let env = Envelope::to(ActorId(5), msg.clone()).with_deadline(1_000 + i as u64);
        client.send(env).expect("send");
    }
    for (i, sent) in bodies.iter().enumerate() {
        let env = recv_within(&mut client, Duration::from_secs(10)).expect("echo reply");
        assert_eq!(env.to, ActorId(5), "actor id survives the round trip");
        assert_eq!(env.deadline_us, Some(1_000 + i as u64));
        assert_eq!(env.msg.tag, sent.tag);
        assert_eq!(env.msg.wire_bytes, sent.wire_bytes);
        assert_eq!(env.msg.body::<Vec<u8>>(), sent.body::<Vec<u8>>());
    }
    handle.join().unwrap();

    // Counters saw real traffic in both directions, and no decode errors.
    let bytes = obs.counter_value(obs.lookup("transport.bytes").unwrap());
    let sent = obs.counter_value(obs.lookup("transport.bytes_sent").unwrap());
    let recv = obs.counter_value(obs.lookup("transport.bytes_recv").unwrap());
    assert!(sent > 40_000, "sent {sent}");
    assert_eq!(recv, sent, "echo returns exactly what was sent");
    assert_eq!(bytes, sent + recv);
    assert_eq!(obs.counter_value(obs.lookup("transport.decode_errors").unwrap()), 0);

    client.close();
    assert!(!client.is_connected());
}

#[test]
fn tcp_echo_roundtrip() {
    run_echo_session(SocketListener::bind_tcp().expect("bind tcp"));
}

#[test]
fn uds_echo_roundtrip_or_graceful_skip() {
    #[cfg(unix)]
    {
        let path = std::env::temp_dir().join(format!("adapt-uds-{}.sock", std::process::id()));
        match SocketListener::bind_uds(path) {
            Ok(l) => run_echo_session(l),
            Err(e) => eprintln!("skipping UDS echo test: bind failed: {e}"),
        }
    }
    #[cfg(not(unix))]
    eprintln!("skipping UDS echo test: not a unix platform");
}

#[test]
fn reconnect_with_backoff_after_peer_drop() {
    let listener = SocketListener::bind_tcp().expect("bind tcp");
    let spec = listener.local_spec().expect("local spec");

    let obs = obs::Obs::new();
    let codec: Arc<dyn WireCodec> = Arc::new(RawCodec);
    let retry = adapt_transport::RetryPolicy {
        multiplier: 2.0,
        max_timeout_us: 50_000,
        jitter_frac: 0.0,
        seed: 1,
    };
    let mut client = SocketTransport::dial(spec, codec).with_obs(&obs).with_retry(retry);

    // First connection: dial (the kernel backlog completes the handshake
    // before accept), accept it, then slam it shut server-side.
    {
        client.connect().expect("connect");
        let server = listener.accept(Arc::new(RawCodec)).expect("accept");
        drop(server);
    }
    // The client discovers the drop on its next recv...
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match client.try_recv() {
            Err(TransportError::Closed) | Err(TransportError::Io(_)) => break,
            Ok(None) => {
                assert!(Instant::now() < deadline, "never observed the drop");
                thread::sleep(Duration::from_millis(1));
            }
            other => panic!("unexpected recv outcome: {other:?}"),
        }
    }
    assert!(!client.is_connected());
    assert!(client.reconnect_attempts() > 0, "backoff armed");

    // ...and reconnects once the backoff window elapses.
    let accepter = thread::spawn(move || listener.accept(Arc::new(RawCodec)).expect("re-accept"));
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match client.poll_reconnect() {
            Ok(true) => break,
            Ok(false) | Err(TransportError::Io(_)) => {
                assert!(Instant::now() < deadline, "never reconnected");
                thread::sleep(Duration::from_millis(1));
            }
            Err(e) => panic!("reconnect failed hard: {e}"),
        }
    }
    assert!(client.is_connected());
    assert_eq!(client.reconnect_attempts(), 0, "attempt counter reset on success");
    assert_eq!(obs.counter_value(obs.lookup("transport.reconnects").unwrap()), 1);

    // The revived link carries traffic.
    let mut server = accepter.join().unwrap();
    client.send(Envelope::to(ActorId(1), Message::signal(99, 8))).expect("send after reconnect");
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match server.try_recv() {
            Ok(Some(env)) => {
                assert_eq!(env.msg.tag, 99);
                break;
            }
            Ok(None) => {
                assert!(Instant::now() < deadline, "message never arrived");
                thread::sleep(Duration::from_millis(1));
            }
            Err(e) => panic!("server recv failed: {e}"),
        }
    }
}

#[test]
fn garbage_on_the_wire_tears_the_connection_down() {
    use std::io::Write;

    let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).expect("bind");
    let addr = listener.local_addr().unwrap();
    let writer = thread::spawn(move || {
        let (mut s, _) = listener.accept().expect("accept");
        s.write_all(b"definitely not a frame header").unwrap();
    });

    let obs = obs::Obs::new();
    let codec: Arc<dyn WireCodec> = Arc::new(RawCodec);
    let mut client = SocketTransport::dial(SocketAddrSpec::Tcp(addr), codec).with_obs(&obs);
    client.connect().expect("connect");
    writer.join().unwrap();

    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match client.try_recv() {
            Err(TransportError::Frame(_)) => break,
            Ok(None) => {
                assert!(Instant::now() < deadline, "garbage never rejected");
                thread::sleep(Duration::from_millis(1));
            }
            other => panic!("unexpected outcome: {other:?}"),
        }
    }
    assert!(!client.is_connected(), "framing errors are fatal to the connection");
    assert_eq!(obs.counter_value(obs.lookup("transport.decode_errors").unwrap()), 1);
}
