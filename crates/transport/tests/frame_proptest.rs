//! Property tests for the socket framing layer: arbitrary envelopes
//! round-trip bit-for-bit, truncated streams ask for more bytes, and
//! garbage is rejected rather than misparsed.

use adapt_transport::{
    decode_frame, encode_frame, ByteReader, ByteWriter, CodecError, Frame, SimTransport, Transport,
    WireCodec, HEADER_BYTES,
};
use proptest::prelude::*;
use simnet::{ActorId, Message};

/// Minimal codec for raw `Vec<u8>` payload messages: byte 0 marks
/// whether the message was a pure signal or carried a body.
struct RawCodec;

impl WireCodec for RawCodec {
    fn encode(&self, msg: &Message) -> Result<Vec<u8>, CodecError> {
        let mut w = ByteWriter::new();
        match msg.body::<Vec<u8>>() {
            Some(body) => {
                w.u8(1);
                w.bytes(body);
            }
            None => w.u8(0),
        }
        Ok(w.into_vec())
    }

    fn decode(&self, tag: u64, wire_bytes: u64, payload: &[u8]) -> Result<Message, CodecError> {
        let mut r = ByteReader::new(payload);
        let msg = match r.u8()? {
            0 => Message::signal(tag, wire_bytes),
            1 => Message::new(tag, wire_bytes, r.bytes()?.to_vec()),
            _ => return Err(CodecError::Malformed("bad payload marker")),
        };
        r.finish()?;
        Ok(msg)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn frames_roundtrip(
        to in 0u64..1_000_000,
        tag in 0u64..u64::MAX,
        wire in 0u64..u64::MAX,
        deadline in 0u64..u64::MAX,
        has_deadline in any::<bool>(),
        payload in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        let f = Frame {
            to,
            tag,
            wire_bytes: wire,
            deadline_us: if has_deadline { Some(deadline) } else { None },
            payload,
        };
        let mut bytes = Vec::new();
        encode_frame(&f, &mut bytes);
        let (decoded, used) = decode_frame(&bytes).unwrap().unwrap();
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(decoded, f);
    }

    #[test]
    fn truncated_streams_never_yield_a_frame(
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        cut_frac in 0.0f64..1.0,
    ) {
        let f = Frame { to: 1, tag: 2, wire_bytes: 3, deadline_us: None, payload };
        let mut bytes = Vec::new();
        encode_frame(&f, &mut bytes);
        // Strictly shorter than the full frame: must never produce a frame.
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        match decode_frame(&bytes[..cut]) {
            Ok(None) | Err(_) => {}
            Ok(Some(_)) => prop_assert!(false, "decoded a frame from a truncated stream"),
        }
    }

    #[test]
    fn garbage_never_panics_and_never_decodes_silently(
        junk in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        // Whatever the bytes, decode must return cleanly; if it does
        // produce a frame, the bytes must genuinely start with our header.
        if let Ok(Some((_, used))) = decode_frame(&junk) {
            prop_assert!(used >= HEADER_BYTES);
            prop_assert_eq!(&junk[0..2], &[0xAD, 0x7A]);
        }
    }

    #[test]
    fn message_payloads_roundtrip_through_codec_and_frame(
        tag in 0u64..1_000,
        wire in 0u64..1_000_000,
        body in proptest::collection::vec(any::<u8>(), 0..1024),
        is_signal in any::<bool>(),
    ) {
        let codec = RawCodec;
        let msg = if is_signal {
            Message::signal(tag, wire)
        } else {
            Message::new(tag, wire, body.clone())
        };
        let payload = codec.encode(&msg).unwrap();
        let f = Frame { to: 9, tag: msg.tag, wire_bytes: msg.wire_bytes, deadline_us: None, payload };
        let mut bytes = Vec::new();
        encode_frame(&f, &mut bytes);
        let (decoded, _) = decode_frame(&bytes).unwrap().unwrap();
        let rebuilt = codec.decode(decoded.tag, decoded.wire_bytes, &decoded.payload).unwrap();
        prop_assert_eq!(rebuilt.tag, msg.tag);
        prop_assert_eq!(rebuilt.wire_bytes, msg.wire_bytes);
        if is_signal {
            prop_assert!(rebuilt.payload.is_none());
        } else {
            prop_assert_eq!(rebuilt.body::<Vec<u8>>().unwrap(), &body);
        }
    }

    #[test]
    fn codec_rejects_truncated_and_garbage_payloads(
        body in proptest::collection::vec(any::<u8>(), 1..256),
        cut_frac in 0.0f64..1.0,
    ) {
        let codec = RawCodec;
        let msg = Message::new(7, 64, body);
        let encoded = codec.encode(&msg).unwrap();
        let cut = ((encoded.len() - 1) as f64 * cut_frac) as usize;
        // A strict prefix can only fail (or, for the 1-byte marker alone
        // of an empty vec, it can never equal the full encoding here since
        // body is non-empty).
        prop_assert!(codec.decode(7, 64, &encoded[..cut]).is_err());
        // A bad marker byte is malformed, not a panic.
        let mut bad = encoded.clone();
        bad[0] = 0x7f;
        prop_assert!(codec.decode(7, 64, &bad).is_err());
    }

    #[test]
    fn sim_transport_preserves_fifo_order(
        tags in proptest::collection::vec(0u64..100, 1..32),
    ) {
        let mut t = SimTransport::new();
        for &tag in &tags {
            t.deliver(ActorId(0), Message::signal(tag, 8));
        }
        for &tag in &tags {
            let env = t.try_recv().unwrap().unwrap();
            prop_assert_eq!(env.msg.tag, tag);
        }
        prop_assert!(t.try_recv().unwrap().is_none());
    }
}
