//! [`SocketTransport`]: real loopback I/O over TCP (or a Unix domain
//! socket where the platform has them).
//!
//! Wire format: one [`frame`](crate::frame) per envelope; payloads are
//! serialized by the application's [`WireCodec`]. All I/O is
//! non-blocking — `send` queues into a write buffer and flushes whatever
//! the kernel accepts, `try_recv` drains readable bytes into a read
//! buffer and decodes at most one complete frame per call.
//!
//! ## Reconnect state machine
//!
//! A client-side transport (one built with [`SocketTransport::dial`])
//! remembers its peer address. When the connection drops — the peer
//! closed, an I/O error, a framing error — the transport enters the
//! *backoff* state: [`SocketTransport::poll_reconnect`] refuses to dial
//! until the current backoff window (from [`RetryPolicy::timeout_us`],
//! attempt-indexed, jittered, capped) has elapsed, then attempts one
//! dial. Success resets the attempt counter and bumps
//! `transport.reconnects`; failure schedules the next window. Accepted
//! (server-side) transports have no peer address and never reconnect —
//! the listener accepts a fresh connection instead.
//!
//! ## Observability
//!
//! With [`SocketTransport::with_obs`], the transport maintains counters
//! `transport.bytes` (total on-wire bytes, both directions, plus the
//! `transport.bytes_sent` / `transport.bytes_recv` split),
//! `transport.reconnects`, and `transport.decode_errors` (framing or
//! codec rejections). Metric ids are resolved once at attach time; the
//! hot path is an atomic add per flush/drain.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
#[cfg(unix)]
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use obs::{MetricId, Obs};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simnet::ActorId;

use crate::frame::{decode_frame, encode_frame, Frame};
use crate::{Envelope, RetryPolicy, Transport, TransportError, WireCodec};

/// Base backoff for the first reconnect attempt, microseconds.
const RECONNECT_BASE_US: u64 = 10_000;

/// An address a socket transport can dial or a listener can announce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SocketAddrSpec {
    /// TCP endpoint (loopback in all shipped harnesses).
    Tcp(SocketAddr),
    /// Unix domain socket path.
    #[cfg(unix)]
    Uds(PathBuf),
}

impl std::fmt::Display for SocketAddrSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SocketAddrSpec::Tcp(a) => write!(f, "tcp://{a}"),
            #[cfg(unix)]
            SocketAddrSpec::Uds(p) => write!(f, "uds://{}", p.display()),
        }
    }
}

enum ListenerKind {
    Tcp(TcpListener),
    #[cfg(unix)]
    Uds(UnixListener, PathBuf),
}

/// Accepts inbound transport connections.
pub struct SocketListener {
    inner: ListenerKind,
}

impl SocketListener {
    /// Bind a loopback TCP listener on an OS-assigned port (port 0 —
    /// never a fixed port, so parallel CI runs cannot collide).
    pub fn bind_tcp() -> io::Result<Self> {
        let l = TcpListener::bind(("127.0.0.1", 0))?;
        Ok(SocketListener { inner: ListenerKind::Tcp(l) })
    }

    /// Bind a Unix-domain listener at `path` (removed first if stale).
    #[cfg(unix)]
    pub fn bind_uds(path: PathBuf) -> io::Result<Self> {
        let _ = std::fs::remove_file(&path);
        let l = UnixListener::bind(&path)?;
        Ok(SocketListener { inner: ListenerKind::Uds(l, path) })
    }

    /// The address peers should dial.
    pub fn local_spec(&self) -> io::Result<SocketAddrSpec> {
        match &self.inner {
            ListenerKind::Tcp(l) => Ok(SocketAddrSpec::Tcp(l.local_addr()?)),
            #[cfg(unix)]
            ListenerKind::Uds(_, p) => Ok(SocketAddrSpec::Uds(p.clone())),
        }
    }

    /// Block until one peer connects; wrap the connection in a transport.
    /// Accepted transports never auto-reconnect (accept again instead).
    pub fn accept(&self, codec: Arc<dyn WireCodec>) -> io::Result<SocketTransport> {
        let stream = match &self.inner {
            ListenerKind::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nodelay(true)?;
                s.set_nonblocking(true)?;
                StreamKind::Tcp(s)
            }
            #[cfg(unix)]
            ListenerKind::Uds(l, _) => {
                let (s, _) = l.accept()?;
                s.set_nonblocking(true)?;
                StreamKind::Uds(s)
            }
        };
        Ok(SocketTransport::from_stream(stream, codec))
    }
}

#[cfg(unix)]
impl Drop for SocketListener {
    fn drop(&mut self) {
        if let ListenerKind::Uds(_, p) = &self.inner {
            let _ = std::fs::remove_file(p);
        }
    }
}

enum StreamKind {
    Tcp(TcpStream),
    #[cfg(unix)]
    Uds(UnixStream),
}

impl StreamKind {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            StreamKind::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            StreamKind::Uds(s) => s.read(buf),
        }
    }

    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            StreamKind::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            StreamKind::Uds(s) => s.write(buf),
        }
    }

    fn shutdown(&mut self) {
        match self {
            StreamKind::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            #[cfg(unix)]
            StreamKind::Uds(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

fn dial(spec: &SocketAddrSpec) -> io::Result<StreamKind> {
    match spec {
        SocketAddrSpec::Tcp(addr) => {
            let s = TcpStream::connect(addr)?;
            s.set_nodelay(true)?;
            s.set_nonblocking(true)?;
            Ok(StreamKind::Tcp(s))
        }
        #[cfg(unix)]
        SocketAddrSpec::Uds(path) => {
            let s = UnixStream::connect(path)?;
            s.set_nonblocking(true)?;
            Ok(StreamKind::Uds(s))
        }
    }
}

struct Counters {
    obs: Obs,
    bytes: MetricId,
    bytes_sent: MetricId,
    bytes_recv: MetricId,
    reconnects: MetricId,
    decode_errors: MetricId,
}

/// A [`Transport`] over one real socket connection.
pub struct SocketTransport {
    stream: Option<StreamKind>,
    peer: Option<SocketAddrSpec>,
    codec: Arc<dyn WireCodec>,
    rbuf: Vec<u8>,
    wbuf: VecDeque<u8>,
    retry: RetryPolicy,
    retry_rng: StdRng,
    attempt: u32,
    next_attempt_at: Option<Instant>,
    counters: Option<Counters>,
}

impl SocketTransport {
    fn from_parts(
        stream: Option<StreamKind>,
        peer: Option<SocketAddrSpec>,
        codec: Arc<dyn WireCodec>,
    ) -> Self {
        let retry = RetryPolicy::default();
        SocketTransport {
            stream,
            peer,
            codec,
            rbuf: Vec::new(),
            wbuf: VecDeque::new(),
            retry_rng: StdRng::seed_from_u64(retry.seed),
            retry,
            attempt: 0,
            next_attempt_at: None,
            counters: None,
        }
    }

    fn from_stream(stream: StreamKind, codec: Arc<dyn WireCodec>) -> Self {
        Self::from_parts(Some(stream), None, codec)
    }

    /// A client-side transport that dials `peer` on [`Transport::connect`]
    /// and reconnects with backoff after failures. Not yet connected.
    pub fn dial(peer: SocketAddrSpec, codec: Arc<dyn WireCodec>) -> Self {
        Self::from_parts(None, Some(peer), codec)
    }

    /// Use `policy` for reconnect backoff (reseeds the jitter RNG).
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry_rng = StdRng::seed_from_u64(policy.seed);
        self.retry = policy;
        self
    }

    /// Attach per-connection counters to `obs` (ids resolved once here).
    pub fn with_obs(mut self, obs: &Obs) -> Self {
        self.counters = Some(Counters {
            bytes: obs.counter("transport.bytes"),
            bytes_sent: obs.counter("transport.bytes_sent"),
            bytes_recv: obs.counter("transport.bytes_recv"),
            reconnects: obs.counter("transport.reconnects"),
            decode_errors: obs.counter("transport.decode_errors"),
            obs: obs.clone(),
        });
        self
    }

    /// Reconnect attempts made since the last successful connect.
    pub fn reconnect_attempts(&self) -> u32 {
        self.attempt
    }

    fn count_sent(&self, n: u64) {
        if let Some(c) = &self.counters {
            c.obs.inc(c.bytes, n);
            c.obs.inc(c.bytes_sent, n);
        }
    }

    fn count_recv(&self, n: u64) {
        if let Some(c) = &self.counters {
            c.obs.inc(c.bytes, n);
            c.obs.inc(c.bytes_recv, n);
        }
    }

    fn count_decode_error(&self) {
        if let Some(c) = &self.counters {
            c.obs.inc(c.decode_errors, 1);
        }
    }

    /// Drop the connection and arm the backoff timer (client side only).
    fn mark_disconnected(&mut self) {
        if let Some(mut s) = self.stream.take() {
            s.shutdown();
        }
        self.wbuf.clear();
        self.rbuf.clear();
        if self.peer.is_some() {
            let wait = self.retry.timeout_us(RECONNECT_BASE_US, self.attempt, &mut self.retry_rng);
            self.attempt = self.attempt.saturating_add(1);
            self.next_attempt_at = Some(Instant::now() + Duration::from_micros(wait));
        }
    }

    /// Client-side reconnect poll. Returns `Ok(true)` when a new
    /// connection was established by this call, `Ok(false)` when already
    /// connected or still inside the backoff window.
    pub fn poll_reconnect(&mut self) -> Result<bool, TransportError> {
        if self.stream.is_some() {
            return Ok(false);
        }
        let Some(peer) = self.peer.clone() else {
            return Err(TransportError::NotConnected);
        };
        if let Some(at) = self.next_attempt_at {
            if Instant::now() < at {
                return Ok(false);
            }
        }
        match dial(&peer) {
            Ok(s) => {
                self.stream = Some(s);
                let reconnecting = self.attempt > 0;
                self.attempt = 0;
                self.next_attempt_at = None;
                if reconnecting {
                    if let Some(c) = &self.counters {
                        c.obs.inc(c.reconnects, 1);
                    }
                }
                Ok(true)
            }
            Err(e) => {
                let wait =
                    self.retry.timeout_us(RECONNECT_BASE_US, self.attempt, &mut self.retry_rng);
                self.attempt = self.attempt.saturating_add(1);
                self.next_attempt_at = Some(Instant::now() + Duration::from_micros(wait));
                Err(TransportError::Io(e))
            }
        }
    }

    /// Push buffered outbound bytes into the socket until it would block.
    fn flush_wbuf(&mut self) -> Result<(), TransportError> {
        while !self.wbuf.is_empty() {
            let (head, _) = self.wbuf.as_slices();
            let stream = self.stream.as_mut().ok_or(TransportError::NotConnected)?;
            match stream.write(head) {
                Ok(0) => {
                    self.mark_disconnected();
                    return Err(TransportError::Closed);
                }
                Ok(n) => {
                    self.wbuf.drain(..n);
                    self.count_sent(n as u64);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.mark_disconnected();
                    return Err(TransportError::Io(e));
                }
            }
        }
        Ok(())
    }

    /// Pull readable bytes into the read buffer until the socket would
    /// block. Returns `Closed` on EOF.
    fn fill_rbuf(&mut self) -> Result<(), TransportError> {
        let mut chunk = [0u8; 8192];
        loop {
            let stream = self.stream.as_mut().ok_or(TransportError::NotConnected)?;
            match stream.read(&mut chunk) {
                Ok(0) => {
                    // EOF: surface frames already buffered before failing.
                    if self.rbuf.is_empty() {
                        self.mark_disconnected();
                        return Err(TransportError::Closed);
                    }
                    return Ok(());
                }
                Ok(n) => {
                    self.rbuf.extend_from_slice(&chunk[..n]);
                    self.count_recv(n as u64);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.mark_disconnected();
                    return Err(TransportError::Io(e));
                }
            }
        }
    }
}

impl Transport for SocketTransport {
    fn send(&mut self, env: Envelope) -> Result<(), TransportError> {
        if self.stream.is_none() {
            return Err(TransportError::NotConnected);
        }
        let payload = match self.codec.encode(&env.msg) {
            Ok(p) => p,
            Err(e) => {
                self.count_decode_error();
                return Err(TransportError::Codec(e));
            }
        };
        let frame = Frame {
            to: env.to.0 as u64,
            tag: env.msg.tag,
            wire_bytes: env.msg.wire_bytes,
            deadline_us: env.deadline_us,
            payload,
        };
        let mut bytes = Vec::new();
        encode_frame(&frame, &mut bytes);
        self.wbuf.extend(bytes);
        self.flush_wbuf()
    }

    fn try_recv(&mut self) -> Result<Option<Envelope>, TransportError> {
        // Opportunistically push any back-pressured outbound bytes first.
        if self.stream.is_some() && !self.wbuf.is_empty() {
            self.flush_wbuf()?;
        }
        self.fill_rbuf()?;
        match decode_frame(&self.rbuf) {
            Ok(None) => Ok(None),
            Ok(Some((frame, used))) => {
                self.rbuf.drain(..used);
                match self.codec.decode(frame.tag, frame.wire_bytes, &frame.payload) {
                    Ok(msg) => {
                        let mut env = Envelope::to(ActorId(frame.to as usize), msg);
                        env.deadline_us = frame.deadline_us;
                        Ok(Some(env))
                    }
                    Err(e) => {
                        self.count_decode_error();
                        Err(TransportError::Codec(e))
                    }
                }
            }
            Err(e) => {
                // Byte-stream framing cannot resynchronize after garbage:
                // count it and drop the connection.
                self.count_decode_error();
                self.mark_disconnected();
                Err(TransportError::Frame(e))
            }
        }
    }

    fn is_connected(&self) -> bool {
        self.stream.is_some()
    }

    fn connect(&mut self) -> Result<(), TransportError> {
        if self.stream.is_some() {
            return Ok(());
        }
        let peer = self.peer.clone().ok_or(TransportError::NotConnected)?;
        let s = dial(&peer)?;
        self.stream = Some(s);
        self.attempt = 0;
        self.next_attempt_at = None;
        Ok(())
    }

    fn close(&mut self) {
        if let Some(mut s) = self.stream.take() {
            s.shutdown();
        }
        self.wbuf.clear();
        self.rbuf.clear();
        self.peer = None;
        self.next_attempt_at = None;
        self.attempt = 0;
    }
}
