//! Reconnect/retransmit backoff timing, shared by the socket backend's
//! reconnect loop and the visapp client's request retries.
//!
//! Moved here from `visapp::resilience` so the transport layer does not
//! depend on the application; visapp re-exports it unchanged.

use rand::rngs::StdRng;
use rand::Rng;

/// Retransmission timing: exponential backoff with multiplicative jitter.
///
/// Attempt `n` waits `base * multiplier^n`, capped at `max_timeout_us`,
/// then scaled by a uniform factor in `[1 - jitter_frac, 1 + jitter_frac]`
/// drawn from the caller's seeded RNG (deterministic per run; jitter
/// avoids lock-step retry storms when several clients share a link).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Backoff growth factor per attempt (>= 1).
    pub multiplier: f64,
    /// Upper bound on the scaled timeout, microseconds.
    pub max_timeout_us: u64,
    /// Relative jitter magnitude in `[0, 1)`.
    pub jitter_frac: f64,
    /// Seed for the jitter RNG.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { multiplier: 2.0, max_timeout_us: 2_000_000, jitter_frac: 0.1, seed: 0x5e11 }
    }
}

impl RetryPolicy {
    /// The timeout for retry `attempt` (0 = first transmission) of a
    /// request whose base timeout is `base_us`.
    pub fn timeout_us(&self, base_us: u64, attempt: u32, rng: &mut StdRng) -> u64 {
        let scaled = (base_us as f64 * self.multiplier.max(1.0).powi(attempt.min(32) as i32))
            .min(self.max_timeout_us as f64);
        let factor = if self.jitter_frac > 0.0 {
            rng.gen_range(1.0 - self.jitter_frac..=1.0 + self.jitter_frac)
        } else {
            1.0
        };
        (scaled * factor).max(1.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy { jitter_frac: 0.0, ..RetryPolicy::default() };
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(p.timeout_us(100_000, 0, &mut rng), 100_000);
        assert_eq!(p.timeout_us(100_000, 1, &mut rng), 200_000);
        assert_eq!(p.timeout_us(100_000, 2, &mut rng), 400_000);
        // Capped at max_timeout_us regardless of attempt.
        assert_eq!(p.timeout_us(100_000, 20, &mut rng), p.max_timeout_us);
    }

    #[test]
    fn jitter_stays_within_bounds_and_is_deterministic() {
        let p = RetryPolicy { jitter_frac: 0.25, ..RetryPolicy::default() };
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for attempt in 0..8 {
            let ta = p.timeout_us(100_000, attempt, &mut a);
            let tb = p.timeout_us(100_000, attempt, &mut b);
            assert_eq!(ta, tb, "same seed, same timeouts");
            let nominal = (100_000.0 * 2.0f64.powi(attempt as i32)).min(2_000_000.0);
            assert!((ta as f64) >= nominal * 0.75 - 1.0, "attempt {attempt}: {ta}");
            assert!((ta as f64) <= nominal * 1.25 + 1.0, "attempt {attempt}: {ta}");
        }
    }
}
