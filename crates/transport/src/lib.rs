//! # adapt-transport — pluggable message transport for the adaptation loop
//!
//! The paper's adaptation protocol is transport-agnostic: the monitor,
//! scheduler, and steering agent negotiate configurations over whatever
//! channel connects the components. This crate makes that explicit with a
//! [`Transport`] trait over typed [`Envelope`]s (destination + payload +
//! optional deadline) and two implementations:
//!
//! - [`SimTransport`] — an adapter over the deterministic simnet send
//!   path. Every envelope flushed through it becomes exactly the
//!   `Ctx::send` / `Ctx::send_now` call the application would have made
//!   directly, at the same call site and in the same order, so committed
//!   run digests stay bit-for-bit unchanged.
//! - [`SocketTransport`] — real loopback I/O over TCP (or a Unix domain
//!   socket where available) with length-prefixed [`frame`]s, a pluggable
//!   [`WireCodec`] that reconstructs typed `simnet::Message` payloads so
//!   `Message::decode` keeps working on the receiving side, per-connection
//!   obs counters, and reconnect-with-backoff driven by [`RetryPolicy`].
//!
//! Everything is non-blocking: `send` queues and flushes what the kernel
//! accepts, `try_recv` returns `Ok(None)` rather than waiting.

pub mod codec;
pub mod frame;
pub mod retry;
pub mod sim;
pub mod socket;

pub use codec::{ByteReader, ByteWriter, CodecError, WireCodec};
pub use frame::{decode_frame, encode_frame, Frame, FrameError, HEADER_BYTES, MAX_FRAME_BYTES};
pub use retry::RetryPolicy;
pub use sim::SimTransport;
pub use socket::{SocketAddrSpec, SocketListener, SocketTransport};

use simnet::{ActorId, Message};

/// A typed unit of transmission: where the message is going, the message
/// itself, and an optional delivery deadline (simulation microseconds;
/// advisory — carried on the wire so the receiving side can shed work that
/// can no longer be useful).
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Destination actor. Over a socket the connection itself selects the
    /// peer; the id is carried in the frame header so the envelope
    /// round-trips intact. On the receive side this is the *sender*.
    pub to: ActorId,
    /// The application message (tag, simulated wire size, typed payload).
    pub msg: Message,
    /// Optional deadline, microseconds of simulation time.
    pub deadline_us: Option<u64>,
    /// Bypass the sender's serial action queue (the simnet `send_now`
    /// path, used for control-plane traffic such as monitoring reports).
    pub immediate: bool,
}

impl Envelope {
    /// An ordinary envelope: queued behind the sender's earlier actions.
    pub fn to(dst: ActorId, msg: Message) -> Self {
        Envelope { to: dst, msg, deadline_us: None, immediate: false }
    }

    /// A control-plane envelope delivered ahead of the action queue.
    pub fn immediate(dst: ActorId, msg: Message) -> Self {
        Envelope { to: dst, msg, deadline_us: None, immediate: true }
    }

    /// Attach a delivery deadline (simulation microseconds).
    pub fn with_deadline(mut self, deadline_us: u64) -> Self {
        self.deadline_us = Some(deadline_us);
        self
    }
}

/// Why a transport operation failed.
#[derive(Debug)]
pub enum TransportError {
    /// The transport has no live connection (and reconnect is not due yet).
    NotConnected,
    /// The peer closed the connection cleanly.
    Closed,
    /// The operation would block; retry after making progress elsewhere.
    WouldBlock,
    /// A frame on the wire was malformed (framing layer).
    Frame(FrameError),
    /// A well-framed payload failed to decode into a typed message.
    Codec(CodecError),
    /// An underlying socket error.
    Io(std::io::Error),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::NotConnected => write!(f, "transport is not connected"),
            TransportError::Closed => write!(f, "peer closed the connection"),
            TransportError::WouldBlock => write!(f, "operation would block"),
            TransportError::Frame(e) => write!(f, "framing error: {e}"),
            TransportError::Codec(e) => write!(f, "codec error: {e}"),
            TransportError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportError::Frame(e) => Some(e),
            TransportError::Codec(e) => Some(e),
            TransportError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FrameError> for TransportError {
    fn from(e: FrameError) -> Self {
        TransportError::Frame(e)
    }
}

impl From<CodecError> for TransportError {
    fn from(e: CodecError) -> Self {
        TransportError::Codec(e)
    }
}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e)
    }
}

/// A connection-oriented, non-blocking message transport.
///
/// Implementations queue outbound envelopes and surface inbound ones;
/// neither direction ever blocks the caller. Connection lifecycle is
/// explicit: [`Transport::connect`] (re)establishes the link,
/// [`Transport::close`] tears it down, and send/recv report
/// [`TransportError::NotConnected`] in between.
pub trait Transport {
    /// Queue (and opportunistically flush) one envelope.
    fn send(&mut self, env: Envelope) -> Result<(), TransportError>;

    /// Poll for one inbound envelope; `Ok(None)` means nothing is ready.
    fn try_recv(&mut self) -> Result<Option<Envelope>, TransportError>;

    /// Is the underlying channel currently usable?
    fn is_connected(&self) -> bool;

    /// (Re)establish the underlying channel.
    fn connect(&mut self) -> Result<(), TransportError>;

    /// Tear the channel down; queued inbound envelopes are discarded.
    fn close(&mut self);
}
