//! Payload codecs: turning typed `simnet::Message` bodies into bytes and
//! back.
//!
//! The simulator carries payloads as `Arc<dyn Any>` — free inside one
//! process, meaningless on a wire. A [`WireCodec`] supplies the missing
//! serialization: `encode` flattens a message's typed body to bytes and
//! `decode` reconstructs the identical typed body on the far side, so
//! receivers keep using `Message::decode::<T>()` unchanged regardless of
//! backend. Each application defines one codec covering its protocol tags
//! (visapp's lives in `visapp::wire`).
//!
//! [`ByteWriter`] / [`ByteReader`] are the little helpers codecs build on:
//! little-endian scalars and length-prefixed byte strings with explicit
//! truncation errors instead of panics.

use simnet::Message;

/// Why a payload could not be encoded or decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The codec does not know this message tag.
    UnknownTag(u64),
    /// The payload bytes ended before the structure was complete.
    Truncated,
    /// The bytes decoded to an impossible value (bad enum discriminant,
    /// non-UTF-8 string, trailing garbage, ...).
    Malformed(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnknownTag(t) => write!(f, "codec does not handle message tag {t}"),
            CodecError::Truncated => write!(f, "payload truncated"),
            CodecError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Application-protocol serialization for socket transports.
///
/// Implementations must be inverse: for every message the application
/// sends, `decode(tag, wire_bytes, &encode(msg)?)` must rebuild a message
/// whose typed body compares equal. The frame layer carries `tag` and
/// `wire_bytes` out of band, so codecs only handle the body bytes.
pub trait WireCodec: Send + Sync {
    /// Flatten `msg`'s payload to bytes (empty vec for signal messages).
    fn encode(&self, msg: &Message) -> Result<Vec<u8>, CodecError>;

    /// Rebuild the typed message from its framed parts.
    fn decode(&self, tag: u64, wire_bytes: u64, payload: &[u8]) -> Result<Message, CodecError>;
}

/// Append-only little-endian byte sink for codec `encode` impls.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    pub fn new() -> Self {
        ByteWriter::default()
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Length-prefixed byte string (u32 length).
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor over codec payload bytes; every read checks bounds.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> ByteReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.at.checked_add(n).ok_or(CodecError::Truncated)?;
        if end > self.buf.len() {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Length-prefixed byte string (u32 length).
    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, CodecError> {
        std::str::from_utf8(self.bytes()?).map_err(|_| CodecError::Malformed("non-utf8 string"))
    }

    /// Fail decoding if any input bytes remain unconsumed.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(CodecError::Malformed("trailing bytes"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_and_string_roundtrip() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.i64(-42);
        w.f64(1.5);
        w.str("plasma");
        w.bytes(&[1, 2, 3]);
        let bytes = w.into_vec();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.f64().unwrap(), 1.5);
        assert_eq!(r.str().unwrap(), "plasma");
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = ByteWriter::new();
        w.u64(99);
        let bytes = w.into_vec();
        let mut r = ByteReader::new(&bytes[..5]);
        assert_eq!(r.u64(), Err(CodecError::Truncated));
        // A string whose declared length exceeds the buffer is truncated too.
        let mut w = ByteWriter::new();
        w.u32(1000);
        let bytes = w.into_vec();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.bytes(), Err(CodecError::Truncated));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut w = ByteWriter::new();
        w.u8(1);
        w.u8(2);
        let bytes = w.into_vec();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 1);
        assert_eq!(r.finish(), Err(CodecError::Malformed("trailing bytes")));
    }

    #[test]
    fn non_utf8_string_is_malformed() {
        let mut w = ByteWriter::new();
        w.bytes(&[0xff, 0xfe]);
        let bytes = w.into_vec();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.str(), Err(CodecError::Malformed("non-utf8 string")));
    }
}
