//! [`SimTransport`]: the [`Transport`] adapter over the
//! deterministic simnet send path.
//!
//! Actors keep their `on_message`/`on_timer` callback structure — the
//! kernel still delivers inbound messages — but outbound traffic goes
//! through the trait: the actor `send`s envelopes into this transport's
//! outbox and calls [`SimTransport::flush_into`] with its `Ctx` before
//! returning. Flushing replays each envelope as exactly the
//! `ctx.send` / `ctx.send_now` call the actor would have made directly,
//! in the same order at the same call site, so the kernel sees an
//! identical action stream and every committed run digest stays
//! bit-for-bit unchanged.
//!
//! The inbox side exists for symmetry (and for harnesses that drive a
//! transport pair directly): the kernel dispatch loop can
//! [`SimTransport::deliver`] a message and the actor can drain it with
//! `try_recv` instead of pattern-matching in `on_message`.

use std::collections::VecDeque;

use simnet::{ActorId, Ctx, Message};

use crate::{Envelope, Transport, TransportError};

/// In-simulator transport: queues envelopes and replays them onto a
/// `Ctx` verbatim. Always "connected" once constructed; `close` models a
/// local shutdown (sends are refused, pending inbound traffic dropped).
#[derive(Debug, Default)]
pub struct SimTransport {
    outbox: VecDeque<Envelope>,
    inbox: VecDeque<Envelope>,
    open: bool,
}

impl SimTransport {
    pub fn new() -> Self {
        SimTransport { outbox: VecDeque::new(), inbox: VecDeque::new(), open: true }
    }

    /// Replay every queued outbound envelope onto `ctx`, preserving order
    /// and the queued/immediate distinction. Call this before returning
    /// from the actor callback that produced the sends.
    pub fn flush_into(&mut self, ctx: &mut Ctx<'_>) {
        while let Some(env) = self.outbox.pop_front() {
            if env.immediate {
                ctx.send_now(env.to, env.msg);
            } else {
                ctx.send(env.to, env.msg);
            }
        }
    }

    /// Kernel-side injection: place an inbound message (from `from`) into
    /// the inbox for a later `try_recv`.
    pub fn deliver(&mut self, from: ActorId, msg: Message) {
        self.inbox.push_back(Envelope::to(from, msg));
    }

    /// Number of envelopes waiting to be flushed.
    pub fn pending(&self) -> usize {
        self.outbox.len()
    }
}

impl Transport for SimTransport {
    fn send(&mut self, env: Envelope) -> Result<(), TransportError> {
        if !self.open {
            return Err(TransportError::NotConnected);
        }
        self.outbox.push_back(env);
        Ok(())
    }

    fn try_recv(&mut self) -> Result<Option<Envelope>, TransportError> {
        if !self.open {
            return Err(TransportError::NotConnected);
        }
        Ok(self.inbox.pop_front())
    }

    fn is_connected(&self) -> bool {
        self.open
    }

    fn connect(&mut self) -> Result<(), TransportError> {
        self.open = true;
        Ok(())
    }

    fn close(&mut self) {
        self.open = false;
        self.outbox.clear();
        self.inbox.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queues_preserve_order_and_lifecycle_gates_io() {
        let mut t = SimTransport::new();
        assert!(t.is_connected());
        t.send(Envelope::to(ActorId(1), Message::signal(10, 64))).unwrap();
        t.send(Envelope::immediate(ActorId(2), Message::signal(11, 64))).unwrap();
        assert_eq!(t.pending(), 2);
        t.deliver(ActorId(3), Message::signal(20, 32));
        let got = t.try_recv().unwrap().unwrap();
        assert_eq!(got.to, ActorId(3));
        assert_eq!(got.msg.tag, 20);
        assert!(t.try_recv().unwrap().is_none());
        t.close();
        assert!(!t.is_connected());
        assert_eq!(t.pending(), 0, "close drops queued traffic");
        assert!(matches!(
            t.send(Envelope::to(ActorId(1), Message::signal(1, 1))),
            Err(TransportError::NotConnected)
        ));
        assert!(matches!(t.try_recv(), Err(TransportError::NotConnected)));
        t.connect().unwrap();
        assert!(t.is_connected());
    }
}
