//! Length-prefixed wire framing for [`SocketTransport`](crate::SocketTransport).
//!
//! Every envelope becomes one frame: a fixed 40-byte header followed by
//! the codec-encoded payload. All integers are little-endian.
//!
//! ```text
//! offset  size  field
//!      0     2  magic       0xAD 0x7A
//!      2     1  version     0x01
//!      3     1  reserved    0x00
//!      4     8  to          destination ActorId (u64)
//!     12     8  tag         Message tag
//!     20     8  wire_bytes  simulated wire size (kept so the envelope
//!                           round-trips bit-identically)
//!     28     8  deadline    deadline_us, u64::MAX encodes None
//!     36     4  len         payload byte length (u32)
//!     40   len  payload     codec-encoded message body
//! ```
//!
//! Decoding is incremental: [`decode_frame`] consumes a byte buffer that
//! may hold a partial frame (`Ok(None)`), exactly one frame, or several
//! back-to-back frames, returning how many bytes each complete frame
//! consumed so the caller can drain a read buffer in place.

/// Frame header magic: distinguishes our traffic from stray bytes.
pub const MAGIC: [u8; 2] = [0xAD, 0x7A];

/// Current framing version.
pub const VERSION: u8 = 0x01;

/// Fixed header size in bytes.
pub const HEADER_BYTES: usize = 40;

/// Upper bound on a single frame's payload (16 MiB). A length field above
/// this is treated as corruption, not an allocation request.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Sentinel for "no deadline" in the header's deadline field.
const NO_DEADLINE: u64 = u64::MAX;

/// One decoded frame: the envelope header fields plus the raw payload
/// bytes (still codec-encoded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Destination (or, on the receive side, source) actor id.
    pub to: u64,
    /// Message tag.
    pub tag: u64,
    /// Simulated wire size carried through verbatim.
    pub wire_bytes: u64,
    /// Optional deadline, microseconds.
    pub deadline_us: Option<u64>,
    /// Codec-encoded payload bytes.
    pub payload: Vec<u8>,
}

/// Why a byte sequence is not a valid frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The first two bytes are not [`MAGIC`].
    BadMagic,
    /// Unknown framing version.
    BadVersion(u8),
    /// The declared payload length exceeds [`MAX_FRAME_BYTES`].
    Oversized(u64),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic => write!(f, "bad frame magic"),
            FrameError::BadVersion(v) => write!(f, "unsupported frame version {v}"),
            FrameError::Oversized(n) => {
                write!(f, "frame payload of {n} bytes exceeds limit of {MAX_FRAME_BYTES}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Serialize one frame into `out`.
pub fn encode_frame(frame: &Frame, out: &mut Vec<u8>) {
    out.reserve(HEADER_BYTES + frame.payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(0);
    out.extend_from_slice(&frame.to.to_le_bytes());
    out.extend_from_slice(&frame.tag.to_le_bytes());
    out.extend_from_slice(&frame.wire_bytes.to_le_bytes());
    out.extend_from_slice(&frame.deadline_us.unwrap_or(NO_DEADLINE).to_le_bytes());
    out.extend_from_slice(&(frame.payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&frame.payload);
}

fn read_u64(buf: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(buf[at..at + 8].try_into().unwrap())
}

/// Try to decode one frame from the front of `buf`.
///
/// - `Ok(Some((frame, consumed)))` — a complete frame; the caller should
///   drop the first `consumed` bytes of the buffer.
/// - `Ok(None)` — the buffer holds only a prefix of a frame; read more.
/// - `Err(_)` — the buffer front is not a valid frame; the connection
///   should be torn down (byte-stream framing cannot resynchronize).
pub fn decode_frame(buf: &[u8]) -> Result<Option<(Frame, usize)>, FrameError> {
    if buf.len() < 2 {
        // Not enough bytes even for the magic — but if what we do have
        // already mismatches, fail now rather than waiting forever.
        if !buf.is_empty() && buf[0] != MAGIC[0] {
            return Err(FrameError::BadMagic);
        }
        return Ok(None);
    }
    if buf[0..2] != MAGIC {
        return Err(FrameError::BadMagic);
    }
    if buf.len() < 3 {
        return Ok(None);
    }
    if buf[2] != VERSION {
        return Err(FrameError::BadVersion(buf[2]));
    }
    if buf.len() < HEADER_BYTES {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buf[36..40].try_into().unwrap()) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::Oversized(len as u64));
    }
    let total = HEADER_BYTES + len;
    if buf.len() < total {
        return Ok(None);
    }
    let deadline = read_u64(buf, 28);
    let frame = Frame {
        to: read_u64(buf, 4),
        tag: read_u64(buf, 12),
        wire_bytes: read_u64(buf, 20),
        deadline_us: if deadline == NO_DEADLINE { None } else { Some(deadline) },
        payload: buf[HEADER_BYTES..total].to_vec(),
    };
    Ok(Some((frame, total)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(payload: Vec<u8>) -> Frame {
        Frame { to: 3, tag: 0x51, wire_bytes: 4096, deadline_us: Some(1_500_000), payload }
    }

    #[test]
    fn roundtrip_with_and_without_deadline() {
        for deadline in [Some(7u64), None] {
            let f = Frame { deadline_us: deadline, ..sample(vec![1, 2, 3, 4, 5]) };
            let mut bytes = Vec::new();
            encode_frame(&f, &mut bytes);
            assert_eq!(bytes.len(), HEADER_BYTES + 5);
            let (decoded, used) = decode_frame(&bytes).unwrap().unwrap();
            assert_eq!(used, bytes.len());
            assert_eq!(decoded, f);
        }
    }

    #[test]
    fn empty_payload_roundtrips() {
        let f = sample(Vec::new());
        let mut bytes = Vec::new();
        encode_frame(&f, &mut bytes);
        let (decoded, used) = decode_frame(&bytes).unwrap().unwrap();
        assert_eq!(used, HEADER_BYTES);
        assert_eq!(decoded, f);
    }

    #[test]
    fn incomplete_prefixes_ask_for_more() {
        let f = sample(vec![9; 32]);
        let mut bytes = Vec::new();
        encode_frame(&f, &mut bytes);
        for cut in [0, 1, 2, 3, 8, HEADER_BYTES - 1, HEADER_BYTES, bytes.len() - 1] {
            assert_eq!(decode_frame(&bytes[..cut]).unwrap(), None, "cut at {cut}");
        }
    }

    #[test]
    fn back_to_back_frames_drain_in_order() {
        let a = sample(vec![1, 1, 1]);
        let b = Frame { tag: 0x52, ..sample(vec![2, 2]) };
        let mut bytes = Vec::new();
        encode_frame(&a, &mut bytes);
        encode_frame(&b, &mut bytes);
        let (first, used) = decode_frame(&bytes).unwrap().unwrap();
        assert_eq!(first, a);
        let (second, used2) = decode_frame(&bytes[used..]).unwrap().unwrap();
        assert_eq!(second, b);
        assert_eq!(used + used2, bytes.len());
    }

    #[test]
    fn garbage_is_rejected() {
        assert_eq!(decode_frame(&[0x00, 0x01, 0x02]), Err(FrameError::BadMagic));
        // First byte alone already rules the stream out.
        assert_eq!(decode_frame(&[0x00]), Err(FrameError::BadMagic));
        let mut bytes = Vec::new();
        encode_frame(&sample(vec![1]), &mut bytes);
        bytes[2] = 0x7f;
        assert_eq!(decode_frame(&bytes), Err(FrameError::BadVersion(0x7f)));
    }

    #[test]
    fn oversized_length_is_corruption_not_allocation() {
        let mut bytes = Vec::new();
        encode_frame(&sample(vec![1]), &mut bytes);
        bytes[36..40].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_frame(&bytes), Err(FrameError::Oversized(u32::MAX as u64)));
    }
}
