//! Live control plane: lock-free runtime-tunable configuration.
//!
//! The paper's dynamic-preference negotiation (§4) needs user preferences
//! and policy knobs to change *mid-run*; everything in this module exists
//! to make that cheap, typed, and auditable:
//!
//! * [`Adaptive<T>`] — an arc-swap-style shared handle. `get()` is a
//!   single atomic load (wait-free, no lock, no reference counting on the
//!   read path), so hot loops can re-read a knob every iteration.
//!   Mutation goes through `set()`, which is serialized and retains every
//!   superseded value until the last handle drops, keeping outstanding
//!   `&T` borrows valid.
//! * [`Knob`] / [`ConfigValue`] — the dynamic typing layer. Each handle
//!   (or a closure-projected field of one, see [`FnKnob`]) registers
//!   under a stable dotted name in a [`ConfigRegistry`].
//! * [`CommandRouter`] — dispatches a typed [`Command`]
//!   (`Set`/`Get`/`ListConfig`/`ResetBreaker`/`PinConfig`/`Unpin`) to the
//!   registered knobs and publishes an audit [`Event`] on the obs bus for
//!   every mutation *and* every rejected mutation: who asked, which key,
//!   old value, new value, at what simulation time.
//! * [`ResetSignal`] — a monotonic counter for commands that are not
//!   value writes (breaker resets). The owner of the breaker polls it at
//!   its next deterministic decision point, so a reset issued from
//!   outside the simulation still takes effect at a legal instant.
//!
//! # Memory ordering
//!
//! `Adaptive::set` publishes the new boxed value with a `Release` swap
//! and bumps the version counter with `Release`; `Adaptive::get` reads
//! the pointer with `Acquire`. A reader that observes the new pointer
//! therefore observes the fully-initialized value behind it — values are
//! immutable once published, so old-or-new is the only possible outcome
//! of a racing `get`, never a torn mix.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::{Event, Obs, Source};

// ---------------------------------------------------------------------------
// Adaptive<T>
// ---------------------------------------------------------------------------

struct AdaptiveInner<T> {
    /// The live value. Always points at a leaked `Box<T>` owned by this
    /// inner (either still current or parked in `retired`).
    current: AtomicPtr<T>,
    /// Mutation count; 0 means "never mutated since construction".
    version: AtomicU64,
    /// Every superseded value, kept alive until the handle drops so that
    /// `get()` can hand out `&T` without any read-side bookkeeping.
    /// Control-plane mutation rates are human-scale; the retained list is
    /// bounded by the number of `set` calls, not by reads.
    retired: Mutex<Vec<*mut T>>,
}

// SAFETY: the raw pointers inside are only ever created from `Box<T>` and
// only freed in `Drop`; sharing the container across threads shares `&T`
// reads (needs `T: Sync`) and moves boxed `T`s (needs `T: Send`).
unsafe impl<T: Send> Send for AdaptiveInner<T> {}
unsafe impl<T: Send + Sync> Sync for AdaptiveInner<T> {}

impl<T> Drop for AdaptiveInner<T> {
    fn drop(&mut self) {
        // SAFETY: every pointer here came from `Box::into_raw` and is
        // dropped exactly once — `current` and the `retired` list are
        // disjoint by construction.
        unsafe {
            drop(Box::from_raw(self.current.load(Ordering::Acquire)));
            for p in self.retired.get_mut().unwrap_or_else(|e| e.into_inner()).drain(..) {
                drop(Box::from_raw(p));
            }
        }
    }
}

/// A lock-free, shareable, runtime-tunable value.
///
/// Clones share the same cell: a `set` through any clone is visible to
/// every other clone's next `get`. Reads are a single `Acquire` load.
///
/// ```
/// use obs::Adaptive;
///
/// let knob = Adaptive::new(250_000u64);
/// let reader = knob.clone();
/// assert_eq!(*reader.get(), 250_000);
/// knob.set(400_000);
/// assert_eq!(*reader.get(), 400_000);
/// assert_eq!(reader.version(), 1);
/// ```
pub struct Adaptive<T> {
    inner: Arc<AdaptiveInner<T>>,
}

impl<T> Clone for Adaptive<T> {
    fn clone(&self) -> Self {
        Adaptive { inner: Arc::clone(&self.inner) }
    }
}

impl<T: fmt::Debug> fmt::Debug for Adaptive<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Adaptive")
            .field("value", self.get())
            .field("version", &self.version())
            .finish()
    }
}

impl<T: Default> Default for Adaptive<T> {
    fn default() -> Self {
        Adaptive::new(T::default())
    }
}

impl<T: PartialEq> PartialEq for Adaptive<T> {
    fn eq(&self, other: &Self) -> bool {
        self.get() == other.get()
    }
}

impl<T> Adaptive<T> {
    /// Wrap `value` in a fresh handle at version 0.
    pub fn new(value: T) -> Self {
        Adaptive {
            inner: Arc::new(AdaptiveInner {
                current: AtomicPtr::new(Box::into_raw(Box::new(value))),
                version: AtomicU64::new(0),
                retired: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Read the live value. One `Acquire` atomic load; wait-free.
    ///
    /// The borrow is tied to this handle, and superseded values are
    /// retained until the last clone drops, so the reference stays valid
    /// across concurrent `set` calls (it just goes stale).
    pub fn get(&self) -> &T {
        // SAFETY: `current` always points at a live leaked Box owned by
        // `inner`; superseded boxes are retired, not freed, until Drop.
        unsafe { &*self.inner.current.load(Ordering::Acquire) }
    }

    /// Copy the live value out (convenience for `Copy` knobs).
    pub fn load(&self) -> T
    where
        T: Copy,
    {
        *self.get()
    }

    /// Publish `value` as the new live value and bump the version.
    /// Returns the version the write landed as.
    pub fn set(&self, value: T) -> u64 {
        let fresh = Box::into_raw(Box::new(value));
        let old = self.inner.current.swap(fresh, Ordering::AcqRel);
        self.inner.retired.lock().unwrap_or_else(|e| e.into_inner()).push(old);
        self.inner.version.fetch_add(1, Ordering::Release) + 1
    }

    /// How many times this cell has been mutated (0 = pristine).
    pub fn version(&self) -> u64 {
        self.inner.version.load(Ordering::Acquire)
    }
}

// ---------------------------------------------------------------------------
// Dynamic typing layer
// ---------------------------------------------------------------------------

/// A dynamically-typed knob value, the wire currency of [`Command`]s.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
}

impl ConfigValue {
    /// Stable lowercase name of the payload type.
    pub fn type_name(&self) -> &'static str {
        match self {
            ConfigValue::U64(_) => "u64",
            ConfigValue::I64(_) => "i64",
            ConfigValue::F64(_) => "f64",
            ConfigValue::Bool(_) => "bool",
            ConfigValue::Str(_) => "str",
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            ConfigValue::U64(v) => Some(*v),
            ConfigValue::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            ConfigValue::F64(v) => Some(*v),
            ConfigValue::U64(v) => Some(*v as f64),
            ConfigValue::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            ConfigValue::Bool(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            ConfigValue::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }
}

impl fmt::Display for ConfigValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigValue::U64(v) => write!(f, "{v}"),
            ConfigValue::I64(v) => write!(f, "{v}"),
            ConfigValue::F64(v) => write!(f, "{v}"),
            ConfigValue::Bool(v) => write!(f, "{v}"),
            ConfigValue::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<u64> for ConfigValue {
    fn from(v: u64) -> Self {
        ConfigValue::U64(v)
    }
}
impl From<i64> for ConfigValue {
    fn from(v: i64) -> Self {
        ConfigValue::I64(v)
    }
}
impl From<f64> for ConfigValue {
    fn from(v: f64) -> Self {
        ConfigValue::F64(v)
    }
}
impl From<bool> for ConfigValue {
    fn from(v: bool) -> Self {
        ConfigValue::Bool(v)
    }
}
impl From<&str> for ConfigValue {
    fn from(v: &str) -> Self {
        ConfigValue::Str(v.to_string())
    }
}
impl From<String> for ConfigValue {
    fn from(v: String) -> Self {
        ConfigValue::Str(v)
    }
}

/// Why a [`Knob`] write failed (key-agnostic; the registry attaches the
/// key and converts to [`ControlError`]).
#[derive(Debug, Clone, PartialEq)]
pub enum KnobError {
    /// The supplied value's type does not match the knob's.
    TypeMismatch { expected: &'static str, got: &'static str },
    /// Right type, unacceptable value (e.g. an unparseable directive).
    BadValue(String),
}

/// A control-plane operation error, as surfaced to command issuers.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlError {
    /// No knob registered under this key.
    UnknownKey(String),
    /// The value's type does not match the knob's.
    TypeMismatch { key: String, expected: &'static str, got: &'static str },
    /// The key is pinned by an operator; `Set` is refused until `Unpin`.
    Pinned { key: String, by: String },
    /// Right type, unacceptable value.
    BadValue { key: String, reason: String },
    /// `ResetBreaker` on a key with no registered reset signal.
    NoResetTarget(String),
}

impl fmt::Display for ControlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControlError::UnknownKey(k) => write!(f, "unknown config key `{k}`"),
            ControlError::TypeMismatch { key, expected, got } => {
                write!(f, "config key `{key}` holds {expected}, got {got}")
            }
            ControlError::Pinned { key, by } => {
                write!(f, "config key `{key}` is pinned by `{by}`")
            }
            ControlError::BadValue { key, reason } => {
                write!(f, "bad value for config key `{key}`: {reason}")
            }
            ControlError::NoResetTarget(k) => {
                write!(f, "no breaker reset signal registered under `{k}`")
            }
        }
    }
}

impl std::error::Error for ControlError {}

impl ControlError {
    fn from_knob(key: &str, e: KnobError) -> Self {
        match e {
            KnobError::TypeMismatch { expected, got } => {
                ControlError::TypeMismatch { key: key.to_string(), expected, got }
            }
            KnobError::BadValue(reason) => ControlError::BadValue { key: key.to_string(), reason },
        }
    }

    /// Stable machine-readable reason, used in `config_reject` audit
    /// events.
    pub fn reason(&self) -> &'static str {
        match self {
            ControlError::UnknownKey(_) => "unknown_key",
            ControlError::TypeMismatch { .. } => "type_mismatch",
            ControlError::Pinned { .. } => "pinned",
            ControlError::BadValue { .. } => "bad_value",
            ControlError::NoResetTarget(_) => "no_reset_target",
        }
    }
}

/// A named, dynamically-typed view over an [`Adaptive`] cell.
///
/// Implementations must make `write` serialize against itself (the
/// registry guarantees this by holding its lock across dispatch).
pub trait Knob: Send + Sync {
    /// Current value, rendered dynamically.
    fn read(&self) -> ConfigValue;
    /// Replace the value; returns the old value on success.
    fn write(&self, value: ConfigValue) -> Result<ConfigValue, KnobError>;
    /// Stable name of the underlying type ("u64", "f64", ...).
    fn type_name(&self) -> &'static str;
    /// Mutation count of the underlying cell.
    fn version(&self) -> u64;
}

impl Knob for Adaptive<u64> {
    fn read(&self) -> ConfigValue {
        ConfigValue::U64(self.load())
    }
    fn write(&self, value: ConfigValue) -> Result<ConfigValue, KnobError> {
        let v = value
            .as_u64()
            .ok_or(KnobError::TypeMismatch { expected: "u64", got: value.type_name() })?;
        let old = self.load();
        self.set(v);
        Ok(ConfigValue::U64(old))
    }
    fn type_name(&self) -> &'static str {
        "u64"
    }
    fn version(&self) -> u64 {
        Adaptive::version(self)
    }
}

impl Knob for Adaptive<f64> {
    fn read(&self) -> ConfigValue {
        ConfigValue::F64(self.load())
    }
    fn write(&self, value: ConfigValue) -> Result<ConfigValue, KnobError> {
        let v = value
            .as_f64()
            .ok_or(KnobError::TypeMismatch { expected: "f64", got: value.type_name() })?;
        let old = self.load();
        self.set(v);
        Ok(ConfigValue::F64(old))
    }
    fn type_name(&self) -> &'static str {
        "f64"
    }
    fn version(&self) -> u64 {
        Adaptive::version(self)
    }
}

impl Knob for Adaptive<bool> {
    fn read(&self) -> ConfigValue {
        ConfigValue::Bool(self.load())
    }
    fn write(&self, value: ConfigValue) -> Result<ConfigValue, KnobError> {
        let v = value
            .as_bool()
            .ok_or(KnobError::TypeMismatch { expected: "bool", got: value.type_name() })?;
        let old = self.load();
        self.set(v);
        Ok(ConfigValue::Bool(old))
    }
    fn type_name(&self) -> &'static str {
        "bool"
    }
    fn version(&self) -> u64 {
        Adaptive::version(self)
    }
}

/// Closure-projected knob: exposes one dynamically-typed facet of a
/// structured [`Adaptive`] value (e.g. the `max_timeout_us` field of a
/// retry policy) under its own registry key.
///
/// A write clones the current structure, applies the projection, and
/// republishes the whole value — readers still see old-or-new atomically.
pub struct FnKnob<T: Clone> {
    handle: Adaptive<T>,
    type_name: &'static str,
    read: Box<dyn Fn(&T) -> ConfigValue + Send + Sync>,
    #[allow(clippy::type_complexity)]
    write: Box<dyn Fn(&mut T, ConfigValue) -> Result<(), KnobError> + Send + Sync>,
}

impl<T: Clone> FnKnob<T> {
    pub fn new(
        handle: Adaptive<T>,
        type_name: &'static str,
        read: impl Fn(&T) -> ConfigValue + Send + Sync + 'static,
        write: impl Fn(&mut T, ConfigValue) -> Result<(), KnobError> + Send + Sync + 'static,
    ) -> Self {
        FnKnob { handle, type_name, read: Box::new(read), write: Box::new(write) }
    }
}

impl<T: Clone + Send + Sync> Knob for FnKnob<T> {
    fn read(&self) -> ConfigValue {
        (self.read)(self.handle.get())
    }
    fn write(&self, value: ConfigValue) -> Result<ConfigValue, KnobError> {
        let old = self.read();
        let mut next = self.handle.get().clone();
        (self.write)(&mut next, value)?;
        self.handle.set(next);
        Ok(old)
    }
    fn type_name(&self) -> &'static str {
        self.type_name
    }
    fn version(&self) -> u64 {
        self.handle.version()
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

struct RegEntry {
    knob: Arc<dyn Knob>,
    pinned_by: Option<String>,
}

/// One row of a `ListConfig` response.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigEntry {
    pub key: String,
    pub value: ConfigValue,
    pub type_name: &'static str,
    pub version: u64,
    /// `Some(operator)` while the key is pinned.
    pub pinned_by: Option<String>,
}

/// A registry of named typed knobs. Clones share state; iteration order
/// is the keys' lexicographic order (BTreeMap), so `ListConfig` output is
/// deterministic.
#[derive(Clone, Default)]
pub struct ConfigRegistry {
    inner: Arc<Mutex<BTreeMap<String, RegEntry>>>,
}

impl fmt::Debug for ConfigRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let keys: Vec<String> = self.lock().keys().cloned().collect();
        f.debug_struct("ConfigRegistry").field("keys", &keys).finish()
    }
}

impl ConfigRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, RegEntry>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Register `knob` under `key`, replacing any previous registration.
    pub fn register(&self, key: impl Into<String>, knob: Arc<dyn Knob>) {
        self.lock().insert(key.into(), RegEntry { knob, pinned_by: None });
    }

    /// Convenience: register an owned knob value.
    pub fn register_knob(&self, key: impl Into<String>, knob: impl Knob + 'static) {
        self.register(key, Arc::new(knob));
    }

    /// Is `key` registered?
    pub fn contains(&self, key: &str) -> bool {
        self.lock().contains_key(key)
    }

    /// Current value of `key`.
    pub fn get(&self, key: &str) -> Result<ConfigValue, ControlError> {
        self.lock()
            .get(key)
            .map(|e| e.knob.read())
            .ok_or_else(|| ControlError::UnknownKey(key.to_string()))
    }

    /// Write `value` to `key`. Refused while the key is pinned. Returns
    /// `(old_value, new_version)`.
    pub fn set(&self, key: &str, value: ConfigValue) -> Result<(ConfigValue, u64), ControlError> {
        let map = self.lock();
        let entry = map.get(key).ok_or_else(|| ControlError::UnknownKey(key.to_string()))?;
        if let Some(by) = &entry.pinned_by {
            return Err(ControlError::Pinned { key: key.to_string(), by: by.clone() });
        }
        let old = entry.knob.write(value).map_err(|e| ControlError::from_knob(key, e))?;
        Ok((old, entry.knob.version()))
    }

    /// Pin `key`: subsequent `Set`s are refused until [`unpin`](Self::unpin).
    /// Re-pinning overwrites the pin owner.
    pub fn pin(&self, key: &str, who: &str) -> Result<(), ControlError> {
        let mut map = self.lock();
        let entry = map.get_mut(key).ok_or_else(|| ControlError::UnknownKey(key.to_string()))?;
        entry.pinned_by = Some(who.to_string());
        Ok(())
    }

    /// Remove the pin on `key` (idempotent on an unpinned key).
    pub fn unpin(&self, key: &str) -> Result<(), ControlError> {
        let mut map = self.lock();
        let entry = map.get_mut(key).ok_or_else(|| ControlError::UnknownKey(key.to_string()))?;
        entry.pinned_by = None;
        Ok(())
    }

    /// Who pinned `key`, if anyone.
    pub fn pinned_by(&self, key: &str) -> Option<String> {
        self.lock().get(key).and_then(|e| e.pinned_by.clone())
    }

    /// Deterministic snapshot of every registered knob, key-sorted.
    pub fn list(&self) -> Vec<ConfigEntry> {
        self.lock()
            .iter()
            .map(|(key, e)| ConfigEntry {
                key: key.clone(),
                value: e.knob.read(),
                type_name: e.knob.type_name(),
                version: e.knob.version(),
                pinned_by: e.pinned_by.clone(),
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Reset signals
// ---------------------------------------------------------------------------

/// A monotonic request counter for commands that are *actions*, not
/// value writes (today: forcing a circuit breaker to probe/close).
///
/// The issuer calls [`request`](Self::request); the owning component
/// polls [`take`](Self::take) with its own last-seen cursor at its next
/// deterministic decision point, so the action lands at a legal instant
/// of the simulation rather than asynchronously.
#[derive(Clone, Debug, Default)]
pub struct ResetSignal {
    requests: Arc<AtomicU64>,
}

impl ResetSignal {
    pub fn new() -> Self {
        Self::default()
    }

    /// Issue one reset request.
    pub fn request(&self) {
        self.requests.fetch_add(1, Ordering::Release);
    }

    /// Total requests ever issued.
    pub fn pending(&self) -> u64 {
        self.requests.load(Ordering::Acquire)
    }

    /// Poll for new requests since `*seen`; advances the cursor and
    /// returns true when at least one arrived.
    pub fn take(&self, seen: &mut u64) -> bool {
        let n = self.pending();
        if n > *seen {
            *seen = n;
            true
        } else {
            false
        }
    }
}

// ---------------------------------------------------------------------------
// Commands and the router
// ---------------------------------------------------------------------------

/// A typed control-plane command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Write `value` to the knob registered under `key`.
    Set { key: String, value: ConfigValue },
    /// Read the knob registered under `key`.
    Get { key: String },
    /// Snapshot every registered knob, key-sorted.
    ListConfig,
    /// Ask the breaker registered under `key` to probe/close at its next
    /// legal instant.
    ResetBreaker { key: String },
    /// Operator pin: refuse `Set`s on `key` until `Unpin`.
    PinConfig { key: String },
    /// Remove an operator pin.
    Unpin { key: String },
}

impl Command {
    /// Convenience constructor for the common case.
    pub fn set(key: impl Into<String>, value: impl Into<ConfigValue>) -> Self {
        Command::Set { key: key.into(), value: value.into() }
    }

    /// The key this command targets (`None` for `ListConfig`).
    pub fn key(&self) -> Option<&str> {
        match self {
            Command::Set { key, .. }
            | Command::Get { key }
            | Command::ResetBreaker { key }
            | Command::PinConfig { key }
            | Command::Unpin { key } => Some(key),
            Command::ListConfig => None,
        }
    }
}

/// What a successfully dispatched [`Command`] produced.
#[derive(Debug, Clone, PartialEq)]
pub enum CommandOutcome {
    /// `Set`: the knob was updated from `old` to `new`; `version` is the
    /// cell's mutation count after the write.
    Updated { key: String, old: ConfigValue, new: ConfigValue, version: u64 },
    /// `Get`: the current value.
    Value { key: String, value: ConfigValue },
    /// `ListConfig`: the deterministic snapshot.
    Listing(Vec<ConfigEntry>),
    /// `ResetBreaker`: the request was recorded for the owner to poll.
    ResetIssued { key: String },
    /// `PinConfig` succeeded.
    Pinned { key: String },
    /// `Unpin` succeeded.
    Unpinned { key: String },
}

/// Dispatches [`Command`]s to a [`ConfigRegistry`] (and registered
/// [`ResetSignal`]s), publishing an audit event on the obs bus for every
/// mutation and every rejected mutation.
///
/// Audit kinds (all `Source::Control`):
/// * `config_set` — who, key, old, new, version
/// * `config_reject` — who, key, reason
/// * `config_pin` / `config_unpin` — who, key
/// * `breaker_reset` — who, key
#[derive(Clone, Default)]
pub struct CommandRouter {
    registry: ConfigRegistry,
    resets: Arc<Mutex<BTreeMap<String, ResetSignal>>>,
    obs: Option<Obs>,
}

impl fmt::Debug for CommandRouter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CommandRouter")
            .field("registry", &self.registry)
            .field("audited", &self.obs.is_some())
            .finish()
    }
}

impl CommandRouter {
    pub fn new(registry: ConfigRegistry) -> Self {
        CommandRouter { registry, resets: Arc::default(), obs: None }
    }

    /// Attach the obs bus that receives audit events (builder-style).
    pub fn with_obs(mut self, obs: &Obs) -> Self {
        self.obs = Some(obs.clone());
        self
    }

    /// The registry this router dispatches into.
    pub fn registry(&self) -> &ConfigRegistry {
        &self.registry
    }

    /// Register the reset signal owned by the breaker at `key`.
    pub fn register_reset(&self, key: impl Into<String>, signal: ResetSignal) {
        self.resets.lock().unwrap_or_else(|e| e.into_inner()).insert(key.into(), signal);
    }

    fn audit(&self, ev: Event) {
        if let Some(obs) = &self.obs {
            obs.publish(ev);
        }
    }

    /// Dispatch one command at simulation time `at_us` on behalf of
    /// `who`. Mutations (and refused mutations) are audited; pure reads
    /// (`Get`, `ListConfig`) are not.
    pub fn dispatch(
        &self,
        at_us: u64,
        who: &str,
        cmd: Command,
    ) -> Result<CommandOutcome, ControlError> {
        match cmd {
            Command::Set { key, value } => match self.registry.set(&key, value.clone()) {
                Ok((old, version)) => {
                    self.audit(
                        Event::new(at_us, Source::Control, "config_set")
                            .with("who", who)
                            .with("key", key.as_str())
                            .with("old", old.to_string())
                            .with("new", value.to_string())
                            .with("version", version),
                    );
                    Ok(CommandOutcome::Updated { key, old, new: value, version })
                }
                Err(e) => {
                    self.audit(
                        Event::new(at_us, Source::Control, "config_reject")
                            .with("who", who)
                            .with("key", key.as_str())
                            .with("attempted", value.to_string())
                            .with("reason", e.reason()),
                    );
                    Err(e)
                }
            },
            Command::Get { key } => {
                let value = self.registry.get(&key)?;
                Ok(CommandOutcome::Value { key, value })
            }
            Command::ListConfig => Ok(CommandOutcome::Listing(self.registry.list())),
            Command::ResetBreaker { key } => {
                let resets = self.resets.lock().unwrap_or_else(|e| e.into_inner());
                let Some(signal) = resets.get(&key) else {
                    self.audit(
                        Event::new(at_us, Source::Control, "config_reject")
                            .with("who", who)
                            .with("key", key.as_str())
                            .with("reason", ControlError::NoResetTarget(key.clone()).reason()),
                    );
                    return Err(ControlError::NoResetTarget(key));
                };
                signal.request();
                self.audit(
                    Event::new(at_us, Source::Control, "breaker_reset")
                        .with("who", who)
                        .with("key", key.as_str()),
                );
                Ok(CommandOutcome::ResetIssued { key })
            }
            Command::PinConfig { key } => {
                self.registry.pin(&key, who)?;
                self.audit(
                    Event::new(at_us, Source::Control, "config_pin")
                        .with("who", who)
                        .with("key", key.as_str()),
                );
                Ok(CommandOutcome::Pinned { key })
            }
            Command::Unpin { key } => {
                self.registry.unpin(&key)?;
                self.audit(
                    Event::new(at_us, Source::Control, "config_unpin")
                        .with("who", who)
                        .with("key", key.as_str()),
                );
                Ok(CommandOutcome::Unpinned { key })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventFilter;

    #[test]
    fn adaptive_get_set_version() {
        let a = Adaptive::new(7u64);
        let b = a.clone();
        assert_eq!(*a.get(), 7);
        assert_eq!(a.version(), 0);
        assert_eq!(b.set(9), 1);
        assert_eq!(*a.get(), 9);
        assert_eq!(a.version(), 1);
    }

    #[test]
    fn adaptive_borrow_survives_set() {
        let a = Adaptive::new(String::from("old"));
        let borrowed = a.get();
        a.set(String::from("new"));
        // The pre-set borrow still reads the retained old value; a fresh
        // read sees the new one.
        assert_eq!(borrowed, "old");
        assert_eq!(a.get(), "new");
    }

    #[test]
    fn adaptive_non_copy_values() {
        let a = Adaptive::new(vec![1, 2, 3]);
        a.set(vec![4]);
        assert_eq!(a.get().as_slice(), &[4]);
        assert_eq!(a.version(), 1);
    }

    #[test]
    fn registry_set_get_and_errors() {
        let reg = ConfigRegistry::new();
        reg.register_knob("a.u", Adaptive::new(5u64));
        reg.register_knob("a.f", Adaptive::new(0.5f64));
        assert_eq!(reg.get("a.u"), Ok(ConfigValue::U64(5)));
        let (old, v) = reg.set("a.u", ConfigValue::U64(6)).unwrap();
        assert_eq!(old, ConfigValue::U64(5));
        assert_eq!(v, 1);
        assert_eq!(reg.get("missing"), Err(ControlError::UnknownKey("missing".into())));
        assert_eq!(
            reg.set("a.u", ConfigValue::Str("nope".into())),
            Err(ControlError::TypeMismatch { key: "a.u".into(), expected: "u64", got: "str" })
        );
        // u64 knobs accept non-negative i64 (the common literal type).
        assert!(reg.set("a.u", ConfigValue::I64(3)).is_ok());
        assert_eq!(reg.get("a.u"), Ok(ConfigValue::U64(3)));
    }

    #[test]
    fn listing_is_key_sorted_and_reports_pins() {
        let reg = ConfigRegistry::new();
        reg.register_knob("z.last", Adaptive::new(1u64));
        reg.register_knob("a.first", Adaptive::new(true));
        reg.pin("z.last", "op").unwrap();
        let rows = reg.list();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].key, "a.first");
        assert_eq!(rows[0].pinned_by, None);
        assert_eq!(rows[1].key, "z.last");
        assert_eq!(rows[1].pinned_by.as_deref(), Some("op"));
    }

    #[test]
    fn pins_block_set_until_unpinned() {
        let reg = ConfigRegistry::new();
        reg.register_knob("k", Adaptive::new(1u64));
        reg.pin("k", "operator").unwrap();
        assert_eq!(
            reg.set("k", ConfigValue::U64(2)),
            Err(ControlError::Pinned { key: "k".into(), by: "operator".into() })
        );
        reg.unpin("k").unwrap();
        assert!(reg.set("k", ConfigValue::U64(2)).is_ok());
    }

    #[test]
    fn fn_knob_projects_a_field() {
        #[derive(Clone, Debug, PartialEq)]
        struct Policy {
            factor: f64,
            cap_us: u64,
        }
        let handle = Adaptive::new(Policy { factor: 2.0, cap_us: 100 });
        let knob = FnKnob::new(
            handle.clone(),
            "u64",
            |p: &Policy| ConfigValue::U64(p.cap_us),
            |p: &mut Policy, v: ConfigValue| {
                p.cap_us = v
                    .as_u64()
                    .ok_or(KnobError::TypeMismatch { expected: "u64", got: v.type_name() })?;
                Ok(())
            },
        );
        assert_eq!(knob.read(), ConfigValue::U64(100));
        assert_eq!(knob.write(ConfigValue::U64(250)).unwrap(), ConfigValue::U64(100));
        assert_eq!(handle.get(), &Policy { factor: 2.0, cap_us: 250 });
        assert_eq!(handle.version(), 1);
    }

    #[test]
    fn router_audits_sets_rejects_pins_and_resets() {
        let obs = Obs::new();
        let reg = ConfigRegistry::new();
        reg.register_knob("breaker.recovery_us", Adaptive::new(500_000u64));
        let router = CommandRouter::new(reg).with_obs(&obs);
        let signal = ResetSignal::new();
        router.register_reset("client.breaker", signal.clone());

        router.dispatch(10, "user", Command::set("breaker.recovery_us", 250_000u64)).unwrap();
        router
            .dispatch(20, "op", Command::PinConfig { key: "breaker.recovery_us".into() })
            .unwrap();
        let err = router
            .dispatch(30, "user", Command::set("breaker.recovery_us", 100_000u64))
            .unwrap_err();
        assert_eq!(err.reason(), "pinned");
        router.dispatch(40, "op", Command::Unpin { key: "breaker.recovery_us".into() }).unwrap();
        router.dispatch(50, "op", Command::ResetBreaker { key: "client.breaker".into() }).unwrap();
        assert_eq!(signal.pending(), 1);

        let audit = obs.events_filtered(&EventFilter::control_audit());
        let kinds: Vec<&str> = audit.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec!["config_set", "config_pin", "config_reject", "config_unpin", "breaker_reset"]
        );
        let set = &audit[0];
        assert_eq!(set.at_us, 10);
        assert_eq!(set.str_field("who"), Some("user"));
        assert_eq!(set.str_field("key"), Some("breaker.recovery_us"));
        assert_eq!(set.str_field("old"), Some("500000"));
        assert_eq!(set.str_field("new"), Some("250000"));
        assert_eq!(set.u64_field("version"), Some(1));
        assert_eq!(audit[2].str_field("reason"), Some("pinned"));
    }

    #[test]
    fn gets_and_listings_do_not_audit() {
        let obs = Obs::new();
        let reg = ConfigRegistry::new();
        reg.register_knob("k", Adaptive::new(1u64));
        let router = CommandRouter::new(reg).with_obs(&obs);
        let got = router.dispatch(0, "user", Command::Get { key: "k".into() }).unwrap();
        assert_eq!(got, CommandOutcome::Value { key: "k".into(), value: ConfigValue::U64(1) });
        let CommandOutcome::Listing(rows) =
            router.dispatch(0, "user", Command::ListConfig).unwrap()
        else {
            panic!("ListConfig returns a listing");
        };
        assert_eq!(rows.len(), 1);
        assert_eq!(obs.events_published(), 0);
    }

    #[test]
    fn unknown_key_set_is_rejected_and_audited() {
        let obs = Obs::new();
        let router = CommandRouter::new(ConfigRegistry::new()).with_obs(&obs);
        let err = router.dispatch(5, "user", Command::set("nope", 1u64)).unwrap_err();
        assert_eq!(err, ControlError::UnknownKey("nope".into()));
        let audit = obs.events();
        assert_eq!(audit.len(), 1);
        assert_eq!(audit[0].kind, "config_reject");
        assert_eq!(audit[0].str_field("reason"), Some("unknown_key"));
    }

    #[test]
    fn reset_signal_take_is_edge_triggered() {
        let s = ResetSignal::new();
        let mut seen = 0;
        assert!(!s.take(&mut seen));
        s.request();
        s.request();
        assert!(s.take(&mut seen));
        assert!(!s.take(&mut seen), "cursor advanced past both requests");
        s.request();
        assert!(s.take(&mut seen));
    }

    #[test]
    fn concurrent_get_under_racing_set_is_old_or_new() {
        // Threaded smoke for the tear-freedom claim: a wide value whose
        // two halves must always agree.
        let cell = Adaptive::new((0u64, 0u64));
        let writer = cell.clone();
        let stop = Arc::new(AtomicU64::new(0));
        let stop_r = stop.clone();
        let reader = std::thread::spawn(move || {
            let mut reads = 0u64;
            while stop_r.load(Ordering::Acquire) == 0 {
                let (a, b) = *cell.get();
                assert_eq!(a, b, "torn read: halves diverged");
                reads += 1;
            }
            reads
        });
        for i in 1..=10_000u64 {
            writer.set((i, i));
        }
        stop.store(1, Ordering::Release);
        let reads = reader.join().unwrap();
        assert!(reads > 0);
        assert_eq!(writer.version(), 10_000);
    }
}
