//! Interned metrics registry: counters, gauges, log-bucketed histograms.
//!
//! Registration interns the name once and hands back a dense [`MetricId`];
//! all recording operations are plain array indexing on that id, so the
//! 10 ms monitor hot path never allocates.

use std::collections::HashMap;

/// Dense handle to a registered metric. Obtain via `Obs::counter` /
/// `Obs::gauge` / `Obs::histogram`; recording with an id from a different
/// `Obs` instance silently hits whatever metric occupies that slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MetricId(pub(crate) u32);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn name(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

pub(crate) enum Data {
    Counter(u64),
    Gauge(f64),
    Histogram(Box<Hist>),
}

impl Data {
    fn kind(&self) -> Kind {
        match self {
            Data::Counter(_) => Kind::Counter,
            Data::Gauge(_) => Kind::Gauge,
            Data::Histogram(_) => Kind::Histogram,
        }
    }
}

pub(crate) struct Metric {
    pub(crate) name: String,
    pub(crate) data: Data,
}

/// Name-interning store behind `Obs`. Not public API; use the `Obs` methods.
#[derive(Default)]
pub(crate) struct Registry {
    metrics: Vec<Metric>,
    names: HashMap<String, u32>,
}

impl Registry {
    pub(crate) fn register(&mut self, name: &str, kind: Kind) -> MetricId {
        if let Some(&ix) = self.names.get(name) {
            let have = self.metrics[ix as usize].data.kind();
            assert!(
                have == kind,
                "metric `{name}` already registered as {}, requested {}",
                have.name(),
                kind.name()
            );
            return MetricId(ix);
        }
        let ix = self.metrics.len() as u32;
        let data = match kind {
            Kind::Counter => Data::Counter(0),
            Kind::Gauge => Data::Gauge(0.0),
            Kind::Histogram => Data::Histogram(Box::default()),
        };
        self.metrics.push(Metric { name: name.to_string(), data });
        self.names.insert(name.to_string(), ix);
        MetricId(ix)
    }

    pub(crate) fn lookup(&self, name: &str) -> Option<MetricId> {
        self.names.get(name).copied().map(MetricId)
    }

    pub(crate) fn len(&self) -> usize {
        self.metrics.len()
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = &Metric> {
        self.metrics.iter()
    }

    #[inline]
    pub(crate) fn inc(&mut self, id: MetricId, n: u64) {
        if let Some(Metric { data: Data::Counter(c), .. }) = self.metrics.get_mut(id.0 as usize) {
            *c += n;
        }
    }

    #[inline]
    pub(crate) fn set(&mut self, id: MetricId, v: f64) {
        if let Some(Metric { data: Data::Gauge(g), .. }) = self.metrics.get_mut(id.0 as usize) {
            *g = v;
        }
    }

    #[inline]
    pub(crate) fn observe(&mut self, id: MetricId, v_us: f64) {
        if let Some(Metric { data: Data::Histogram(h), .. }) = self.metrics.get_mut(id.0 as usize) {
            h.observe(v_us);
        }
    }

    pub(crate) fn counter_value(&self, id: MetricId) -> u64 {
        match self.metrics.get(id.0 as usize) {
            Some(Metric { data: Data::Counter(c), .. }) => *c,
            _ => 0,
        }
    }

    pub(crate) fn gauge_value(&self, id: MetricId) -> f64 {
        match self.metrics.get(id.0 as usize) {
            Some(Metric { data: Data::Gauge(g), .. }) => *g,
            _ => 0.0,
        }
    }

    /// Name of a registered metric (`None` for an id from another `Obs`).
    pub(crate) fn name(&self, id: MetricId) -> Option<&str> {
        self.metrics.get(id.0 as usize).map(|m| m.name.as_str())
    }

    pub(crate) fn histogram_stats(&self, id: MetricId) -> HistStats {
        match self.metrics.get(id.0 as usize) {
            Some(Metric { data: Data::Histogram(h), .. }) => h.stats(),
            _ => HistStats::default(),
        }
    }
}

const BUCKETS: usize = 64;

/// Fixed-bucket histogram: one bucket per power of two of nanoseconds.
/// Values are recorded in microseconds; a value of `v` µs lands in bucket
/// `bit_length(v * 1000)`. Exact count/sum/min/max ride along so percentile
/// estimates can be clamped to the observed range.
pub(crate) struct Hist {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Hist {
    #[inline]
    pub(crate) fn observe(&mut self, v_us: f64) {
        let ns = if v_us <= 0.0 { 0 } else { (v_us * 1000.0).min(u64::MAX as f64) as u64 };
        let ix = (64 - ns.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[ix] += 1;
        self.count += 1;
        self.sum += v_us;
        self.min = self.min.min(v_us);
        self.max = self.max.max(v_us);
    }

    fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (ix, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                // Upper bound of the bucket, converted back to microseconds,
                // clamped to the exact observed range.
                let upper_ns =
                    if ix >= 63 { u64::MAX } else { (1u64 << ix).saturating_sub(1).max(1) };
                return (upper_ns as f64 / 1000.0).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Per-bucket observation counts (not cumulative), lowest bound first.
    pub(crate) fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }

    pub(crate) fn stats(&self) -> HistStats {
        if self.count == 0 {
            return HistStats::default();
        }
        HistStats {
            count: self.count,
            sum: self.sum,
            min: self.min,
            max: self.max,
            p50: self.percentile(0.50),
            p95: self.percentile(0.95),
            p99: self.percentile(0.99),
        }
    }
}

/// Summary of a histogram at read time. All values in microseconds except
/// `count`. Percentiles are bucket upper bounds (≤ 2x error) clamped to the
/// observed `[min, max]`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistStats {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    pub p50: f64,
    pub p95: f64,
    pub p99: f64,
}

impl HistStats {
    /// Mean observation in microseconds (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_hist_is_zeroed() {
        let h = Hist::default();
        assert_eq!(h.stats(), HistStats::default());
        assert_eq!(h.stats().mean(), 0.0);
    }

    #[test]
    fn single_observation_is_exact() {
        let mut h = Hist::default();
        h.observe(42.0);
        let s = h.stats();
        assert_eq!(s.count, 1);
        assert_eq!(s.min, 42.0);
        assert_eq!(s.max, 42.0);
        // Clamped to the observed range, so all percentiles are exact here.
        assert_eq!(s.p50, 42.0);
        assert_eq!(s.p99, 42.0);
    }

    #[test]
    fn percentiles_are_ordered_and_bounded() {
        let mut h = Hist::default();
        for i in 1..=1000u32 {
            h.observe(i as f64);
        }
        let s = h.stats();
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99);
        assert!(s.p50 >= s.min && s.p99 <= s.max);
        // p50 of 1..=1000 µs should land within a factor of two of 500 µs.
        assert!(s.p50 >= 250.0 && s.p50 <= 1000.0, "p50 = {}", s.p50);
    }

    #[test]
    fn zero_and_negative_observations_are_safe() {
        let mut h = Hist::default();
        h.observe(0.0);
        h.observe(-5.0);
        let s = h.stats();
        assert_eq!(s.count, 2);
        assert_eq!(s.min, -5.0);
    }
}
