//! Structured, sim-timestamped events.

/// Which layer of the stack published an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Source {
    /// The discrete-event simulation kernel (compute, messages, faults).
    Simnet,
    /// The monitoring agent (triggers, estimates).
    Monitor,
    /// The resource scheduler (decisions, dead ends).
    Scheduler,
    /// The steering agent (switches, NAKs, degradation).
    Steering,
    /// The application itself (rounds, images, configuration history).
    App,
    /// The load-generation harness (session arrivals, completions,
    /// aggregate throughput — see `visapp::load`).
    Load,
    /// The cluster arbiter (admission, policing, overload shedding —
    /// see the `arbiter` crate).
    Arbiter,
    /// The live control plane (config mutations, pins, breaker resets —
    /// see [`crate::control`]).
    Control,
    /// The online model-refinement engine (residual drift alarms, slice
    /// re-profiles, database hot-swaps — see `adapt_core::refine`).
    Refine,
}

impl Source {
    /// Stable lowercase name used by the renderer and exporter.
    pub fn name(self) -> &'static str {
        match self {
            Source::Simnet => "simnet",
            Source::Monitor => "monitor",
            Source::Scheduler => "scheduler",
            Source::Steering => "steering",
            Source::App => "app",
            Source::Load => "load",
            Source::Arbiter => "arbiter",
            Source::Control => "control",
            Source::Refine => "refine",
        }
    }
}

/// A typed field value attached to an [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Bool(bool),
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// One structured telemetry event.
///
/// Timestamps are simulation microseconds (`SimTime::as_us`), not wall
/// clock, so event streams from deterministic runs compare byte-for-byte.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Simulation time in microseconds.
    pub at_us: u64,
    /// Publishing layer.
    pub source: Source,
    /// Stable machine-readable kind, e.g. `"msg_dropped"` or `"switch"`.
    pub kind: &'static str,
    /// Ordered key/value payload.
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// Start building an event with no fields.
    pub fn new(at_us: u64, source: Source, kind: &'static str) -> Self {
        Event { at_us, source, kind, fields: Vec::new() }
    }

    /// Attach a field (builder-style).
    pub fn with(mut self, key: &'static str, value: impl Into<Value>) -> Self {
        self.fields.push((key, value.into()));
        self
    }

    fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Field as `u64` (also accepts non-negative `I64`).
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        match self.field(key)? {
            Value::U64(v) => Some(*v),
            Value::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// Field as `i64`.
    pub fn i64_field(&self, key: &str) -> Option<i64> {
        match self.field(key)? {
            Value::I64(v) => Some(*v),
            Value::U64(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// Field as `f64` (integers coerce).
    pub fn f64_field(&self, key: &str) -> Option<f64> {
        match self.field(key)? {
            Value::F64(v) => Some(*v),
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Field as string slice.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        match self.field(key)? {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Field as bool.
    pub fn bool_field(&self, key: &str) -> Option<bool> {
        match self.field(key)? {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Predicate over events for subscriptions and snapshots.
///
/// An empty filter ([`EventFilter::any`]) matches everything; adding
/// sources or kinds restricts to those sets (OR within a set, AND across
/// the two sets).
#[derive(Debug, Clone, Default)]
pub struct EventFilter {
    sources: Option<Vec<Source>>,
    kinds: Option<Vec<&'static str>>,
}

impl EventFilter {
    /// Match every event.
    pub fn any() -> Self {
        Self::default()
    }

    /// Also accept events from `source` (restricts to listed sources).
    pub fn source(mut self, source: Source) -> Self {
        self.sources.get_or_insert_with(Vec::new).push(source);
        self
    }

    /// Also accept events of `kind` (restricts to listed kinds).
    pub fn kind(mut self, kind: &'static str) -> Self {
        self.kinds.get_or_insert_with(Vec::new).push(kind);
        self
    }

    /// Preset: every adaptation-loop event — monitor triggers, scheduler
    /// decisions, steering transitions. The working set of the invariant
    /// oracles in `adapt-dst`.
    pub fn adaptation() -> Self {
        Self::any().source(Source::Monitor).source(Source::Scheduler).source(Source::Steering)
    }

    /// Preset: steering `degrade`/`recover` transitions, in bus order.
    /// The staleness-ordering oracle checks these strictly alternate,
    /// starting with `degrade`.
    pub fn degrade_recover() -> Self {
        Self::any().source(Source::Steering).kind("degrade").kind("recover")
    }

    /// Preset: scheduler `decide` events, whose `config`/`rank` fields the
    /// decision-validity oracle checks against the performance database.
    pub fn decisions() -> Self {
        Self::any().source(Source::Scheduler).kind("decide")
    }

    /// Preset: application integrity events — applied rounds, circuit
    /// breaker transitions, and dropped duplicate replies.
    pub fn app_integrity() -> Self {
        Self::any()
            .source(Source::App)
            .kind("round")
            .kind("breaker_open")
            .kind("breaker_close")
            .kind("dup_reply")
    }

    /// Preset: cluster-arbiter lifecycle events — admission outcomes,
    /// policing actions, and overload shed/recover transitions. The
    /// working set of the arbiter oracles in `adapt-dst`.
    pub fn arbiter_lifecycle() -> Self {
        Self::any().source(Source::Arbiter)
    }

    /// Preset: the control plane's audit trail — config mutations,
    /// rejections, pins, and breaker resets, in dispatch order. The
    /// working set of the `config_audit_complete` oracle in `adapt-dst`.
    pub fn control_audit() -> Self {
        Self::any().source(Source::Control)
    }

    /// Preset: the model-refinement audit trail — residual drift alarms
    /// and database slice hot-swaps, in detection order. The working set
    /// of the model-drift oracle in `adapt-dst`.
    pub fn refine_audit() -> Self {
        Self::any().source(Source::Refine)
    }

    /// Does `ev` pass this filter?
    pub fn matches(&self, ev: &Event) -> bool {
        if let Some(sources) = &self.sources {
            if !sources.contains(&ev.source) {
                return false;
            }
        }
        if let Some(kinds) = &self.kinds {
            if !kinds.contains(&ev.kind) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_accessors_round_trip() {
        let ev = Event::new(5, Source::App, "image")
            .with("n", 3u64)
            .with("key", "dr128")
            .with("ok", true)
            .with("ratio", 0.5)
            .with("delta", -2i64);
        assert_eq!(ev.u64_field("n"), Some(3));
        assert_eq!(ev.str_field("key"), Some("dr128"));
        assert_eq!(ev.bool_field("ok"), Some(true));
        assert_eq!(ev.f64_field("ratio"), Some(0.5));
        assert_eq!(ev.i64_field("delta"), Some(-2));
        assert_eq!(ev.u64_field("missing"), None);
        assert_eq!(ev.str_field("n"), None);
    }

    #[test]
    fn filter_semantics() {
        let ev = Event::new(0, Source::Monitor, "trigger");
        assert!(EventFilter::any().matches(&ev));
        assert!(EventFilter::any().source(Source::Monitor).matches(&ev));
        assert!(!EventFilter::any().source(Source::App).matches(&ev));
        assert!(EventFilter::any().source(Source::App).source(Source::Monitor).matches(&ev));
        assert!(EventFilter::any().kind("trigger").matches(&ev));
        assert!(!EventFilter::any().kind("decide").matches(&ev));
        assert!(!EventFilter::any().source(Source::Monitor).kind("decide").matches(&ev));
    }
}
