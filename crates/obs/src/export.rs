//! Deterministic JSON export and human-readable rendering.

use crate::bus::EventBus;
use crate::event::{Event, Value};
use crate::metrics::{Data, Registry};
use std::fmt::Write as _;
use std::sync::Arc;

/// Format a float as a JSON number; non-finite values become `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Serialize every metric (in registration order) plus bus totals as
/// pretty-printed JSON. The output is deterministic for deterministic
/// inputs, which is what the golden-file test locks down.
pub(crate) fn export_json(registry: &Registry, bus: &EventBus) -> String {
    let mut counters = Vec::new();
    let mut gauges = Vec::new();
    let mut hists = Vec::new();
    for m in registry.iter() {
        match &m.data {
            Data::Counter(c) => counters.push(format!("    {}: {c}", json_str(&m.name))),
            Data::Gauge(g) => gauges.push(format!("    {}: {}", json_str(&m.name), json_f64(*g))),
            Data::Histogram(h) => {
                let s = h.stats();
                hists.push(format!(
                    "    {}: {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                     \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                    json_str(&m.name),
                    s.count,
                    json_f64(s.sum),
                    json_f64(s.min),
                    json_f64(s.max),
                    json_f64(s.p50),
                    json_f64(s.p95),
                    json_f64(s.p99),
                ));
            }
        }
    }
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"counters\": {{\n{}\n  }},", counters.join(",\n"));
    let _ = writeln!(out, "  \"gauges\": {{\n{}\n  }},", gauges.join(",\n"));
    let _ = writeln!(out, "  \"histograms\": {{\n{}\n  }},", hists.join(",\n"));
    let _ = writeln!(
        out,
        "  \"events\": {{\"published\": {}, \"dropped\": {}}}",
        bus.published(),
        bus.dropped()
    );
    out.push('}');
    out
}

/// Render events one line per event, oldest first — the successor of the
/// old `simnet::Trace::render`.
pub(crate) fn render(events: &[Arc<Event>]) -> String {
    let mut out = String::new();
    for ev in events {
        let _ = write!(out, "{:>12}us [{}] {}", ev.at_us, ev.source.name(), ev.kind);
        for (k, v) in &ev.fields {
            match v {
                Value::I64(x) => {
                    let _ = write!(out, " {k}={x}");
                }
                Value::U64(x) => {
                    let _ = write!(out, " {k}={x}");
                }
                Value::F64(x) => {
                    let _ = write!(out, " {k}={x}");
                }
                Value::Str(x) => {
                    let _ = write!(out, " {k}={x}");
                }
                Value::Bool(x) => {
                    let _ = write!(out, " {k}={x}");
                }
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::event::Source;
    use crate::{Event, Obs};

    #[test]
    fn empty_export_is_valid_shape() {
        let obs = Obs::new();
        let json = obs.export_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"events\": {\"published\": 0, \"dropped\": 0}"));
    }

    #[test]
    fn non_finite_gauge_exports_null() {
        let obs = Obs::new();
        let g = obs.gauge("g");
        obs.set(g, f64::NAN);
        assert!(obs.export_json().contains("\"g\": null"));
    }

    #[test]
    fn render_is_line_per_event_with_fields() {
        let obs = Obs::new();
        obs.publish(Event::new(1, Source::Simnet, "msg_sent").with("bytes", 5u64));
        obs.publish(Event::new(2, Source::App, "image").with("key", "dr128"));
        let r = obs.render();
        assert_eq!(r.lines().count(), 2);
        assert!(r.contains("[simnet] msg_sent bytes=5"));
        assert!(r.contains("[app] image key=dr128"));
    }

    #[test]
    fn escaped_metric_names_survive() {
        let obs = Obs::new();
        let c = obs.counter("weird\"name");
        obs.inc(c, 1);
        assert!(obs.export_json().contains("\"weird\\\"name\": 1"));
    }
}
