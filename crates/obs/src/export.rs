//! Deterministic JSON export, Prometheus text exposition, OTLP-shaped
//! span JSON, and human-readable rendering.

use crate::bus::EventBus;
use crate::event::{Event, Value};
use crate::metrics::{Data, Registry};
use crate::span::SpanRecord;
use std::fmt::Write as _;
use std::sync::Arc;

/// Format a float as a JSON number; non-finite values become `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Serialize every metric (in registration order) plus bus totals as
/// pretty-printed JSON. The output is deterministic for deterministic
/// inputs, which is what the golden-file test locks down.
pub(crate) fn export_json(registry: &Registry, bus: &EventBus) -> String {
    let mut counters = Vec::new();
    let mut gauges = Vec::new();
    let mut hists = Vec::new();
    for m in registry.iter() {
        match &m.data {
            Data::Counter(c) => counters.push(format!("    {}: {c}", json_str(&m.name))),
            Data::Gauge(g) => gauges.push(format!("    {}: {}", json_str(&m.name), json_f64(*g))),
            Data::Histogram(h) => {
                let s = h.stats();
                hists.push(format!(
                    "    {}: {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                     \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                    json_str(&m.name),
                    s.count,
                    json_f64(s.sum),
                    json_f64(s.min),
                    json_f64(s.max),
                    json_f64(s.p50),
                    json_f64(s.p95),
                    json_f64(s.p99),
                ));
            }
        }
    }
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"counters\": {{\n{}\n  }},", counters.join(",\n"));
    let _ = writeln!(out, "  \"gauges\": {{\n{}\n  }},", gauges.join(",\n"));
    let _ = writeln!(out, "  \"histograms\": {{\n{}\n  }},", hists.join(",\n"));
    let _ = writeln!(
        out,
        "  \"events\": {{\"published\": {}, \"dropped\": {}}}",
        bus.published(),
        bus.dropped()
    );
    out.push('}');
    out
}

/// A metric name made legal for Prometheus: `[a-zA-Z0-9_:]` kept,
/// everything else (the registry's dots, mostly) becomes `_`, and a
/// leading digit gets a `_` prefix.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escape a HELP-line value per the text exposition format: `\` and
/// newline only.
fn prom_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Format a sample value: finite floats verbatim, otherwise Prometheus'
/// `NaN` / `+Inf` / `-Inf` spellings.
fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Render every metric in Prometheus text exposition format, in
/// registration order.
///
/// * counters → `# TYPE <n> counter` + one sample;
/// * gauges → `# TYPE <n> gauge` + one sample;
/// * histograms → `# TYPE <n> histogram` with **cumulative**
///   `<n>_bucket{le="..."}` series (upper bounds in microseconds, from
///   the registry's power-of-two-nanosecond buckets), `<n>_sum`,
///   `<n>_count`, plus a companion `<n>_quantiles` summary carrying the
///   clamped p50/p95/p99 estimates.
///
/// Each metric keeps a `# HELP` line naming its original dotted registry
/// key, so scrape-side relabeling can recover it.
pub(crate) fn render_prometheus(registry: &Registry) -> String {
    let mut out = String::new();
    for m in registry.iter() {
        let n = prom_name(&m.name);
        match &m.data {
            Data::Counter(c) => {
                let _ = writeln!(out, "# HELP {n} obs counter `{}`", prom_help(&m.name));
                let _ = writeln!(out, "# TYPE {n} counter");
                let _ = writeln!(out, "{n} {c}");
            }
            Data::Gauge(g) => {
                let _ = writeln!(out, "# HELP {n} obs gauge `{}`", prom_help(&m.name));
                let _ = writeln!(out, "# TYPE {n} gauge");
                let _ = writeln!(out, "{n} {}", prom_f64(*g));
            }
            Data::Histogram(h) => {
                let s = h.stats();
                let _ = writeln!(
                    out,
                    "# HELP {n} obs histogram `{}` (microseconds)",
                    prom_help(&m.name)
                );
                let _ = writeln!(out, "# TYPE {n} histogram");
                // Cumulative buckets up to the last occupied one; the
                // `+Inf` bucket always equals the total count.
                let counts = h.bucket_counts();
                let last = counts.iter().rposition(|&c| c > 0);
                let mut cum = 0u64;
                if let Some(last) = last {
                    for (ix, &c) in counts.iter().enumerate().take(last + 1) {
                        cum += c;
                        // Bucket `ix` holds values whose nanosecond
                        // magnitude has bit-length `ix`: upper bound
                        // 2^ix - 1 ns.
                        let le_us = if ix >= 63 {
                            f64::INFINITY
                        } else {
                            ((1u64 << ix) - 1) as f64 / 1000.0
                        };
                        let _ = writeln!(out, "{n}_bucket{{le=\"{}\"}} {cum}", prom_f64(le_us));
                    }
                }
                let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", s.count);
                let _ = writeln!(out, "{n}_sum {}", prom_f64(s.sum));
                let _ = writeln!(out, "{n}_count {}", s.count);
                // Companion summary: the clamped percentile estimates the
                // rest of the workspace already reasons with.
                let _ = writeln!(out, "# TYPE {n}_quantiles summary");
                for (q, v) in [("0.5", s.p50), ("0.95", s.p95), ("0.99", s.p99)] {
                    let _ = writeln!(out, "{n}_quantiles{{quantile=\"{q}\"}} {}", prom_f64(v));
                }
            }
        }
    }
    out
}

fn hex_span_id(id: u64) -> String {
    format!("{id:016x}")
}

/// Export trace spans as OTLP-shaped JSON: the `resourceSpans` →
/// `scopeSpans` → `spans` nesting of the OTLP/JSON trace payload, with
/// 32-hex trace ids, 16-hex span ids, and `parentSpanId` reflecting the
/// RAII nesting recorded by [`crate::SpanGuard`]. All spans of one `Obs`
/// share a single trace. Valid (empty `spans` array) when nothing was
/// retained.
pub(crate) fn export_otlp_spans(registry: &Registry, spans: &[SpanRecord]) -> String {
    let mut items = Vec::with_capacity(spans.len());
    for s in spans {
        let name = registry.name(s.metric).unwrap_or("unknown");
        items.push(format!(
            "        {{\n          \"traceId\": \"{trace}\",\n          \"spanId\": \"{span}\",\n          \
             \"parentSpanId\": \"{parent}\",\n          \"name\": {name},\n          \
             \"kind\": \"SPAN_KIND_INTERNAL\",\n          \"startTimeUnixNano\": \"{start}\",\n          \
             \"endTimeUnixNano\": \"{end}\"\n        }}",
            trace = format_args!("{:032x}", 1),
            span = hex_span_id(s.span_id),
            parent = s.parent_id.map(hex_span_id).unwrap_or_default(),
            name = json_str(name),
            start = s.start_ns,
            end = s.end_ns,
        ));
    }
    format!(
        "{{\n  \"resourceSpans\": [{{\n    \"resource\": {{\"attributes\": [{{\"key\": \"service.name\", \
         \"value\": {{\"stringValue\": \"obs\"}}}}]}},\n    \"scopeSpans\": [{{\n      \
         \"scope\": {{\"name\": \"obs\"}},\n      \"spans\": [\n{}\n      ]\n    }}]\n  }}]\n}}",
        items.join(",\n")
    )
}

/// Render events one line per event, oldest first — the successor of the
/// old `simnet::Trace::render`.
pub(crate) fn render(events: &[Arc<Event>]) -> String {
    let mut out = String::new();
    for ev in events {
        let _ = write!(out, "{:>12}us [{}] {}", ev.at_us, ev.source.name(), ev.kind);
        for (k, v) in &ev.fields {
            match v {
                Value::I64(x) => {
                    let _ = write!(out, " {k}={x}");
                }
                Value::U64(x) => {
                    let _ = write!(out, " {k}={x}");
                }
                Value::F64(x) => {
                    let _ = write!(out, " {k}={x}");
                }
                Value::Str(x) => {
                    let _ = write!(out, " {k}={x}");
                }
                Value::Bool(x) => {
                    let _ = write!(out, " {k}={x}");
                }
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::event::Source;
    use crate::{Event, Obs};

    #[test]
    fn empty_export_is_valid_shape() {
        let obs = Obs::new();
        let json = obs.export_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"events\": {\"published\": 0, \"dropped\": 0}"));
    }

    #[test]
    fn non_finite_gauge_exports_null() {
        let obs = Obs::new();
        let g = obs.gauge("g");
        obs.set(g, f64::NAN);
        assert!(obs.export_json().contains("\"g\": null"));
    }

    #[test]
    fn render_is_line_per_event_with_fields() {
        let obs = Obs::new();
        obs.publish(Event::new(1, Source::Simnet, "msg_sent").with("bytes", 5u64));
        obs.publish(Event::new(2, Source::App, "image").with("key", "dr128"));
        let r = obs.render();
        assert_eq!(r.lines().count(), 2);
        assert!(r.contains("[simnet] msg_sent bytes=5"));
        assert!(r.contains("[app] image key=dr128"));
    }

    #[test]
    fn escaped_metric_names_survive() {
        let obs = Obs::new();
        let c = obs.counter("weird\"name");
        obs.inc(c, 1);
        assert!(obs.export_json().contains("\"weird\\\"name\": 1"));
    }
}
