//! Unified observability layer: one metrics/event API for the whole
//! framework.
//!
//! The paper's monitoring agent, steering agent, and resource scheduler all
//! reason over *measurements*, so every crate in this workspace funnels its
//! telemetry through a single [`Obs`] handle instead of keeping a private
//! event vector:
//!
//! * a [`MetricsRegistry`](metrics) of counters, gauges, and fixed-bucket
//!   histograms keyed by interned [`MetricId`]s, so recording on the 10 ms
//!   monitor hot path is allocation-free;
//! * a structured [`Event`] type (sim-timestamped, tagged with a [`Source`])
//!   flowing through a ring-buffered [`EventBus`](bus) with filtered
//!   subscriptions;
//! * span-style profiling hooks ([`Obs::span`]) that time a scope on the
//!   wall clock and fold the elapsed microseconds into a histogram;
//! * a deterministic JSON exporter ([`Obs::export_json`]) and a
//!   human-readable [`Obs::render`] that subsumes the old `Trace::render`.
//!
//! The handle is cheaply cloneable (an `Arc`) and thread-safe; a simulation,
//! its client, and its adaptive runtime all share one instance.
//!
//! ```
//! use obs::{Event, EventFilter, Obs, Source};
//!
//! let obs = Obs::new();
//! let ticks = obs.counter("monitor.ticks");
//! obs.inc(ticks, 1);
//!
//! let lat = obs.histogram("scheduler.choose");
//! {
//!     let _span = obs.span(lat);
//!     // ... timed work ...
//! }
//!
//! obs.publish(Event::new(10_000, Source::Monitor, "trigger").with("estimate", 0.25));
//! let triggers = obs.events_filtered(&EventFilter::any().source(Source::Monitor));
//! assert_eq!(triggers.len(), 1);
//! assert!(obs.export_json().contains("\"monitor.ticks\": 1"));
//! ```

pub mod bus;
pub mod control;
pub mod event;
pub mod export;
pub mod metrics;
pub mod span;

pub use bus::{EventBus, Subscription};
pub use control::{
    Adaptive, Command, CommandOutcome, CommandRouter, ConfigEntry, ConfigRegistry, ConfigValue,
    ControlError, FnKnob, Knob, KnobError, ResetSignal,
};
pub use event::{Event, EventFilter, Source, Value};
pub use metrics::{HistStats, MetricId};
pub use span::SpanGuard;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Shared observability handle: a metrics registry plus an event bus.
///
/// Clones share the same underlying state. All methods take `&self`; the
/// handle is `Send + Sync` so profiling spans work across threads.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Arc<Inner>,
}

struct Inner {
    metrics: Mutex<metrics::Registry>,
    bus: Mutex<EventBus>,
    /// Completed trace spans, retained only while `span_export` is on.
    spans: Mutex<Vec<span::SpanRecord>>,
    /// The `obs.export.spans` knob: off by default so span tracing costs
    /// one atomic load per span until explicitly enabled.
    span_export: Adaptive<bool>,
    next_span_id: AtomicU64,
    /// Wall-clock zero for span timestamps.
    epoch: Instant,
}

impl Default for Inner {
    fn default() -> Self {
        Inner {
            metrics: Mutex::default(),
            bus: Mutex::default(),
            spans: Mutex::default(),
            span_export: Adaptive::new(false),
            next_span_id: AtomicU64::new(1),
            epoch: Instant::now(),
        }
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let m = self.metrics();
        let b = self.bus();
        f.debug_struct("Obs")
            .field("metrics", &m.len())
            .field("events_published", &b.published())
            .finish()
    }
}

impl Obs {
    /// Create a fresh, empty observability context.
    pub fn new() -> Self {
        Self::default()
    }

    fn metrics(&self) -> MutexGuard<'_, metrics::Registry> {
        self.inner.metrics.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn bus(&self) -> MutexGuard<'_, EventBus> {
        self.inner.bus.lock().unwrap_or_else(|e| e.into_inner())
    }

    // ---- metric registration (allocates; do once, outside hot paths) ----

    /// Register (or look up) a monotonic counter. Idempotent per name.
    pub fn counter(&self, name: &str) -> MetricId {
        self.metrics().register(name, metrics::Kind::Counter)
    }

    /// Register (or look up) a last-value gauge. Idempotent per name.
    pub fn gauge(&self, name: &str) -> MetricId {
        self.metrics().register(name, metrics::Kind::Gauge)
    }

    /// Register (or look up) a log-bucketed histogram of microsecond values.
    /// Idempotent per name.
    pub fn histogram(&self, name: &str) -> MetricId {
        self.metrics().register(name, metrics::Kind::Histogram)
    }

    /// Look up a previously registered metric by name.
    pub fn lookup(&self, name: &str) -> Option<MetricId> {
        self.metrics().lookup(name)
    }

    // ---- hot-path recording (allocation-free) ----

    /// Add `n` to a counter. Allocation-free.
    pub fn inc(&self, id: MetricId, n: u64) {
        self.metrics().inc(id, n);
    }

    /// Set a gauge to `v`. Allocation-free.
    pub fn set(&self, id: MetricId, v: f64) {
        self.metrics().set(id, v);
    }

    /// Record one observation (in microseconds) into a histogram.
    /// Allocation-free.
    pub fn observe(&self, id: MetricId, v_us: f64) {
        self.metrics().observe(id, v_us);
    }

    /// Time a scope on the wall clock; the guard records elapsed
    /// microseconds into histogram `id` on drop. Allocation-free given a
    /// pre-registered id.
    pub fn span(&self, id: MetricId) -> SpanGuard<'_> {
        SpanGuard::new(self, id)
    }

    /// Convenience: [`Obs::span`] with interning. Registers the histogram on
    /// first use (allocates then); subsequent calls only pay a map lookup.
    pub fn span_named(&self, name: &str) -> SpanGuard<'_> {
        let id = self.histogram(name);
        SpanGuard::new(self, id)
    }

    // ---- metric reads ----

    /// Current value of a counter (0 if `id` is not a counter).
    pub fn counter_value(&self, id: MetricId) -> u64 {
        self.metrics().counter_value(id)
    }

    /// Current value of a gauge (0.0 if `id` is not a gauge).
    pub fn gauge_value(&self, id: MetricId) -> f64 {
        self.metrics().gauge_value(id)
    }

    /// Summary statistics for a histogram (zeroed if `id` is not one).
    pub fn histogram_stats(&self, id: MetricId) -> HistStats {
        self.metrics().histogram_stats(id)
    }

    // ---- event bus ----

    /// Publish an event to the ring buffer and any matching subscribers.
    pub fn publish(&self, ev: Event) {
        self.bus().publish(ev);
    }

    /// Open a subscription; events matching `filter` queue until drained.
    pub fn subscribe(&self, filter: EventFilter) -> Subscription {
        self.bus().subscribe(filter)
    }

    /// Take every event queued on `sub` since the last drain.
    pub fn drain(&self, sub: &Subscription) -> Vec<Arc<Event>> {
        self.bus().drain(sub)
    }

    /// Close a subscription; its queue is discarded.
    pub fn unsubscribe(&self, sub: Subscription) {
        self.bus().unsubscribe(sub);
    }

    /// Snapshot of the retained event ring, oldest first.
    pub fn events(&self) -> Vec<Arc<Event>> {
        self.bus().snapshot()
    }

    /// Snapshot of retained events matching `filter`, oldest first.
    pub fn events_filtered(&self, filter: &EventFilter) -> Vec<Arc<Event>> {
        self.bus().snapshot_filtered(filter)
    }

    /// Total events ever published (including any evicted from the ring).
    pub fn events_published(&self) -> u64 {
        self.bus().published()
    }

    /// Events evicted from the ring because it was full.
    pub fn events_dropped(&self) -> u64 {
        self.bus().dropped()
    }

    // ---- span tracing (opt-in via the `obs.export.spans` knob) ----

    /// Is span-trace retention currently on?
    pub fn span_export_enabled(&self) -> bool {
        self.inner.span_export.load()
    }

    /// Turn span-trace retention on or off. Spans opened while off leave
    /// no trace record (their histogram timing is unaffected).
    pub fn set_span_export(&self, on: bool) {
        self.inner.span_export.set(on);
    }

    /// Register this handle's export knobs on a control-plane registry:
    /// `obs.export.spans` (bool) toggles span-trace retention at run time.
    pub fn register_export_knobs(&self, registry: &ConfigRegistry) {
        registry.register_knob("obs.export.spans", self.inner.span_export.clone());
    }

    /// Number of trace spans retained so far.
    pub fn spans_recorded(&self) -> usize {
        self.spans().len()
    }

    /// Discard all retained trace spans.
    pub fn clear_spans(&self) {
        self.spans().clear();
    }

    fn spans(&self) -> MutexGuard<'_, Vec<span::SpanRecord>> {
        self.inner.spans.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub(crate) fn spans_snapshot(&self) -> Vec<span::SpanRecord> {
        self.spans().clone()
    }

    pub(crate) fn alloc_span_id(&self) -> u64 {
        self.inner.next_span_id.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn epoch_ns(&self) -> u64 {
        self.inner.epoch.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
    }

    pub(crate) fn record_span(&self, rec: span::SpanRecord) {
        self.spans().push(rec);
    }

    // ---- export ----

    /// Render retained events one line per event (for test debugging).
    pub fn render(&self) -> String {
        export::render(&self.events())
    }

    /// Export all metrics and bus totals as deterministic JSON
    /// (`BENCH_obs.json`-compatible).
    pub fn export_json(&self) -> String {
        export::export_json(&self.metrics(), &self.bus())
    }

    /// Render the metric registry in Prometheus text exposition format:
    /// counters and gauges as single samples, histograms as cumulative
    /// `_bucket`/`_sum`/`_count` series plus a `<name>_quantiles` summary
    /// with p50/p95/p99. Deterministic for deterministic inputs.
    pub fn export_prometheus(&self) -> String {
        export::render_prometheus(&self.metrics())
    }

    /// Export retained trace spans as OTLP-shaped JSON
    /// (`resourceSpans` → `scopeSpans` → `spans`, hex trace/span ids,
    /// `parentSpanId` from RAII nesting). Empty-but-valid when span
    /// export was never enabled.
    pub fn export_otlp_spans(&self) -> String {
        export::export_otlp_spans(&self.metrics(), &self.spans_snapshot())
    }
}

/// Common imports for obs users.
pub mod prelude {
    pub use crate::{
        Adaptive, Command, CommandRouter, ConfigRegistry, ConfigValue, Event, EventFilter,
        HistStats, MetricId, Obs, Source, Value,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_interned_and_monotonic() {
        let obs = Obs::new();
        let a = obs.counter("x");
        let b = obs.counter("x");
        assert_eq!(a, b);
        obs.inc(a, 2);
        obs.inc(b, 3);
        assert_eq!(obs.counter_value(a), 5);
        assert_eq!(obs.lookup("x"), Some(a));
        assert_eq!(obs.lookup("y"), None);
    }

    #[test]
    fn gauge_keeps_last_value() {
        let obs = Obs::new();
        let g = obs.gauge("g");
        obs.set(g, 1.0);
        obs.set(g, -2.5);
        assert_eq!(obs.gauge_value(g), -2.5);
    }

    #[test]
    fn histogram_percentiles_bracket_observations() {
        let obs = Obs::new();
        let h = obs.histogram("h");
        for v in [100.0, 200.0, 400.0, 800.0] {
            obs.observe(h, v);
        }
        let s = obs.histogram_stats(h);
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 100.0);
        assert_eq!(s.max, 800.0);
        assert!(s.p50 >= 100.0 && s.p50 <= 800.0);
        assert!(s.p99 >= s.p50);
    }

    #[test]
    fn span_records_into_histogram() {
        let obs = Obs::new();
        let h = obs.histogram("span.h");
        {
            let _g = obs.span(h);
        }
        {
            let _g = obs.span_named("span.h");
        }
        assert_eq!(obs.histogram_stats(h).count, 2);
    }

    #[test]
    fn clones_share_state() {
        let obs = Obs::new();
        let c = obs.counter("shared");
        let other = obs.clone();
        other.inc(c, 7);
        assert_eq!(obs.counter_value(c), 7);
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn kind_mismatch_panics() {
        let obs = Obs::new();
        obs.counter("m");
        obs.gauge("m");
    }
}
