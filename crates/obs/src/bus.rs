//! Ring-buffered event bus with filtered subscriptions.

use crate::event::{Event, EventFilter};
use std::collections::VecDeque;
use std::sync::Arc;

/// Default number of events retained in the ring before the oldest are
/// evicted. Eviction only affects snapshots; subscriber queues are
/// independent and never drop matched events.
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

/// Handle to an open subscription on the bus.
#[derive(Debug)]
pub struct Subscription {
    pub(crate) id: u64,
}

struct SubState {
    id: u64,
    filter: EventFilter,
    queue: VecDeque<Arc<Event>>,
}

/// The bus itself. Not public API; use the `Obs` methods.
pub struct EventBus {
    ring: VecDeque<Arc<Event>>,
    capacity: usize,
    published: u64,
    dropped: u64,
    subs: Vec<SubState>,
    next_sub: u64,
}

impl Default for EventBus {
    fn default() -> Self {
        EventBus {
            ring: VecDeque::new(),
            capacity: DEFAULT_RING_CAPACITY,
            published: 0,
            dropped: 0,
            subs: Vec::new(),
            next_sub: 0,
        }
    }
}

impl EventBus {
    pub(crate) fn publish(&mut self, ev: Event) {
        let ev = Arc::new(ev);
        self.published += 1;
        for sub in &mut self.subs {
            if sub.filter.matches(&ev) {
                sub.queue.push_back(Arc::clone(&ev));
            }
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(ev);
    }

    pub(crate) fn subscribe(&mut self, filter: EventFilter) -> Subscription {
        let id = self.next_sub;
        self.next_sub += 1;
        self.subs.push(SubState { id, filter, queue: VecDeque::new() });
        Subscription { id }
    }

    pub(crate) fn drain(&mut self, sub: &Subscription) -> Vec<Arc<Event>> {
        match self.subs.iter_mut().find(|s| s.id == sub.id) {
            Some(s) => s.queue.drain(..).collect(),
            None => Vec::new(),
        }
    }

    pub(crate) fn unsubscribe(&mut self, sub: Subscription) {
        self.subs.retain(|s| s.id != sub.id);
    }

    pub(crate) fn snapshot(&self) -> Vec<Arc<Event>> {
        self.ring.iter().cloned().collect()
    }

    pub(crate) fn snapshot_filtered(&self, filter: &EventFilter) -> Vec<Arc<Event>> {
        self.ring.iter().filter(|e| filter.matches(e)).cloned().collect()
    }

    pub(crate) fn published(&self) -> u64 {
        self.published
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Source;

    fn ev(at: u64, source: Source, kind: &'static str) -> Event {
        Event::new(at, source, kind)
    }

    #[test]
    fn subscribers_see_only_matching_events_in_order() {
        let mut bus = EventBus::default();
        let sub = bus.subscribe(EventFilter::any().source(Source::Monitor));
        bus.publish(ev(1, Source::Monitor, "trigger"));
        bus.publish(ev(2, Source::App, "image"));
        bus.publish(ev(3, Source::Monitor, "trigger"));
        let got = bus.drain(&sub);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].at_us, 1);
        assert_eq!(got[1].at_us, 3);
        assert!(bus.drain(&sub).is_empty());
    }

    #[test]
    fn subscription_opened_late_misses_earlier_events() {
        let mut bus = EventBus::default();
        bus.publish(ev(1, Source::App, "image"));
        let sub = bus.subscribe(EventFilter::any());
        bus.publish(ev(2, Source::App, "image"));
        assert_eq!(bus.drain(&sub).len(), 1);
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut bus = EventBus { capacity: 2, ..EventBus::default() };
        bus.publish(ev(1, Source::App, "a"));
        bus.publish(ev(2, Source::App, "b"));
        bus.publish(ev(3, Source::App, "c"));
        let snap = bus.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].at_us, 2);
        assert_eq!(bus.published(), 3);
        assert_eq!(bus.dropped(), 1);
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let mut bus = EventBus::default();
        let sub = bus.subscribe(EventFilter::any());
        bus.publish(ev(1, Source::App, "a"));
        let sub_id = Subscription { id: sub.id };
        bus.unsubscribe(sub);
        bus.publish(ev(2, Source::App, "b"));
        assert!(bus.drain(&sub_id).is_empty());
    }
}
