//! Span-style profiling: time a scope, record microseconds on drop.
//!
//! Every span always folds its elapsed time into its histogram. When the
//! `obs.export.spans` knob is on, spans *additionally* record a
//! `SpanRecord` — id, parent id (from a thread-local scope stack), and
//! wall-clock start/end relative to the `Obs` epoch — which the
//! OTLP-shaped JSON exporter turns into a trace. When the knob is off
//! (the default), the only extra cost per span is one atomic load.

use crate::metrics::MetricId;
use crate::Obs;
use std::cell::RefCell;
use std::time::Instant;

/// One completed span, retained for trace export. Times are wall-clock
/// nanoseconds since the owning `Obs` was created.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SpanRecord {
    pub(crate) span_id: u64,
    pub(crate) parent_id: Option<u64>,
    pub(crate) metric: MetricId,
    pub(crate) start_ns: u64,
    pub(crate) end_ns: u64,
}

thread_local! {
    /// Open-span stack for the current thread: the top is the parent of
    /// the next span opened here. RAII scoping keeps it LIFO.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard returned by [`Obs::span`]. Measures wall-clock time from
/// construction to drop and records the elapsed microseconds into the
/// histogram it was opened against.
///
/// Wall-clock spans feed *profiling* metrics only; they never influence
/// simulation behaviour, so determinism of sim-derived data is unaffected.
#[must_use = "a span records its timing when dropped; binding it to `_` drops it immediately"]
pub struct SpanGuard<'a> {
    obs: &'a Obs,
    id: MetricId,
    start: Instant,
    /// `Some((span_id, parent_id, start_ns))` iff trace export was on at
    /// open time.
    trace: Option<(u64, Option<u64>, u64)>,
}

impl<'a> SpanGuard<'a> {
    pub(crate) fn new(obs: &'a Obs, id: MetricId) -> Self {
        let trace = if obs.span_export_enabled() {
            let span_id = obs.alloc_span_id();
            let parent_id = SPAN_STACK.with(|s| {
                let mut s = s.borrow_mut();
                let parent = s.last().copied();
                s.push(span_id);
                parent
            });
            Some((span_id, parent_id, obs.epoch_ns()))
        } else {
            None
        };
        SpanGuard { obs, id, start: Instant::now(), trace }
    }

    /// Elapsed time so far, in microseconds.
    pub fn elapsed_us(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e6
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let us = self.start.elapsed().as_secs_f64() * 1e6;
        self.obs.observe(self.id, us);
        if let Some((span_id, parent_id, start_ns)) = self.trace {
            SPAN_STACK.with(|s| {
                let mut s = s.borrow_mut();
                // RAII drops are LIFO so this is the top; tolerate
                // out-of-order drops anyway.
                if let Some(pos) = s.iter().rposition(|&id| id == span_id) {
                    s.remove(pos);
                }
            });
            self.obs.record_span(SpanRecord {
                span_id,
                parent_id,
                metric: self.id,
                start_ns,
                end_ns: self.obs.epoch_ns(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_record_independently() {
        let obs = Obs::new();
        let outer = obs.histogram("outer");
        let inner = obs.histogram("inner");
        {
            let _o = obs.span(outer);
            {
                let _i = obs.span(inner);
            }
            {
                let _i = obs.span(inner);
            }
        }
        assert_eq!(obs.histogram_stats(outer).count, 1);
        assert_eq!(obs.histogram_stats(inner).count, 2);
    }

    #[test]
    fn elapsed_is_monotone() {
        let obs = Obs::new();
        let h = obs.histogram("h");
        let span = obs.span(h);
        let a = span.elapsed_us();
        let b = span.elapsed_us();
        assert!(b >= a);
        assert!(a >= 0.0);
    }

    #[test]
    fn spans_are_not_retained_unless_export_is_enabled() {
        let obs = Obs::new();
        let h = obs.histogram("h");
        {
            let _g = obs.span(h);
        }
        assert_eq!(obs.spans_recorded(), 0, "off by default");
        obs.set_span_export(true);
        {
            let _g = obs.span(h);
        }
        assert_eq!(obs.spans_recorded(), 1);
        obs.set_span_export(false);
        {
            let _g = obs.span(h);
        }
        assert_eq!(obs.spans_recorded(), 1, "re-disabled");
    }

    #[test]
    fn parent_child_nesting_follows_scope_structure() {
        let obs = Obs::new();
        obs.set_span_export(true);
        let outer = obs.histogram("outer");
        let inner = obs.histogram("inner");
        {
            let _o = obs.span(outer);
            {
                let _i = obs.span(inner);
            }
            {
                let _i = obs.span(inner);
            }
        }
        // A root span after the tree must have no parent.
        {
            let _r = obs.span(outer);
        }
        let spans = obs.spans_snapshot();
        assert_eq!(spans.len(), 4);
        // Inner spans completed first; both point at the outer span.
        let outer_id = spans[2].span_id;
        assert_eq!(spans[0].parent_id, Some(outer_id));
        assert_eq!(spans[1].parent_id, Some(outer_id));
        assert_eq!(spans[2].parent_id, None);
        assert_eq!(spans[3].parent_id, None);
        for s in &spans {
            assert!(s.end_ns >= s.start_ns);
        }
    }
}
