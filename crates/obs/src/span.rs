//! Span-style profiling: time a scope, record microseconds on drop.

use crate::metrics::MetricId;
use crate::Obs;
use std::time::Instant;

/// RAII guard returned by [`Obs::span`]. Measures wall-clock time from
/// construction to drop and records the elapsed microseconds into the
/// histogram it was opened against.
///
/// Wall-clock spans feed *profiling* metrics only; they never influence
/// simulation behaviour, so determinism of sim-derived data is unaffected.
#[must_use = "a span records its timing when dropped; binding it to `_` drops it immediately"]
pub struct SpanGuard<'a> {
    obs: &'a Obs,
    id: MetricId,
    start: Instant,
}

impl<'a> SpanGuard<'a> {
    pub(crate) fn new(obs: &'a Obs, id: MetricId) -> Self {
        SpanGuard { obs, id, start: Instant::now() }
    }

    /// Elapsed time so far, in microseconds.
    pub fn elapsed_us(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e6
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let us = self.start.elapsed().as_secs_f64() * 1e6;
        self.obs.observe(self.id, us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_record_independently() {
        let obs = Obs::new();
        let outer = obs.histogram("outer");
        let inner = obs.histogram("inner");
        {
            let _o = obs.span(outer);
            {
                let _i = obs.span(inner);
            }
            {
                let _i = obs.span(inner);
            }
        }
        assert_eq!(obs.histogram_stats(outer).count, 1);
        assert_eq!(obs.histogram_stats(inner).count, 2);
    }

    #[test]
    fn elapsed_is_monotone() {
        let obs = Obs::new();
        let h = obs.histogram("h");
        let span = obs.span(h);
        let a = span.elapsed_us();
        let b = span.elapsed_us();
        assert!(b >= a);
        assert!(a >= 0.0);
    }
}
