//! Hot-path allocation audit: recording a metric against a pre-registered
//! id must not touch the heap. This binary installs a counting global
//! allocator, so it holds exactly one test.

use obs::Obs;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn recording_on_the_hot_path_never_allocates() {
    let obs = Obs::new();
    // Registration (allocates; done once at setup, off the hot path).
    let ticks = obs.counter("monitor.ticks");
    let estimate = obs.gauge("monitor.estimate");
    let predict = obs.histogram("perfdb.predict");

    // Warm up every code path once.
    obs.inc(ticks, 1);
    obs.set(estimate, 0.1);
    obs.observe(predict, 1.0);
    drop(obs.span(predict));

    // The counting allocator is process-global, so a test-harness thread
    // allocating concurrently (stdio buffers and the like) can leak a few
    // counts into a measurement window. A genuine hot-path allocation
    // repeats on every iteration (>= 10_000 counts); harness noise is a
    // handful once. Demand at least one perfectly clean window.
    let mut min_delta = u64::MAX;
    for _ in 0..5 {
        let before = ALLOCS.load(Ordering::SeqCst);
        for i in 0..10_000u64 {
            obs.inc(ticks, 1);
            obs.set(estimate, i as f64 * 0.001);
            obs.observe(predict, (i % 97) as f64);
            let _span = obs.span(predict);
        }
        min_delta = min_delta.min(ALLOCS.load(Ordering::SeqCst) - before);
        if min_delta == 0 {
            break;
        }
    }
    assert_eq!(
        min_delta, 0,
        "hot-path metric recording performed {min_delta} heap allocations in its cleanest window"
    );
}
