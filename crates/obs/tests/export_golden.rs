//! Golden-file tests for the Prometheus text renderer and the
//! OTLP-shaped span exporter.
//!
//! The Prometheus rendering of a fixed metric population is fully
//! deterministic, so it is compared byte-for-byte against
//! `tests/golden/prometheus.txt`. Span timestamps are wall-clock, so the
//! OTLP golden comparison normalizes every `*TimeUnixNano` value to `0`
//! first; ids, names, and parent/child nesting stay exact. Regenerate
//! either file with `OBS_BLESS=1 cargo test -p obs --test export_golden`.

use obs::Obs;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("OBS_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden file {} ({e}); run with OBS_BLESS=1", path.display())
    });
    assert_eq!(actual, expected, "{name} drifted from its golden file; re-bless if intended");
}

/// A fixed metric population exercising every branch of the renderer:
/// escaping, NaN, empty and multi-bucket histograms.
fn populated() -> Obs {
    let obs = Obs::new();
    let c = obs.counter("viz.requests");
    obs.inc(c, 3);
    let weird = obs.counter("weird\"name\\with.specials");
    obs.inc(weird, 1);
    let g = obs.gauge("net.bw_kbps");
    obs.set(g, 2.5);
    let nan = obs.gauge("sched.score");
    obs.set(nan, f64::NAN);
    let h = obs.histogram("lat.us");
    for v in [0.5, 1.0, 100.0, 100.0, 5_000.0] {
        obs.observe(h, v);
    }
    let _empty = obs.histogram("never.observed");
    obs
}

#[test]
fn prometheus_rendering_matches_golden() {
    let obs = populated();
    let text = obs.export_prometheus();
    check_golden("prometheus.txt", &text);
}

#[test]
fn prometheus_histogram_buckets_are_cumulative_and_capped_by_count() {
    let obs = populated();
    let text = obs.export_prometheus();
    // Every lat_us bucket sample must be non-decreasing and end at the
    // total count, with the +Inf bucket equal to _count.
    let mut prev = 0u64;
    let mut inf = None;
    let mut count = None;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("lat_us_bucket{le=\"") {
            let (le, val) = rest.split_once("\"} ").unwrap();
            let v: u64 = val.parse().unwrap();
            assert!(v >= prev, "bucket le={le} went backwards: {v} < {prev}");
            prev = v;
            if le == "+Inf" {
                inf = Some(v);
            }
        } else if let Some(v) = line.strip_prefix("lat_us_count ") {
            count = Some(v.parse::<u64>().unwrap());
        }
    }
    assert_eq!(count, Some(5));
    assert_eq!(inf, count, "+Inf bucket must equal the observation count");
}

#[test]
fn prometheus_summary_quantiles_are_ordered() {
    let obs = populated();
    let text = obs.export_prometheus();
    let q = |label: &str| -> f64 {
        text.lines()
            .find_map(|l| l.strip_prefix(&format!("lat_us_quantiles{{quantile=\"{label}\"}} ")))
            .unwrap_or_else(|| panic!("missing quantile {label}"))
            .parse()
            .unwrap()
    };
    let (p50, p95, p99) = (q("0.5"), q("0.95"), q("0.99"));
    assert!(p50 <= p95 && p95 <= p99, "p50={p50} p95={p95} p99={p99}");
    assert!((0.5..=5_000.0).contains(&p50), "clamped to observed range");
}

fn normalize_times(json: &str) -> String {
    json.lines()
        .map(|l| {
            if l.contains("TimeUnixNano") {
                let key_end = l.find(": \"").unwrap() + 3;
                let tail = if l.trim_end().ends_with(',') { "0\"," } else { "0\"" };
                format!("{}{}", &l[..key_end], tail)
            } else {
                l.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn otlp_span_export_matches_golden_with_nesting() {
    let obs = Obs::new();
    obs.set_span_export(true);
    let outer = obs.histogram("frame.render");
    let inner = obs.histogram("frame.compress");
    {
        let _o = obs.span(outer);
        {
            let _i = obs.span(inner);
        }
        {
            let _i = obs.span(inner);
        }
    }
    {
        let _root = obs.span(inner);
    }
    let json = obs.export_otlp_spans();
    check_golden("otlp_spans.json", &normalize_times(&json));

    // Structural nesting assertions independent of the golden bytes: the
    // two inner spans carry the outer span's id as parentSpanId; roots
    // have an empty parent.
    let parents: Vec<&str> = json
        .lines()
        .filter_map(|l| l.trim().strip_prefix("\"parentSpanId\": \""))
        .map(|r| r.trim_end_matches("\","))
        .map(|r| r.trim_end_matches('"'))
        .collect();
    let spans: Vec<&str> = json
        .lines()
        .filter_map(|l| l.trim().strip_prefix("\"spanId\": \""))
        .map(|r| r.trim_end_matches("\","))
        .collect();
    assert_eq!(spans.len(), 4);
    // Spans are recorded in completion order: inner, inner, outer, root.
    assert_eq!(parents[0], spans[2]);
    assert_eq!(parents[1], spans[2]);
    assert_eq!(parents[2], "");
    assert_eq!(parents[3], "");
}

#[test]
fn disabled_export_yields_empty_but_valid_payload() {
    let obs = Obs::new();
    let h = obs.histogram("h");
    {
        let _g = obs.span(h);
    }
    assert_eq!(obs.spans_recorded(), 0);
    let json = obs.export_otlp_spans();
    assert!(json.contains("\"spans\": ["), "shape intact when empty: {json}");
}
