//! Golden-file test: the JSON exporter's output is locked byte-for-byte.
//!
//! If the export format changes intentionally, regenerate the golden file
//! by running this test and copying the printed actual output into
//! `tests/golden/export.json`.

use obs::{Event, Obs, Source};

fn build_fixture() -> Obs {
    let obs = Obs::new();
    let reqs = obs.counter("server.requests");
    let dups = obs.counter("server.duplicates");
    let share = obs.gauge("sandbox.cpu_share");
    let nan = obs.gauge("gauge.nonfinite");
    let lat = obs.histogram("scheduler.choose");
    let empty = obs.histogram("perfdb.predict");
    let _ = empty;

    obs.inc(reqs, 41);
    obs.inc(reqs, 1);
    obs.inc(dups, 3);
    obs.set(share, 0.05);
    obs.set(share, 0.25);
    obs.set(nan, f64::INFINITY);
    for v in [10.0, 20.0, 40.0, 80.0, 160.0, 320.0, 640.0, 1280.0] {
        obs.observe(lat, v);
    }

    obs.publish(Event::new(1_000, Source::Monitor, "trigger").with("estimate", 0.5));
    obs.publish(Event::new(2_000, Source::Steering, "switch").with("old", "a").with("new", "b"));
    obs
}

#[test]
fn export_matches_golden_file() {
    let actual = build_fixture().export_json();
    let golden = include_str!("golden/export.json");
    assert_eq!(
        actual.trim_end(),
        golden.trim_end(),
        "exporter output drifted from the golden file;\nactual:\n{actual}\n"
    );
}

#[test]
fn export_is_stable_across_identical_runs() {
    assert_eq!(build_fixture().export_json(), build_fixture().export_json());
}
