//! Property test: subscription filtering never drops or reorders events
//! relative to the full published stream.
//!
//! Event sequences are generated from a seeded linear-congruential stream
//! so the property is expressible in the numeric-range proptest subset.

use obs::{Event, EventFilter, Obs, Source};

const SOURCES: [Source; 5] =
    [Source::Simnet, Source::Monitor, Source::Scheduler, Source::Steering, Source::App];
const KINDS: [&str; 4] = ["trigger", "decide", "switch", "image"];

/// Deterministic event stream derived from `seed`.
fn publish_stream(obs: &Obs, seed: u64, n: usize) -> Vec<Event> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut published = Vec::with_capacity(n);
    for i in 0..n {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let source = SOURCES[(state >> 33) as usize % SOURCES.len()];
        let kind = KINDS[(state >> 17) as usize % KINDS.len()];
        let ev = Event::new(i as u64, source, kind).with("n", i);
        obs.publish(ev.clone());
        published.push(ev);
    }
    published
}

proptest::proptest! {
    #[test]
    fn filtered_subscription_is_exact_subsequence(seed in 0u64..10_000) {
        let obs = Obs::new();
        let filter = EventFilter::any().source(Source::Monitor).source(Source::Steering)
            .kind("trigger").kind("switch");
        let sub = obs.subscribe(filter.clone());
        let published = publish_stream(&obs, seed, 200);

        // What the subscriber saw ...
        let seen: Vec<Event> = obs.drain(&sub).iter().map(|e| (**e).clone()).collect();
        // ... must equal filtering the full stream after the fact: nothing
        // dropped, nothing reordered, nothing invented.
        let expected: Vec<Event> =
            published.iter().filter(|e| filter.matches(e)).cloned().collect();
        proptest::prop_assert_eq!(seen, expected);

        // The retained ring holds the full stream in publish order.
        let ring: Vec<Event> = obs.events().iter().map(|e| (**e).clone()).collect();
        proptest::prop_assert_eq!(ring, published);
    }

    #[test]
    fn unfiltered_subscription_sees_everything(seed in 0u64..10_000) {
        let obs = Obs::new();
        let sub = obs.subscribe(EventFilter::any());
        let published = publish_stream(&obs, seed, 64);
        let seen: Vec<Event> = obs.drain(&sub).iter().map(|e| (**e).clone()).collect();
        proptest::prop_assert_eq!(seen, published);
    }
}
