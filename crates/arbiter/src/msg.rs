//! The arbiter control-plane wire protocol.
//!
//! Control traffic rides the same simulated network as application data:
//! every app host has an explicit (non-zero-latency) link to the arbiter
//! host, so a sharded drain partitions cleanly and control messages are
//! ordered by the kernel like any other traffic.
//!
//! Tags live far above the visapp protocol tags (1..=6) and the client's
//! timer tags, and far below the sandbox's reserved continuation range,
//! so a wrapper can route on the tag alone.

use sandbox::Limits;

use crate::app::AppId;

/// Base of the arbiter control tag range ("ARB\0").
pub const CTRL_BASE: u64 = 0x4152_4200;

// App -> arbiter.
/// Request admission (body: [`ReqBody`]).
pub const MSG_REQ: u64 = CTRL_BASE + 1;
/// Periodic usage report (body: [`UsageBody`]).
pub const MSG_USAGE: u64 = CTRL_BASE + 2;
/// The app finished its workload (body: [`ReqBody`]).
pub const MSG_DONE: u64 = CTRL_BASE + 3;

// Arbiter -> app.
/// Admission granted (body: [`GrantBody`]).
pub const MSG_ADMIT: u64 = CTRL_BASE + 16;
/// Admission refused; the app never starts.
pub const MSG_REJECT: u64 = CTRL_BASE + 17;
/// Policing strike: clamp to the envelope (body: [`ClampBody`]).
pub const MSG_THROTTLE: u64 = CTRL_BASE + 18;
/// Throttle dwell over: the wrapper restores the app's requested limits.
pub const MSG_RELAX: u64 = CTRL_BASE + 19;
/// Policing strike: tier demotion with a tighter envelope (body:
/// [`GrantBody`]).
pub const MSG_DEMOTE: u64 = CTRL_BASE + 20;
/// Policing strike three: the app is terminated.
pub const MSG_EVICT: u64 = CTRL_BASE + 21;
/// Overload shedding: suspend (bulk) or floor (session) the app (body:
/// [`ClampBody`]).
pub const MSG_SHED: u64 = CTRL_BASE + 22;
/// Recovery from shedding: resume under the given envelope (body:
/// [`GrantBody`]).
pub const MSG_RECOVER: u64 = CTRL_BASE + 23;
/// Overload degradation of a survivor: tighter envelope (body:
/// [`GrantBody`]).
pub const MSG_DEGRADE: u64 = CTRL_BASE + 24;
/// Overload fully cleared: restore the original envelope (body:
/// [`GrantBody`]).
pub const MSG_RESTORE: u64 = CTRL_BASE + 25;

/// Wrapper -> bulk worker wake-up after a pause (never crosses the
/// kernel; delivered straight through the sandbox).
pub const MSG_KICK: u64 = CTRL_BASE + 32;

/// Wire size charged for a control message.
pub const CTRL_BYTES: u64 = 64;

/// True when `tag` belongs to the arbiter control plane (and must not be
/// forwarded into the wrapped application).
pub fn is_ctrl(tag: u64) -> bool {
    (CTRL_BASE..CTRL_BASE + 64).contains(&tag)
}

/// Identifies the sending app (admission requests, completion notices).
#[derive(Debug, Clone, Copy)]
pub struct ReqBody {
    pub id: AppId,
}

/// One usage sample from an app's sandbox progress estimator.
#[derive(Debug, Clone, Copy)]
pub struct UsageBody {
    pub id: AppId,
    /// Measured CPU share over the report window; `None` until the
    /// estimator has samples.
    pub cpu: Option<f64>,
}

/// An envelope the wrapper should treat as the app's new contract: the
/// wrapper re-derives its *requested* limits from it (rogues ignore it
/// between clamps — that is what makes them rogues).
#[derive(Debug, Clone, Copy)]
pub struct GrantBody {
    pub limits: Limits,
}

/// A clamp the wrapper must apply verbatim, without changing what the
/// app's requested limits are (throttle dwell, shed floor).
#[derive(Debug, Clone, Copy)]
pub struct ClampBody {
    pub limits: Limits,
    /// Bulk workloads: park the worker instead of merely flooring it.
    pub pause: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctrl_range_excludes_app_tags() {
        assert!(is_ctrl(MSG_REQ));
        assert!(is_ctrl(MSG_KICK));
        assert!(!is_ctrl(visapp::protocol::TAG_REPLY));
        assert!(!is_ctrl(0));
        assert!(!is_ctrl(sandbox::TAG_BASE));
    }
}
