//! Admission pricing: typed decisions, priced against the shared
//! performance database.
//!
//! Every admission request is *priced*: the app's declared demand (or a
//! fair-share fraction of it) is treated as a resource availability
//! vector and handed to a [`ResourceScheduler`] over the cluster's shared
//! `Arc<PerfDb>`. The scheduler answers with the best configuration and
//! the preference rank it satisfies; the arbiter then applies a per-tier
//! rank requirement — a gold app whose QoS constraints are only
//! satisfiable at a fallback rank is **rejected**, not silently degraded.
//!
//! Tie-breaking is deterministic throughout: hosts by `(residual CPU
//! descending, index ascending)`, queue order by `(tier, weight
//! descending, arrival, id)`.

use std::collections::BTreeMap;
use std::sync::Arc;

use adapt_core::{PerfDb, ResourceScheduler, ResourceVector};
use sandbox::Reservation;
use visapp::{client_cpu_key, client_net_key, QosProfile, PROFILE_INPUT};

use crate::app::{AppId, AppSpec, Tier};

/// Fair-share fractions tried, in order, when the full demand does not
/// fit the cluster. Each fraction is re-priced: a scaled grant must still
/// satisfy the app's tier rank requirement to be offered.
pub const FAIR_SHARE_FRACTIONS: [f64; 3] = [1.0, 0.75, 0.5];

/// Why an app was turned away.
#[derive(Debug, Clone, PartialEq)]
pub enum RejectReason {
    /// No configuration satisfies the app's QoS preferences at the rank
    /// its tier requires, even at full demand.
    QosUnsatisfiable {
        /// Rank the tier demands (0 = most preferred).
        rank_required: usize,
    },
    /// The demand cannot fit any host even on an idle cluster at the
    /// smallest fair-share fraction.
    DemandExceedsCluster { demand_cpu: f64, host_capacity: f64 },
    /// The admission queue is at capacity.
    QueueFull { cap: usize },
}

impl RejectReason {
    pub fn name(&self) -> &'static str {
        match self {
            RejectReason::QosUnsatisfiable { .. } => "qos_unsatisfiable",
            RejectReason::DemandExceedsCluster { .. } => "demand_exceeds_cluster",
            RejectReason::QueueFull { .. } => "queue_full",
        }
    }
}

/// The arbiter's typed answer to one admission request.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionDecision {
    /// Admitted under an envelope.
    Admitted {
        app: AppId,
        /// Cluster host (ledger index) the reservation landed on.
        host: usize,
        /// The admitted envelope: what the sandbox will enforce and what
        /// policing compares usage against.
        grant: Reservation,
        /// Fair-share fraction of the declared demand that was granted.
        fraction: f64,
        /// Key of the configuration the pricing run selected.
        config_key: String,
        /// Preference rank the priced configuration satisfies.
        rank: usize,
        /// Queue latency (us) between first request and admission.
        latency_us: u64,
    },
    /// Parked in the admission queue (no capacity right now).
    Queued { app: AppId, position: usize },
    /// Turned away.
    Rejected { app: AppId, reason: RejectReason },
}

impl AdmissionDecision {
    pub fn app(&self) -> AppId {
        match self {
            AdmissionDecision::Admitted { app, .. }
            | AdmissionDecision::Queued { app, .. }
            | AdmissionDecision::Rejected { app, .. } => *app,
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            AdmissionDecision::Admitted { .. } => "admitted",
            AdmissionDecision::Queued { .. } => "queued",
            AdmissionDecision::Rejected { .. } => "rejected",
        }
    }
}

/// Strictest preference rank an app of this tier may be admitted at:
/// gold needs its most-preferred constraints satisfiable, silver accepts
/// one fallback, bronze takes any priced configuration.
pub fn required_rank(tier: Tier) -> usize {
    match tier {
        0 => 0,
        1 => 1,
        _ => usize::MAX,
    }
}

/// What pricing one grant against the database produced.
#[derive(Debug, Clone)]
pub struct PricedGrant {
    pub config_key: String,
    pub rank: usize,
}

/// Prices grants through per-profile schedulers over one shared database.
///
/// One scheduler per [`QosProfile`] (the preference lists differ), all
/// sharing the same `Arc<PerfDb>` — the cluster does not clone the record
/// store per app or per profile.
pub struct Pricer {
    schedulers: BTreeMap<&'static str, ResourceScheduler>,
}

impl Pricer {
    pub fn new(db: &Arc<PerfDb>) -> Self {
        let mut schedulers = BTreeMap::new();
        for profile in [QosProfile::Quality, QosProfile::Interactive, QosProfile::Throughput] {
            schedulers.insert(
                profile.name(),
                ResourceScheduler::new_shared(db.clone(), profile.preferences(), PROFILE_INPUT),
            );
        }
        Pricer { schedulers }
    }

    /// The availability vector a grant represents, in the database's
    /// client-resource schema.
    pub fn grant_vector(cpu: f64, net: f64) -> ResourceVector {
        let mut v = ResourceVector::default();
        v.set(client_cpu_key(), cpu);
        v.set(client_net_key(), net);
        v
    }

    /// Price `spec`'s demand scaled by `fraction`. `None` when no
    /// configuration satisfies the tier's rank requirement at that grant.
    pub fn price(&self, spec: &AppSpec, fraction: f64) -> Option<PricedGrant> {
        let v = Self::grant_vector(spec.demand_cpu, spec.demand_net).scaled(fraction);
        let scheduler = self
            .schedulers
            .get(spec.profile.name())
            .unwrap_or_else(|| panic!("no scheduler for profile {}", spec.profile.name()));
        let decision = scheduler.choose(&v)?;
        if decision.preference_rank > required_rank(spec.tier) {
            return None;
        }
        Some(PricedGrant { config_key: decision.config.key(), rank: decision.preference_rank })
    }

    /// Price `spec` at `fraction` ignoring the tier rank requirement.
    /// Used for forced degradation during overload, where the app does not
    /// get a say: any configuration valid at the shrunken grant will do.
    pub fn price_any(&self, spec: &AppSpec, fraction: f64) -> Option<PricedGrant> {
        let v = Self::grant_vector(spec.demand_cpu, spec.demand_net).scaled(fraction);
        let scheduler = self.schedulers.get(spec.profile.name())?;
        let decision = scheduler.choose(&v)?;
        Some(PricedGrant { config_key: decision.config.key(), rank: decision.preference_rank })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use visapp::{model_db, LoadGenOpts};

    fn spec(tier: Tier, cpu: f64, net: f64, profile: QosProfile) -> AppSpec {
        AppSpec {
            id: 0,
            kind: crate::app::WorkloadKind::Session,
            tier,
            weight: 10,
            profile,
            demand_cpu: cpu,
            demand_net: net,
            demand_mem: 1 << 20,
            arrival_us: 0,
            rogue: false,
        }
    }

    /// A database where the low-bandwidth sample genuinely violates
    /// Interactive's 0.5 s response bound for every configuration. The
    /// analytic `model_db` never makes rank-0 constraints bind (its
    /// transmit times are tiny and predictions clamp at the sampled grid
    /// edge), so rank fallback has to be exercised against hand-built
    /// records.
    fn starved_db() -> adapt_core::PerfDb {
        use adapt_core::{Configuration, PerfRecord, QosReport};
        let mut db = adapt_core::PerfDb::new();
        for &c in &[1i64, 2] {
            for &cpu_v in &[0.25, 1.0] {
                for &net_v in &[10_000.0, 1_000_000.0] {
                    let rt = if net_v < 100_000.0 { 4.0 + c as f64 } else { 0.1 * c as f64 };
                    db.add(PerfRecord {
                        config: Configuration::new(&[("c", c)]),
                        resources: ResourceVector::new(&[
                            (client_cpu_key(), cpu_v),
                            (client_net_key(), net_v),
                        ]),
                        input: PROFILE_INPUT.into(),
                        metrics: QosReport::new(&[("response_time", rt), ("resolution", c as f64)]),
                    });
                }
            }
        }
        db
    }

    #[test]
    fn pricing_is_tier_sensitive() {
        let db = Arc::new(starved_db());
        let pricer = Pricer::new(&db);
        // A healthy grant prices fine at any tier.
        let good = spec(0, 1.0, 1_000_000.0, QosProfile::Interactive);
        let g = pricer.price(&good, 1.0).expect("full grant must price");
        assert_eq!(g.rank, 0, "gold at full resources satisfies rank 0");
        // A starved grant only satisfies the fallback preference: gold
        // must be refused, bronze accepts it.
        let starved = spec(0, 1.0, 10_000.0, QosProfile::Interactive);
        assert!(pricer.price(&starved, 1.0).is_none(), "gold cannot take a fallback rank");
        let bronze = AppSpec { tier: 2, ..starved.clone() };
        let b = pricer.price(&bronze, 1.0).expect("bronze takes any priced config");
        assert!(b.rank >= 1, "starved grant lands on a fallback rank, got {}", b.rank);
        // Forced degradation ignores the rank gate: a config still prices
        // for the gold spec when the arbiter overrides its say.
        let forced = pricer.price_any(&starved, 1.0).expect("price_any ignores the rank gate");
        assert!(forced.rank >= 1);
    }

    #[test]
    fn scaled_grants_reprice() {
        let opts = LoadGenOpts::new(1);
        let db = Arc::new(model_db(&opts));
        let pricer = Pricer::new(&db);
        let s = spec(2, 0.5, opts.link_bps / 2.0, QosProfile::Throughput);
        for frac in FAIR_SHARE_FRACTIONS {
            let g = pricer.price(&s, frac).expect("throughput profile always prices");
            assert!(!g.config_key.is_empty());
        }
    }

    #[test]
    fn decision_accessors() {
        let d = AdmissionDecision::Rejected { app: 7, reason: RejectReason::QueueFull { cap: 4 } };
        assert_eq!(d.app(), 7);
        assert_eq!(d.name(), "rejected");
        if let AdmissionDecision::Rejected { reason, .. } = &d {
            assert_eq!(reason.name(), "queue_full");
        }
    }
}
