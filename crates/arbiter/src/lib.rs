//! Cluster arbiter: admission control, policing, and graceful overload
//! shedding for many concurrent applications.
//!
//! The paper's runtime adaptation story is per-application: each app
//! monitors its own resources and reconfigures itself. This crate adds
//! the *cluster* half of §6: a central arbiter that decides which
//! applications get to run at all, what resource envelope each one is
//! entitled to, and what happens when the sum of envelopes stops fitting
//! the machines.
//!
//! Three mechanisms, layered:
//!
//! 1. **Admission control** ([`admission`]) — every request is *priced*
//!    against the shared performance database: the app's declared demand
//!    (or a fair-share fraction of it) becomes a resource availability
//!    vector, and the scheduler answers with the best configuration and
//!    the preference rank it satisfies. Tiered rank requirements make the
//!    decision honest: a gold app that would only get a fallback
//!    configuration is rejected, not silently degraded. Decisions are
//!    typed ([`AdmissionDecision`]) and deterministic.
//! 2. **Policing** ([`arbiter`]) — admitted apps report sandbox usage;
//!    sustained violation of the admitted envelope escalates through
//!    throttle (clamp to envelope), demote (lower tier, tighter
//!    envelope), and evict. Honest apps never strike: their own sandbox
//!    enforces the envelope they agreed to.
//! 3. **Overload shedding** — when committed share exceeds (possibly
//!    dipped) capacity for long enough, a circuit breaker opens: the
//!    lowest-priority tiers are shed first (bulk apps pause, sessions are
//!    floored), survivors are degraded to cheaper envelopes, and recovery
//!    replays everything in reverse with min-dwell hysteresis so the
//!    breaker never flaps.
//!
//! The [`storm`] module drives all of it: a seeded mix of adaptive
//! visapp sessions and synthetic bulk workers, with arrival surges and
//! capacity dips, on one deterministic simulation.

pub mod admission;
pub mod app;
pub mod arbiter;
pub mod msg;
pub mod storm;
pub mod workload;

pub use admission::{
    required_rank, AdmissionDecision, PricedGrant, Pricer, RejectReason, FAIR_SHARE_FRACTIONS,
};
pub use app::{AppId, AppOutcome, AppSpec, AppState, Tier, WorkloadKind, N_TIERS};
pub use arbiter::{AppLedger, Arbiter, ArbiterOpts, CapacityDip, Ledger, LedgerHandle};
pub use storm::{
    gen_specs, run_storm, run_storm_with_specs, ArrivalSurge, StormCounters, StormOpts, StormReport,
};
pub use workload::{AppActor, BulkCell, BulkState, BulkWorker, NullSink, Workload};
