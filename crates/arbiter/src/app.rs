//! Application descriptors: what an app asks the cluster for, and what
//! became of it.
//!
//! An [`AppSpec`] is the admission-time contract: a workload kind, a
//! priority tier, a fair-share weight, and a declared resource demand.
//! The arbiter prices the demand against the shared performance database
//! and either admits the app under a resource *envelope* (its demand, or
//! a fair-share fraction of it), queues it, or rejects it. Everything the
//! run later reports per app is an [`AppOutcome`].

use visapp::QosProfile;

/// Stable application identifier within one storm (dense, 0-based).
pub type AppId = u32;

/// Priority tier. Numerically **lower is more important**: tier 0 (gold)
/// is shed last and recovered first. The shedding order walks tiers from
/// the highest number down.
pub type Tier = u8;

/// Tiers used by the storm generator (gold / silver / bronze).
pub const N_TIERS: u8 = 3;

/// What kind of workload an application runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// An interactive visapp session: the paper's adaptive client against
    /// a wavelet image server, with its own `AdaptiveRuntime`.
    Session,
    /// A synthetic bulk worker: a fixed number of compute-then-upload
    /// units against a sink. Pausable, so it is the natural shedding
    /// victim shape.
    Bulk,
}

impl WorkloadKind {
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Session => "session",
            WorkloadKind::Bulk => "bulk",
        }
    }
}

/// The admission-time contract one application presents to the arbiter.
#[derive(Debug, Clone)]
pub struct AppSpec {
    pub id: AppId,
    pub kind: WorkloadKind,
    /// Priority tier (0 = most important, shed last).
    pub tier: Tier,
    /// Fair-share weight inside a tier (higher = served first). Integer
    /// so queue ordering needs no float comparisons.
    pub weight: u32,
    /// QoS profile whose preference list prices this app's configurations.
    pub profile: QosProfile,
    /// Declared CPU demand, share of one host processor in (0, 1].
    pub demand_cpu: f64,
    /// Declared network demand, bytes/second.
    pub demand_net: f64,
    /// Declared memory demand, bytes.
    pub demand_mem: u64,
    /// Arrival time (us) at which the app asks for admission.
    pub arrival_us: u64,
    /// A rogue app ignores its contract between arbiter interventions: it
    /// runs unconstrained whenever the arbiter is not actively clamping
    /// it. Policing exists to catch exactly this.
    pub rogue: bool,
}

/// Lifecycle states an app can end the run in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppState {
    /// Never got an answer (run ended first; should not happen).
    Pending,
    /// Waiting in the admission queue when the run ended.
    Queued,
    /// Admitted and still running at the end (should not happen).
    Running,
    /// Shed (suspended / floored) and never recovered before the end.
    Shed,
    /// Rejected at admission.
    Rejected,
    /// Evicted by policing after repeated contract violations.
    Evicted,
    /// Ran to completion.
    Done,
}

impl AppState {
    /// Stable small code for digests.
    pub fn code(self) -> u64 {
        match self {
            AppState::Pending => 0,
            AppState::Queued => 1,
            AppState::Running => 2,
            AppState::Shed => 3,
            AppState::Rejected => 4,
            AppState::Evicted => 5,
            AppState::Done => 6,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            AppState::Pending => "pending",
            AppState::Queued => "queued",
            AppState::Running => "running",
            AppState::Shed => "shed",
            AppState::Rejected => "rejected",
            AppState::Evicted => "evicted",
            AppState::Done => "done",
        }
    }
}

/// Per-application outcome of one storm run — the unit the report digest
/// is computed over.
#[derive(Debug, Clone)]
pub struct AppOutcome {
    pub id: AppId,
    pub kind: WorkloadKind,
    /// Tier the app was admitted at.
    pub tier_admitted: Tier,
    /// Tier at the end (policing demotions move it up numerically).
    pub tier_final: Tier,
    pub weight: u32,
    pub arrival_us: u64,
    pub state: AppState,
    /// Policing strikes accumulated (1 = throttled, 2 = demoted, 3 = evicted).
    pub strikes: u32,
    /// How many times the app was shed by overload control.
    pub shed_count: u32,
    /// Work completed: request rounds for sessions, units for bulk apps.
    pub progress: u64,
    /// Completion time (us), when the app finished.
    pub finish_us: Option<u64>,
}
