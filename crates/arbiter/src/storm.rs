//! The multi-application storm harness: many arbitrated apps — adaptive
//! visapp sessions plus synthetic bulk workers — competing for a
//! simulated cluster on one deterministic simulation.
//!
//! Topology: every app gets its own host, linked (non-zero latency, so a
//! sharded drain can partition) to both the arbiter host and a server
//! host. The arbiter's [`HostVmm`] ledger is the *capacity model* — apps
//! physically run on their own hosts, and the admitted envelope is
//! enforced by each app's own sandbox via the limits the wrapper applies.
//!
//! Everything derives from [`StormOpts::seed`] through [`SplitMix64`]:
//! arrivals (surge-modulated Poisson), tiers, weights, demands, rogue
//! selection, think times, and bulk sizing. Two same-seed runs — under
//! any drain mode — produce byte-identical [`StormReport::digest`]s.
//!
//! [`HostVmm`]: sandbox::HostVmm

use std::collections::BTreeMap;
use std::sync::Arc;

use adapt_core::{AdaptiveRuntime, PerfDb, ResourceScheduler, ResourceVector};
use obs::Obs;
use sandbox::{Limits, LimitsHandle, SandboxStats};
use simnet::{DrainMode, Sim, SimTime};
use visapp::load::SplitMix64;
use visapp::scenario::{client_cpu_key, client_net_key, viz_spec, PROFILE_INPUT};
use visapp::{
    AdaptSetup, Client, ClientOpts, LoadGenOpts, QosProfile, Server, StatsHandle, UserModel,
    VizConfig,
};

use crate::admission::{AdmissionDecision, Pricer};
use crate::app::{AppId, AppOutcome, AppSpec, AppState, Tier, WorkloadKind};
use crate::arbiter::{Arbiter, ArbiterOpts, CapacityDip, Ledger, LedgerHandle};
use crate::workload::{AppActor, BulkCell, BulkWorker, NullSink};

/// An arrival surge: from `start_us` for `len_us` the Poisson arrival
/// rate is multiplied by `factor`.
pub type ArrivalSurge = (u64, u64, f64);

/// Options for one storm run.
#[derive(Debug, Clone)]
pub struct StormOpts {
    /// Total applications (sessions + bulk workers).
    pub apps: usize,
    /// Cluster hosts in the arbiter's capacity ledger.
    pub cluster_hosts: usize,
    pub seed: u64,
    /// Mean Poisson inter-arrival gap, us (before surge modulation).
    pub mean_gap_us: u64,
    /// Arrival-rate surges.
    pub surges: Vec<ArrivalSurge>,
    /// Host-capacity dips, forwarded to the arbiter.
    pub dips: Vec<CapacityDip>,
    /// Percent of apps that are interactive visapp sessions (rest bulk).
    pub session_pct: u32,
    /// Images per session.
    pub n_images: usize,
    /// Every k-th bulk app ignores its envelope (0 = no rogues).
    pub rogue_every: usize,
    /// Arbiter tunables.
    pub arbiter: ArbiterOpts,
    /// Wrapper usage-report period, us.
    pub report_period_us: u64,
    /// App-to-server link.
    pub link_bps: f64,
    pub link_latency_us: u64,
    /// Server hosts (each carries a visapp server and a bulk sink).
    pub servers: usize,
    pub drain_mode: DrainMode,
}

impl Default for StormOpts {
    fn default() -> Self {
        StormOpts {
            apps: 24,
            cluster_hosts: 4,
            seed: 7,
            mean_gap_us: 30_000,
            surges: Vec::new(),
            dips: Vec::new(),
            session_pct: 50,
            n_images: 1,
            rogue_every: 0,
            arbiter: ArbiterOpts::default(),
            report_period_us: 100_000,
            link_bps: 12_500_000.0,
            link_latency_us: 100,
            servers: 2,
            drain_mode: DrainMode::default(),
        }
    }
}

impl StormOpts {
    pub fn new(apps: usize) -> Self {
        StormOpts { apps, ..StormOpts::default() }
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn with_drain_mode(mut self, mode: DrainMode) -> Self {
        self.drain_mode = mode;
        self
    }

    pub fn with_cluster_hosts(mut self, hosts: usize) -> Self {
        self.cluster_hosts = hosts.max(1);
        self
    }

    pub fn with_surges(mut self, surges: Vec<ArrivalSurge>) -> Self {
        self.surges = surges;
        self
    }

    pub fn with_dips(mut self, dips: Vec<CapacityDip>) -> Self {
        self.dips = dips;
        self
    }

    pub fn with_session_pct(mut self, pct: u32) -> Self {
        self.session_pct = pct.min(100);
        self
    }

    pub fn with_rogue_every(mut self, k: usize) -> Self {
        self.rogue_every = k;
        self
    }

    pub fn with_arbiter(mut self, opts: ArbiterOpts) -> Self {
        self.arbiter = opts;
        self
    }

    /// The visapp load-generator geometry this storm profiles against —
    /// build the shared `PerfDb` with `model_db(&opts.load_opts())`.
    pub fn load_opts(&self) -> LoadGenOpts {
        LoadGenOpts {
            n_images: self.n_images,
            link_bps: self.link_bps,
            link_latency_us: self.link_latency_us,
            ..LoadGenOpts::default()
        }
    }
}

/// Arrival-rate multiplier at time `t`.
fn surge_factor(surges: &[ArrivalSurge], t: u64) -> f64 {
    let mut f = 1.0f64;
    for &(start, len, factor) in surges {
        if t >= start && t < start.saturating_add(len) {
            f = f.max(factor);
        }
    }
    f
}

/// Generate the storm's application mix from the seed. Pure function of
/// `opts`; exposed so the DST layer can inspect or override specs.
pub fn gen_specs(opts: &StormOpts) -> Vec<AppSpec> {
    let mut rng = SplitMix64::new(opts.seed);
    let mut t = 0u64;
    let mut bulk_seen = 0usize;
    (0..opts.apps)
        .map(|i| {
            let f = surge_factor(&opts.surges, t);
            let u = rng.next_f64();
            let gap = (-(1.0f64 - u).ln() * opts.mean_gap_us as f64 / f) as u64;
            t = t.saturating_add(gap);
            let is_session = rng.range(0, 99) < opts.session_pct as u64;
            let tier: Tier = match rng.range(0, 9) {
                0..=1 => 0,
                2..=4 => 1,
                _ => 2,
            };
            let weight = rng.range(1, 10) as u32;
            // Both branches draw once so a kind flip never shifts the
            // stream for later apps.
            let profile_draw = rng.range(0, 2);
            let profile = if is_session {
                match profile_draw {
                    0 => QosProfile::Quality,
                    1 => QosProfile::Interactive,
                    _ => QosProfile::Throughput,
                }
            } else {
                QosProfile::Throughput
            };
            let demand_cpu =
                if is_session { 0.2 + rng.next_f64() * 0.4 } else { 0.1 + rng.next_f64() * 0.4 };
            let demand_net = opts.link_bps * (0.08 + rng.next_f64() * 0.25);
            let mut rogue = false;
            if !is_session {
                bulk_seen += 1;
                rogue = opts.rogue_every > 0 && bulk_seen.is_multiple_of(opts.rogue_every);
            }
            AppSpec {
                id: i as AppId,
                kind: if is_session { WorkloadKind::Session } else { WorkloadKind::Bulk },
                tier,
                weight,
                profile,
                demand_cpu,
                demand_net,
                demand_mem: 1 << 20,
                arrival_us: t,
                rogue,
            }
        })
        .collect()
}

/// Storm-wide counter snapshot, read back from the arbiter's metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StormCounters {
    pub admitted: u64,
    pub rejected: u64,
    pub queued: u64,
    pub throttled: u64,
    pub demoted: u64,
    pub evicted: u64,
    pub shed: u64,
    pub recovered: u64,
    pub violations: u64,
    pub backfilled: u64,
}

/// Aggregate outcome of one storm run.
#[derive(Debug)]
pub struct StormReport {
    pub apps: Vec<AppOutcome>,
    pub end: SimTime,
    pub events_handled: u64,
    pub peak_queue_depth: usize,
    pub peak_shard_queue_depth: usize,
    /// Time-averaged committed/capacity ratio over the policed interval.
    pub utilization: f64,
    /// Committed/capacity restricted to the busy period (admission queue
    /// non-empty): packing efficiency under saturation, free of
    /// arrival-ramp and drain-down dilution.
    pub busy_utilization: f64,
    pub counters: StormCounters,
    pub overload_opens: u32,
    pub overload_closes: u32,
    /// Every admission decision, in decision order.
    pub decisions: Vec<AdmissionDecision>,
    /// p99 session response time (seconds) per admitted tier, for tiers
    /// that completed at least one round.
    pub p99_response_s: Vec<(Tier, f64)>,
    /// The run's observability sink (`arbiter.*`, `visapp.*`).
    pub obs: Obs,
}

impl StormReport {
    /// FNV-1a over every deterministic observable: per-app outcomes,
    /// arbiter counters, end time, and kernel event count. Excludes
    /// queue-depth peaks (drain-strategy-dependent), floats, and anything
    /// wall-clock.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        for a in &self.apps {
            mix(a.id as u64);
            mix(a.state.code());
            mix(a.tier_admitted as u64);
            mix(a.tier_final as u64);
            mix(a.weight as u64);
            mix(a.arrival_us);
            mix(a.strikes as u64);
            mix(a.shed_count as u64);
            mix(a.progress);
            mix(a.finish_us.map_or(u64::MAX, |t| t));
        }
        let c = &self.counters;
        for v in [
            c.admitted,
            c.rejected,
            c.queued,
            c.throttled,
            c.demoted,
            c.evicted,
            c.shed,
            c.recovered,
            c.violations,
            c.backfilled,
        ] {
            mix(v);
        }
        mix(self.end.as_us());
        mix(self.events_handled);
        h
    }

    /// Apps that ended the run in `state`.
    pub fn count(&self, state: AppState) -> usize {
        self.apps.iter().filter(|a| a.state == state).count()
    }
}

fn p99(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite response times"));
    let idx = ((v.len() - 1) as f64 * 0.99).ceil() as usize;
    v[idx]
}

fn read_counter(obs: &Obs, name: &str) -> u64 {
    obs.lookup(name).map(|id| obs.counter_value(id)).unwrap_or(0)
}

/// Run a storm with the generated app mix.
pub fn run_storm(opts: &StormOpts, db: &Arc<PerfDb>) -> StormReport {
    run_storm_with_specs(opts, gen_specs(opts), db)
}

/// Run a storm with an explicit app mix (DST and targeted tests craft
/// their own specs).
pub fn run_storm_with_specs(
    opts: &StormOpts,
    specs: Vec<AppSpec>,
    db: &Arc<PerfDb>,
) -> StormReport {
    assert!(!specs.is_empty(), "storm needs at least one app");
    let lopts = opts.load_opts();
    let sc = lopts.scenario();
    sc.validate().expect("invalid storm scenario");
    let store = sc.build_store();
    let obs = Obs::new();

    // Per-app knobs drawn from a side stream so they are stable whether
    // specs came from `gen_specs` or a DST override.
    let mut krng = SplitMix64::new(opts.seed ^ 0xB07B_5EED);
    let think: Vec<u64> = (0..specs.len()).map(|_| krng.range(10_000, 40_000)).collect();
    let units: Vec<u64> = (0..specs.len()).map(|_| krng.range(8, 24)).collect();

    let mut sim = Sim::new();
    sim.set_drain_mode(opts.drain_mode);
    sim.attach_obs(&obs);

    let arb_host = sim.add_host("arbiter", 1.0, 1 << 30);
    let server_hosts: Vec<_> = (0..opts.servers.max(1))
        .map(|j| sim.add_host(&format!("server{j}"), 1.0, 1 << 30))
        .collect();
    let server_ids: Vec<_> = server_hosts
        .iter()
        .map(|&h| sim.spawn(h, Box::new(Server::new(store.clone()).with_obs(&obs))))
        .collect();
    let sink_ids: Vec<_> = server_hosts.iter().map(|&h| sim.spawn(h, Box::new(NullSink))).collect();

    let ledger: LedgerHandle = Arc::new(std::sync::Mutex::new(Ledger::default()));
    let arb_id = sim.spawn(
        arb_host,
        Box::new(Arbiter::new(
            specs.clone(),
            Pricer::new(db),
            opts.cluster_hosts,
            opts.link_bps,
            1 << 30,
            opts.dips.clone(),
            opts.arbiter.clone(),
            obs.clone(),
            ledger.clone(),
        )),
    );

    let mut session_handles: BTreeMap<AppId, StatsHandle> = BTreeMap::new();
    let mut bulk_cells: BTreeMap<AppId, BulkCell> = BTreeMap::new();

    for (i, spec) in specs.iter().enumerate() {
        let hc = sim.add_host(&format!("app{}", spec.id), 1.0, 1 << 30);
        sim.set_link(hc, arb_host, 12_500_000.0, 200);
        let limits = LimitsHandle::new(Limits::unconstrained());
        let stats = SandboxStats::new(lopts.monitor_window_us);
        let actor: Box<AppActor> = match spec.kind {
            WorkloadKind::Session => {
                let hs = server_hosts[i % server_hosts.len()];
                sim.set_link(hc, hs, opts.link_bps, opts.link_latency_us);
                let scheduler = ResourceScheduler::new_shared(
                    db.clone(),
                    spec.profile.preferences(),
                    PROFILE_INPUT,
                );
                let mut start = ResourceVector::default();
                start.set(client_cpu_key(), 1.0);
                start.set(client_net_key(), opts.link_bps);
                let mut runtime = AdaptiveRuntime::try_configure(
                    viz_spec(&sc),
                    scheduler,
                    lopts.monitor_window_us,
                    &start,
                )
                .unwrap_or_else(|e| panic!("app {}: initial configuration failed: {e}", spec.id));
                runtime.set_obs(&obs);
                runtime.monitor.min_trigger_gap_us = lopts.trigger_gap_us;
                let initial = VizConfig::from_configuration(runtime.current());
                let adapt = AdaptSetup {
                    runtime,
                    sandbox_stats: stats.clone(),
                    cpu_key: client_cpu_key(),
                    net_key: client_net_key(),
                    period_us: lopts.period_us,
                };
                let copts = ClientOpts::new(server_ids[i % server_ids.len()])
                    .with_n_images(opts.n_images)
                    .with_initial(initial)
                    .with_user(UserModel::center(lopts.img_size, lopts.img_size))
                    .with_geometry(store.cover_radius(), store.dims(), store.levels())
                    .with_think_time(Some(think[i]));
                let handle = StatsHandle::new();
                handle.attach_obs(&obs);
                session_handles.insert(spec.id, handle.clone());
                let client = Client::new(copts, handle.clone(), Some(adapt));
                Box::new(AppActor::session(
                    spec.id,
                    arb_id,
                    spec.arrival_us,
                    opts.report_period_us,
                    client,
                    limits,
                    stats,
                    handle,
                ))
            }
            WorkloadKind::Bulk => {
                let cell: BulkCell = BulkCell::default();
                bulk_cells.insert(spec.id, cell.clone());
                // Rogues get a long runway so policing can catch them
                // before they finish.
                let n_units = units[i] * if spec.rogue { 10 } else { 1 };
                let worker = BulkWorker {
                    sink: sink_ids[i % sink_ids.len()],
                    units_total: n_units,
                    work_per_unit: 20_000.0,
                    bytes_per_unit: 20_000,
                    pace_us: 5_000,
                    cell,
                };
                let hs = server_hosts[i % server_hosts.len()];
                sim.set_link(hc, hs, opts.link_bps, opts.link_latency_us);
                Box::new(AppActor::bulk(
                    spec.id,
                    arb_id,
                    spec.arrival_us,
                    opts.report_period_us,
                    spec.rogue,
                    worker,
                    limits,
                    stats,
                ))
            }
        };
        sim.spawn(hc, actor);
    }

    sim.run_until_idle();

    let ledger = ledger.lock().unwrap_or_else(|e| e.into_inner());
    let mut apps = Vec::with_capacity(specs.len());
    let mut responses_by_tier: BTreeMap<Tier, Vec<f64>> = BTreeMap::new();
    for spec in &specs {
        let entry = ledger.apps.get(&spec.id);
        let (state, tier_admitted, tier_final, strikes, shed_count, finish_us) = match entry {
            Some(l) => {
                (l.state, l.tier_admitted, l.tier_final, l.strikes, l.shed_count, l.finish_us)
            }
            None => (AppState::Pending, spec.tier, spec.tier, 0, 0, None),
        };
        let progress = match spec.kind {
            WorkloadKind::Session => {
                let h = &session_handles[&spec.id];
                h.with(|s| {
                    for r in &s.rounds {
                        responses_by_tier.entry(tier_admitted).or_default().push(r.response_secs());
                    }
                    s.rounds.len() as u64
                })
            }
            WorkloadKind::Bulk => {
                bulk_cells[&spec.id].lock().unwrap_or_else(|e| e.into_inner()).units_done
            }
        };
        apps.push(AppOutcome {
            id: spec.id,
            kind: spec.kind,
            tier_admitted,
            tier_final,
            weight: spec.weight,
            arrival_us: spec.arrival_us,
            state,
            strikes,
            shed_count,
            progress,
            finish_us,
        });
    }

    let counters = StormCounters {
        admitted: read_counter(&obs, "arbiter.admitted"),
        rejected: read_counter(&obs, "arbiter.rejected"),
        queued: read_counter(&obs, "arbiter.queued"),
        throttled: read_counter(&obs, "arbiter.throttled"),
        demoted: read_counter(&obs, "arbiter.demoted"),
        evicted: read_counter(&obs, "arbiter.evicted"),
        shed: read_counter(&obs, "arbiter.shed"),
        recovered: read_counter(&obs, "arbiter.recovered"),
        violations: read_counter(&obs, "arbiter.violations"),
        backfilled: read_counter(&obs, "arbiter.backfilled"),
    };
    let p99_response_s = responses_by_tier
        .into_iter()
        .filter(|(_, v)| !v.is_empty())
        .map(|(t, v)| (t, p99(v)))
        .collect();

    StormReport {
        apps,
        end: sim.now(),
        events_handled: sim.events_handled(),
        peak_queue_depth: sim.peak_queue_depth(),
        peak_shard_queue_depth: sim.peak_shard_queue_depth(),
        utilization: ledger.utilization(),
        busy_utilization: ledger.busy_utilization(),
        counters,
        overload_opens: ledger.overload_opens,
        overload_closes: ledger.overload_closes,
        decisions: ledger.decisions.clone(),
        p99_response_s,
        obs,
    }
}
