//! Workload actors: the synthetic bulk worker, the null sink it uploads
//! to, and the [`AppActor`] wrapper that joins any workload to the
//! arbiter's control plane.
//!
//! The wrapper owns a [`Sandboxed`] inner actor but does **not** start it
//! until the arbiter admits the app: `on_start` only arms the arrival
//! timer, and the inner's `on_start` runs from the `MSG_ADMIT` handler.
//! All control traffic is routed on message tags ([`crate::msg`]); every
//! other message and timer is forwarded verbatim into the sandbox, so the
//! wrapper is transparent to the application underneath.
//!
//! Determinism notes: the wrapper mutates only its *own* sandbox's
//! [`LimitsHandle`] and shared cells, so no cross-actor shared-memory
//! writes exist; control handlers use `send_now` exclusively and never
//! touch the action queue the sandbox multiplexes.

use std::sync::{Arc, Mutex};

use sandbox::{Limits, LimitsHandle, SandboxStats, Sandboxed};
use simnet::{Actor, ActorId, Ctx, Message, SimTime};
use visapp::{Client, StatsHandle};

use crate::app::AppId;
use crate::msg::{
    self, ClampBody, GrantBody, ReqBody, UsageBody, CTRL_BYTES, MSG_ADMIT, MSG_DEGRADE, MSG_DEMOTE,
    MSG_DONE, MSG_EVICT, MSG_KICK, MSG_RECOVER, MSG_REJECT, MSG_RELAX, MSG_REQ, MSG_RESTORE,
    MSG_SHED, MSG_THROTTLE, MSG_USAGE,
};

/// Wrapper timer: ask the arbiter for admission. Below the visapp retry
/// tag range (1000+) and clear of the client's fixed tags (10..=40).
const TAG_ARRIVE: u64 = 901;
/// Wrapper timer: report sandbox usage to the arbiter.
const TAG_REPORT: u64 = 902;
/// Bulk worker unit-boundary continuation.
const TAG_UNIT: u64 = 1;

/// Shared bulk-worker state, read by the wrapper (done detection) and the
/// storm harness (progress accounting). Written only by actors on the
/// worker's own shard.
#[derive(Debug, Default)]
pub struct BulkState {
    pub units_done: u64,
    /// The worker observed `paused` at a unit boundary and stopped
    /// issuing work; it needs a kick to resume.
    pub parked: bool,
    /// Set by overload shedding; checked at every unit boundary.
    pub paused: bool,
    /// Set on eviction; the worker never resumes.
    pub abort: bool,
    pub finished_at: Option<SimTime>,
}

/// Handle to a bulk worker's shared state.
pub type BulkCell = Arc<Mutex<BulkState>>;

/// Absorbs bulk uploads on a server host.
pub struct NullSink;

impl Actor for NullSink {}

/// The synthetic bulk workload: `units_total` iterations of
/// compute-then-upload against a [`NullSink`], paced by a timer. Runs
/// inside a [`Sandboxed`], so the admitted envelope shapes both the
/// compute and the upload.
///
/// The pace gap is an idle *timer* wait, not a `Ctx::sleep`: the kernel
/// delivers queued messages only to a fully idle actor, and a sleeping
/// actor is not idle. Sleep-paced workers would never surface an idle
/// window, so arbiter control traffic (throttle, degrade, evict) could
/// not reach them until they finished — timer pacing opens a delivery
/// window at every unit boundary.
pub struct BulkWorker {
    pub sink: ActorId,
    pub units_total: u64,
    /// Work per unit, in `Ctx::compute` units (us at reference speed).
    pub work_per_unit: f64,
    /// Upload size per unit, bytes.
    pub bytes_per_unit: u64,
    /// Idle gap between units, us.
    pub pace_us: u64,
    pub cell: BulkCell,
}

impl BulkWorker {
    fn start_unit(&mut self, ctx: &mut Ctx<'_>) {
        {
            let mut st = self.cell.lock().unwrap_or_else(|e| e.into_inner());
            if st.abort {
                return;
            }
            if st.paused {
                st.parked = true;
                return;
            }
        }
        ctx.compute(self.work_per_unit);
        ctx.send(self.sink, Message::signal(0, self.bytes_per_unit));
        ctx.continue_with(TAG_UNIT);
    }
}

impl Actor for BulkWorker {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.start_unit(ctx);
    }

    fn on_continue(&mut self, _tag: u64, ctx: &mut Ctx<'_>) {
        let done = {
            let mut st = self.cell.lock().unwrap_or_else(|e| e.into_inner());
            st.units_done += 1;
            if st.units_done >= self.units_total && st.finished_at.is_none() {
                st.finished_at = Some(ctx.now());
            }
            st.units_done >= self.units_total
        };
        if !done {
            if self.pace_us > 0 {
                ctx.set_timer(self.pace_us, TAG_UNIT);
            } else {
                self.start_unit(ctx);
            }
        }
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_>) {
        if tag == TAG_UNIT {
            self.start_unit(ctx);
        }
    }

    fn on_message(&mut self, _from: ActorId, msg: Message, ctx: &mut Ctx<'_>) {
        if msg.tag == MSG_KICK {
            self.start_unit(ctx);
        }
    }
}

/// The wrapped workload.
#[allow(clippy::large_enum_variant)] // one Workload per app actor; size is fine
pub enum Workload {
    Session(Sandboxed<Client>),
    Bulk(Sandboxed<BulkWorker>),
}

/// Lifecycle phase of the wrapper (the arbiter holds the authoritative
/// per-app record; this only gates forwarding).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Waiting,
    Requested,
    Running,
    Shed,
    Rejected,
    Evicted,
}

/// One application under arbiter control: defers its sandboxed inner
/// until admission, reports usage, and applies the arbiter's envelope
/// changes to the sandbox limits.
pub struct AppActor {
    id: AppId,
    arbiter: ActorId,
    arrival_us: u64,
    report_period_us: u64,
    rogue: bool,
    inner: Workload,
    limits: LimitsHandle,
    stats: SandboxStats,
    /// Session progress, for done detection.
    session_stats: Option<StatsHandle>,
    /// Bulk progress, for done detection and pause/park handshakes.
    bulk_cell: Option<BulkCell>,
    /// What the app itself would run at absent a clamp: the granted
    /// envelope for honest apps, unconstrained for rogues.
    requested: Limits,
    phase: Phase,
    done_sent: bool,
}

impl AppActor {
    #[allow(clippy::too_many_arguments)]
    fn new(
        id: AppId,
        arbiter: ActorId,
        arrival_us: u64,
        report_period_us: u64,
        rogue: bool,
        inner: Workload,
        limits: LimitsHandle,
        stats: SandboxStats,
        session_stats: Option<StatsHandle>,
        bulk_cell: Option<BulkCell>,
    ) -> Self {
        AppActor {
            id,
            arbiter,
            arrival_us,
            report_period_us,
            rogue,
            inner,
            limits,
            stats,
            session_stats,
            bulk_cell,
            requested: Limits::unconstrained(),
            phase: Phase::Waiting,
            done_sent: false,
        }
    }

    /// Wrap a visapp client session.
    #[allow(clippy::too_many_arguments)]
    pub fn session(
        id: AppId,
        arbiter: ActorId,
        arrival_us: u64,
        report_period_us: u64,
        client: Client,
        limits: LimitsHandle,
        stats: SandboxStats,
        session_stats: StatsHandle,
    ) -> Self {
        let inner = Workload::Session(Sandboxed::new(client, limits.clone(), stats.clone()));
        Self::new(
            id,
            arbiter,
            arrival_us,
            report_period_us,
            false,
            inner,
            limits,
            stats,
            Some(session_stats),
            None,
        )
    }

    /// Wrap a bulk worker. `rogue` makes the wrapper restore unconstrained
    /// limits whenever the arbiter is not actively clamping it.
    #[allow(clippy::too_many_arguments)]
    pub fn bulk(
        id: AppId,
        arbiter: ActorId,
        arrival_us: u64,
        report_period_us: u64,
        rogue: bool,
        worker: BulkWorker,
        limits: LimitsHandle,
        stats: SandboxStats,
    ) -> Self {
        let cell = worker.cell.clone();
        let inner = Workload::Bulk(Sandboxed::new(worker, limits.clone(), stats.clone()));
        Self::new(
            id,
            arbiter,
            arrival_us,
            report_period_us,
            rogue,
            inner,
            limits,
            stats,
            None,
            Some(cell),
        )
    }

    fn forwarding(&self) -> bool {
        matches!(self.phase, Phase::Running | Phase::Shed)
    }

    fn finished_at(&self) -> Option<SimTime> {
        match (&self.session_stats, &self.bulk_cell) {
            (Some(h), _) => h.with(|s| s.finished_at),
            (_, Some(c)) => c.lock().unwrap_or_else(|e| e.into_inner()).finished_at,
            _ => None,
        }
    }

    /// Adopt a new contract envelope: honest apps request exactly the
    /// grant; rogues keep requesting everything.
    fn adopt_grant(&mut self, grant: Limits) {
        self.requested = if self.rogue { Limits::unconstrained() } else { grant };
        self.limits.set(self.requested);
    }

    fn start_inner(&mut self, ctx: &mut Ctx<'_>) {
        match &mut self.inner {
            Workload::Session(s) => s.on_start(ctx),
            Workload::Bulk(b) => b.on_start(ctx),
        }
    }

    fn forward_message(&mut self, from: ActorId, msg: Message, ctx: &mut Ctx<'_>) {
        match &mut self.inner {
            Workload::Session(s) => s.on_message(from, msg, ctx),
            Workload::Bulk(b) => b.on_message(from, msg, ctx),
        }
    }

    fn forward_timer(&mut self, tag: u64, ctx: &mut Ctx<'_>) {
        match &mut self.inner {
            Workload::Session(s) => s.on_timer(tag, ctx),
            Workload::Bulk(b) => b.on_timer(tag, ctx),
        }
    }

    fn forward_continue(&mut self, tag: u64, ctx: &mut Ctx<'_>) {
        match &mut self.inner {
            Workload::Session(s) => s.on_continue(tag, ctx),
            Workload::Bulk(b) => b.on_continue(tag, ctx),
        }
    }

    fn handle_ctrl(&mut self, msg: &Message, ctx: &mut Ctx<'_>) {
        match msg.tag {
            MSG_ADMIT => {
                let g: &GrantBody = msg.expect_body();
                self.adopt_grant(g.limits);
                self.phase = Phase::Running;
                self.start_inner(ctx);
                ctx.set_timer(self.report_period_us, TAG_REPORT);
            }
            MSG_REJECT => self.phase = Phase::Rejected,
            MSG_THROTTLE => {
                let c: &ClampBody = msg.expect_body();
                self.limits.set(c.limits);
            }
            MSG_RELAX => self.limits.set(self.requested),
            MSG_DEMOTE | MSG_DEGRADE | MSG_RESTORE => {
                let g: &GrantBody = msg.expect_body();
                self.adopt_grant(g.limits);
            }
            MSG_SHED => {
                let c: &ClampBody = msg.expect_body();
                self.phase = Phase::Shed;
                if c.pause {
                    if let Some(cell) = &self.bulk_cell {
                        cell.lock().unwrap_or_else(|e| e.into_inner()).paused = true;
                    }
                } else {
                    self.limits.set(c.limits);
                }
            }
            MSG_RECOVER => {
                let g: &GrantBody = msg.expect_body();
                self.adopt_grant(g.limits);
                self.phase = Phase::Running;
                let needs_kick = match &self.bulk_cell {
                    Some(cell) => {
                        let mut st = cell.lock().unwrap_or_else(|e| e.into_inner());
                        st.paused = false;
                        std::mem::take(&mut st.parked)
                    }
                    None => false,
                };
                if needs_kick {
                    // Parked workers have an idle sandbox; wake them
                    // directly (never crosses the kernel).
                    self.forward_message(self.arbiter, Message::signal(MSG_KICK, 0), ctx);
                }
            }
            MSG_EVICT => {
                self.phase = Phase::Evicted;
                if let Some(cell) = &self.bulk_cell {
                    cell.lock().unwrap_or_else(|e| e.into_inner()).abort = true;
                }
            }
            other => panic!("app {}: unexpected control tag {other}", self.id),
        }
    }
}

impl Actor for AppActor {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.arrival_us, TAG_ARRIVE);
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_>) {
        match tag {
            TAG_ARRIVE => {
                self.phase = Phase::Requested;
                ctx.send_now(
                    self.arbiter,
                    Message::new(MSG_REQ, CTRL_BYTES, ReqBody { id: self.id }),
                );
            }
            TAG_REPORT => {
                // May fire mid-quantum: only `send_now`/`set_timer` here
                // (neither touches the action queue the sandbox owns).
                if !self.forwarding() || self.done_sent {
                    return;
                }
                if let Some(t) = self.finished_at() {
                    self.done_sent = true;
                    let _ = t;
                    ctx.send_now(
                        self.arbiter,
                        Message::new(MSG_DONE, CTRL_BYTES, ReqBody { id: self.id }),
                    );
                    return;
                }
                ctx.send_now(
                    self.arbiter,
                    Message::new(
                        MSG_USAGE,
                        CTRL_BYTES,
                        UsageBody { id: self.id, cpu: self.stats.cpu_share() },
                    ),
                );
                ctx.set_timer(self.report_period_us, TAG_REPORT);
            }
            t if self.forwarding() => self.forward_timer(t, ctx),
            _ => {}
        }
    }

    fn on_message(&mut self, from: ActorId, msg: Message, ctx: &mut Ctx<'_>) {
        if msg::is_ctrl(msg.tag) {
            self.handle_ctrl(&msg, ctx);
        } else if self.forwarding() {
            self.forward_message(from, msg, ctx);
        }
    }

    fn on_continue(&mut self, tag: u64, ctx: &mut Ctx<'_>) {
        // Sandbox quantum continuations must always reach the sandbox;
        // only a dead (evicted/rejected) app swallows them.
        if self.phase != Phase::Evicted && self.phase != Phase::Rejected {
            self.forward_continue(tag, ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::Sim;

    /// A bare bulk worker (no arbiter) finishes all units and paces
    /// deterministically under a sandbox limit.
    #[test]
    fn bulk_worker_completes_units() {
        let mut sim = Sim::new();
        let hw = sim.add_host("worker", 1.0, 1 << 30);
        let hs = sim.add_host("sink", 1.0, 1 << 30);
        sim.set_link(hw, hs, 12_500_000.0, 100);
        let sink = sim.spawn(hs, Box::new(NullSink));
        let cell: BulkCell = Arc::default();
        let worker = BulkWorker {
            sink,
            units_total: 5,
            work_per_unit: 20_000.0,
            bytes_per_unit: 10_000,
            pace_us: 5_000,
            cell: cell.clone(),
        };
        let lh = LimitsHandle::new(Limits::cpu(0.5));
        sim.spawn(hw, Box::new(Sandboxed::new(worker, lh, SandboxStats::new(100_000))));
        sim.run_until_idle();
        let st = cell.lock().unwrap();
        assert_eq!(st.units_done, 5);
        let t = st.finished_at.expect("must finish").as_us();
        // 5 units of 20ms work at 50% share (40ms each) + 4 pace gaps
        // (the final unit finishes at its boundary, before any pace).
        assert!(t >= 220_000, "finished too fast: {t}us");
    }

    /// Pausing at a unit boundary parks the worker; a kick resumes it.
    #[test]
    fn bulk_worker_parks_and_resumes() {
        struct Kicker {
            cell: BulkCell,
            target: ActorId,
        }
        impl Actor for Kicker {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(30_000, 1);
                ctx.set_timer(200_000, 2);
            }
            fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_>) {
                let mut st = self.cell.lock().unwrap();
                if tag == 1 {
                    st.paused = true;
                } else {
                    st.paused = false;
                    if std::mem::take(&mut st.parked) {
                        drop(st);
                        ctx.send_now(self.target, Message::signal(MSG_KICK, 0));
                    }
                }
            }
        }
        let mut sim = Sim::new();
        let hw = sim.add_host("worker", 1.0, 1 << 30);
        let hs = sim.add_host("sink", 1.0, 1 << 30);
        sim.set_link(hw, hs, 12_500_000.0, 100);
        let sink = sim.spawn(hs, Box::new(NullSink));
        let cell: BulkCell = Arc::default();
        let worker = BulkWorker {
            sink,
            units_total: 8,
            work_per_unit: 10_000.0,
            bytes_per_unit: 1_000,
            pace_us: 1_000,
            cell: cell.clone(),
        };
        let lh = LimitsHandle::new(Limits::unconstrained());
        let wid = sim.spawn(hw, Box::new(Sandboxed::new(worker, lh, SandboxStats::new(100_000))));
        let ctl_host = sim.add_host("kicker", 1.0, 1 << 30);
        sim.set_link(ctl_host, hw, 12_500_000.0, 100);
        sim.spawn(ctl_host, Box::new(Kicker { cell: cell.clone(), target: wid }));
        sim.run_until_idle();
        let st = cell.lock().unwrap();
        assert_eq!(st.units_done, 8, "worker must finish after resume");
        let t = st.finished_at.unwrap().as_us();
        assert!(t >= 200_000, "pause window must delay completion, finished at {t}us");
    }
}
