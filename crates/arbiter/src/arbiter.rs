//! The cluster arbiter actor: admission, policing, and overload control.
//!
//! One arbiter governs a ledger of [`HostVmm`]s (one per cluster host).
//! Applications ask for admission over the simulated network; the arbiter
//! prices each request against the shared performance database
//! ([`Pricer`]), reserves capacity all-or-nothing, and polices admitted
//! apps against their envelopes using the usage reports their sandboxes
//! publish. Overload (committed share above the dip-adjusted capacity) is
//! handled by a [`CircuitBreaker`]-gated shedding/recovery state machine:
//!
//! * **Shed** lowest-priority tiers first (LIFO recovery stack), then
//!   **degrade** the survivors to scaled-down envelopes.
//! * **Recover** in reverse shed order, one app per `min_dwell_us`, and
//!   only when the app fits back with `recover_margin` headroom — this
//!   hysteresis is what keeps the breaker from flapping.
//! * **Restore** degraded survivors to their original envelopes last.
//!
//! Policing escalates per-app strikes — throttle, demote, evict — on
//! sustained envelope violations; an eviction is always preceded by a
//! published `violation` event, which the DST oracle checks.
//!
//! Everything the arbiter decides is deterministic: app records live in
//! `BTreeMap`s, the admission queue is a `BTreeSet` ordered by `(tier,
//! weight desc, arrival, id)`, and host placement breaks ties by index.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex, MutexGuard};

use obs::{Adaptive, ConfigRegistry, Event, MetricId, Obs, Source};
use sandbox::{HostVmm, Limits, Reservation};
use simnet::{Actor, ActorId, Ctx, Message, SimTime};
use visapp::{BreakerOpts, BreakerState, CircuitBreaker};

use crate::admission::{
    required_rank, AdmissionDecision, PricedGrant, Pricer, RejectReason, FAIR_SHARE_FRACTIONS,
};
use crate::app::{AppId, AppSpec, AppState, Tier, WorkloadKind, N_TIERS};
use crate::msg::{
    ClampBody, GrantBody, ReqBody, UsageBody, CTRL_BYTES, MSG_ADMIT, MSG_DEGRADE, MSG_DEMOTE,
    MSG_DONE, MSG_EVICT, MSG_RECOVER, MSG_REJECT, MSG_RELAX, MSG_REQ, MSG_RESTORE, MSG_SHED,
    MSG_THROTTLE, MSG_USAGE,
};

/// Arbiter police-loop timer tag.
const TAG_POLICE: u64 = 911;

const EPS: f64 = 1e-9;

/// Tunables for the arbiter's policing and overload state machines.
#[derive(Debug, Clone)]
pub struct ArbiterOpts {
    /// Police loop period, us.
    pub police_period_us: u64,
    /// Relative headroom an app may exceed its envelope by before a tick
    /// counts as violating (0.25 = 25% over).
    pub usage_tolerance: f64,
    /// Consecutive violating ticks per strike escalation.
    pub violation_streak: u32,
    /// How long a throttle clamp stays on before the wrapper is relaxed.
    pub throttle_dwell_us: u64,
    /// Minimum spacing between recovery / restore steps, and the hold-down
    /// after the overload breaker closes. The anti-flapping knob.
    pub min_dwell_us: u64,
    /// Admission queue capacity; a full queue rejects instead of parking.
    pub queue_cap: usize,
    /// Consecutive overloaded police ticks before the breaker opens.
    pub overload_streak: u32,
    /// How long the overload breaker stays open before probing recovery.
    pub recovery_timeout_us: u64,
    /// Envelope scale factor applied by a tier demotion.
    pub demote_frac: f64,
    /// Envelope scale factor applied to survivors during overload.
    pub degrade_frac: f64,
    /// CPU floor a shed session is clamped to (bulk apps pause instead).
    pub shed_floor_cpu: f64,
    /// A shed app is only recovered when it fits back with this much
    /// multiplicative headroom.
    pub recover_margin: f64,
    /// Policing grace after the arbiter changes an app's envelope. Usage
    /// reports are trailing-window averages, so right after an admit,
    /// demote, degrade, or recover the window still reflects the *old*
    /// envelope; without the grace an honest app would collect strikes for
    /// usage it already stopped. Must exceed the sandbox stats window.
    pub grace_us: u64,
    /// Bounded backfill when the queue head does not fit: the drain may
    /// scan this many entries behind the head and admit any that fit into
    /// capacity the head cannot use. The same number also caps how many
    /// backfill admissions a given waiting head can be overtaken by, so a
    /// blocked head degrades to strict head-of-line after at most this
    /// many skips (no starvation). `0` disables backfill entirely.
    pub backfill_depth: usize,
}

impl Default for ArbiterOpts {
    fn default() -> Self {
        ArbiterOpts {
            police_period_us: 50_000,
            usage_tolerance: 0.25,
            violation_streak: 3,
            throttle_dwell_us: 400_000,
            min_dwell_us: 300_000,
            queue_cap: 256,
            overload_streak: 2,
            recovery_timeout_us: 400_000,
            demote_frac: 0.75,
            degrade_frac: 0.6,
            shed_floor_cpu: 0.05,
            recover_margin: 1.2,
            grace_us: 250_000,
            backfill_depth: 16,
        }
    }
}

/// Post-run outcome of one app, mirrored into the shared [`Ledger`].
#[derive(Debug, Clone)]
pub struct AppLedger {
    pub state: AppState,
    pub tier_admitted: Tier,
    pub tier_final: Tier,
    pub strikes: u32,
    pub shed_count: u32,
    pub finish_us: Option<u64>,
}

/// Shared view of the arbiter's bookkeeping, read by the storm harness
/// after the run. Written only from the arbiter actor.
#[derive(Debug, Default)]
pub struct Ledger {
    pub apps: BTreeMap<AppId, AppLedger>,
    /// Every admission decision, in arrival order.
    pub decisions: Vec<AdmissionDecision>,
    /// Integral of committed CPU share over time (share·us).
    pub committed_integral: f64,
    /// Integral of dip-adjusted cluster capacity over time (share·us).
    pub capacity_integral: f64,
    /// Same integrals restricted to ticks where the admission queue was
    /// non-empty — the *busy period*, when unmet demand was waiting.
    pub busy_committed_integral: f64,
    pub busy_capacity_integral: f64,
    pub overload_opens: u32,
    pub overload_closes: u32,
}

impl Ledger {
    /// Time-averaged committed/capacity ratio over the policed interval.
    pub fn utilization(&self) -> f64 {
        if self.capacity_integral <= 0.0 {
            return 0.0;
        }
        self.committed_integral / self.capacity_integral
    }

    /// Time-averaged committed/capacity ratio over the busy period only
    /// (admission queue non-empty). This isolates packing/admission
    /// efficiency under saturation from arrival-ramp and drain-down
    /// dilution: while apps were waiting, how full was the cluster?
    /// Zero when the queue never backed up.
    pub fn busy_utilization(&self) -> f64 {
        if self.busy_capacity_integral <= 0.0 {
            return 0.0;
        }
        self.busy_committed_integral / self.busy_capacity_integral
    }
}

/// Shared handle to the arbiter's [`Ledger`].
pub type LedgerHandle = Arc<Mutex<Ledger>>;

/// A capacity dip: from `start_us` for `len_us`, every host's admission
/// threshold is scaled by `pct` (0 < pct <= 1).
pub type CapacityDip = (u64, u64, f64);

struct Metrics {
    admitted: MetricId,
    rejected: MetricId,
    queued: MetricId,
    throttled: MetricId,
    demoted: MetricId,
    evicted: MetricId,
    shed: MetricId,
    recovered: MetricId,
    violations: MetricId,
    backfilled: MetricId,
    running: MetricId,
    queue_depth: MetricId,
    committed_cpu: MetricId,
    capacity_cpu: MetricId,
    admission_latency_us: MetricId,
    violation_duration_us: MetricId,
}

impl Metrics {
    fn new(obs: &Obs) -> Self {
        Metrics {
            admitted: obs.counter("arbiter.admitted"),
            rejected: obs.counter("arbiter.rejected"),
            queued: obs.counter("arbiter.queued"),
            throttled: obs.counter("arbiter.throttled"),
            demoted: obs.counter("arbiter.demoted"),
            evicted: obs.counter("arbiter.evicted"),
            shed: obs.counter("arbiter.shed"),
            recovered: obs.counter("arbiter.recovered"),
            violations: obs.counter("arbiter.violations"),
            backfilled: obs.counter("arbiter.backfilled"),
            running: obs.gauge("arbiter.running"),
            queue_depth: obs.gauge("arbiter.queue_depth"),
            committed_cpu: obs.gauge("arbiter.committed_cpu"),
            capacity_cpu: obs.gauge("arbiter.capacity_cpu"),
            admission_latency_us: obs.histogram("arbiter.admission_latency_us"),
            violation_duration_us: obs.histogram("arbiter.violation_duration_us"),
        }
    }
}

/// Live record for one app the arbiter has heard from.
struct Rec {
    actor: ActorId,
    state: AppState,
    tier_admitted: Tier,
    tier_now: Tier,
    host: usize,
    /// Current envelope (what policing compares usage against).
    grant: Reservation,
    /// Envelope before overload degradation (restore target).
    base_grant: Reservation,
    degraded: bool,
    fraction: f64,
    first_req_us: u64,
    last_usage: Option<f64>,
    /// Consecutive violating police ticks.
    streak: u32,
    strikes: u32,
    /// Start of the current violation episode (first violating tick).
    ep_start: Option<u64>,
    throttled_until: Option<u64>,
    /// Policing ignores usage until this time (trailing-window flush
    /// after an envelope change).
    grace_until: u64,
    shed_count: u32,
    finish_us: Option<u64>,
}

/// The cluster arbiter. Spawn it first (apps address it by `ActorId`);
/// it learns each app's address from its admission request.
pub struct Arbiter {
    specs: BTreeMap<AppId, AppSpec>,
    pricer: Pricer,
    vmms: Vec<HostVmm>,
    base_threshold: f64,
    dips: Vec<CapacityDip>,
    opts: ArbiterOpts,
    /// Live-tunable recovery headroom (see [`ArbiterOpts::recover_margin`]);
    /// seeded from `opts`, retunable mid-run via `arbiter.recover_margin`.
    recover_margin: Adaptive<f64>,
    /// Live-tunable backfill scan bound (see [`ArbiterOpts::backfill_depth`]);
    /// seeded from `opts`, retunable mid-run via `arbiter.backfill_depth`.
    backfill_depth: Adaptive<u64>,
    obs: Obs,
    m: Metrics,
    recs: BTreeMap<AppId, Rec>,
    /// Admission queue keyed `(tier, weight desc, arrival, id)`.
    queue: BTreeSet<(Tier, u32, u64, AppId)>,
    /// Queue head currently blocked on capacity, if any; backfill skip
    /// credits are tracked per head.
    hol_head: Option<AppId>,
    /// Backfill admissions charged against the current blocked head.
    hol_skips: usize,
    /// LIFO recovery stack of shed apps.
    shed_stack: Vec<AppId>,
    breaker: CircuitBreaker,
    /// Overload sampling suppressed until this time after a close.
    hold_until: u64,
    next_recover_us: u64,
    next_restore_us: u64,
    last_tick_us: u64,
    terminal: usize,
    ledger: LedgerHandle,
}

impl Arbiter {
    #[allow(clippy::too_many_arguments)] // explicit cluster geometry; the storm harness is the one caller
    pub fn new(
        specs: Vec<AppSpec>,
        pricer: Pricer,
        cluster_hosts: usize,
        host_net_bps: f64,
        host_mem: u64,
        dips: Vec<CapacityDip>,
        opts: ArbiterOpts,
        obs: Obs,
        ledger: LedgerHandle,
    ) -> Self {
        assert!(cluster_hosts > 0, "arbiter needs at least one cluster host");
        let vmms: Vec<HostVmm> =
            (0..cluster_hosts).map(|_| HostVmm::new(host_net_bps, host_mem)).collect();
        let base_threshold = vmms[0].cpu_threshold;
        let m = Metrics::new(&obs);
        let breaker = CircuitBreaker::new(&BreakerOpts {
            failure_threshold: opts.overload_streak,
            recovery_timeout_us: opts.recovery_timeout_us,
            degraded: None,
        });
        Arbiter {
            specs: specs.into_iter().map(|s| (s.id, s)).collect(),
            pricer,
            vmms,
            base_threshold,
            dips,
            recover_margin: Adaptive::new(opts.recover_margin),
            backfill_depth: Adaptive::new(opts.backfill_depth as u64),
            opts,
            obs,
            m,
            recs: BTreeMap::new(),
            queue: BTreeSet::new(),
            hol_head: None,
            hol_skips: 0,
            shed_stack: Vec::new(),
            breaker,
            hold_until: 0,
            next_recover_us: 0,
            next_restore_us: 0,
            last_tick_us: 0,
            terminal: 0,
            ledger,
        }
    }

    /// Register the arbiter's live-tunable knobs on a control registry:
    /// `arbiter.recover_margin` (f64) and `arbiter.backfill_depth` (u64).
    pub fn register_knobs(&self, registry: &ConfigRegistry) {
        registry.register_knob("arbiter.recover_margin", self.recover_margin.clone());
        registry.register_knob("arbiter.backfill_depth", self.backfill_depth.clone());
    }

    fn ledger(&self) -> MutexGuard<'_, Ledger> {
        self.ledger.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn spec(&self, id: AppId) -> &AppSpec {
        &self.specs[&id]
    }

    fn queue_key(&self, id: AppId) -> (Tier, u32, u64, AppId) {
        let s = self.spec(id);
        (s.tier, u32::MAX - s.weight, s.arrival_us, id)
    }

    fn res_name(id: AppId) -> String {
        format!("app{id}")
    }

    /// Dip-adjusted per-host threshold at `t`.
    fn threshold_at(&self, t_us: u64) -> f64 {
        let mut th = self.base_threshold;
        for &(start, len, pct) in &self.dips {
            if t_us >= start && t_us < start + len {
                th = th.min(self.base_threshold * pct);
            }
        }
        th
    }

    fn capacity(&self) -> f64 {
        self.vmms.iter().map(|v| v.cpu_threshold).sum()
    }

    fn committed(&self) -> f64 {
        self.recs.values().filter(|r| r.state == AppState::Running).map(|r| r.grant.cpu_share).sum()
    }

    fn running_count(&self) -> usize {
        self.recs.values().filter(|r| r.state == AppState::Running).count()
    }

    fn event(&self, now: SimTime, kind: &'static str) -> Event {
        Event::new(now.as_us(), Source::Arbiter, kind)
    }

    fn limits_of(grant: Reservation) -> Limits {
        let mut l = Limits::unconstrained();
        if grant.cpu_share > 0.0 {
            l = l.with_cpu(grant.cpu_share.min(1.0));
        }
        if grant.net_bps > 0.0 {
            l = l.with_net(grant.net_bps);
        }
        if grant.mem_bytes > 0 {
            l = l.with_mem(grant.mem_bytes);
        }
        l
    }

    fn scaled(grant: Reservation, f: f64) -> Reservation {
        Reservation {
            cpu_share: grant.cpu_share * f,
            net_bps: grant.net_bps * f,
            mem_bytes: (grant.mem_bytes as f64 * f) as u64,
        }
    }

    /// Hosts ordered for placement: most residual CPU first, index breaks
    /// ties.
    fn host_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.vmms.len()).collect();
        order.sort_by(|&a, &b| {
            self.vmms[b]
                .cpu_available()
                .partial_cmp(&self.vmms[a].cpu_available())
                .expect("cpu_available is finite")
                .then(a.cmp(&b))
        });
        order
    }

    fn place(&mut self, name: &str, res: Reservation) -> Option<usize> {
        self.host_order().into_iter().find(|&h| self.vmms[h].admit(name, res).is_ok())
    }

    /// Install `res` for `name` on `host` unconditionally. Only for
    /// resizing an existing app downward (or rolling back a failed
    /// up-resize): a shrink must never fail just because a capacity dip
    /// moved the threshold under the already-admitted total.
    fn force_reserve(&mut self, host: usize, name: &str, res: Reservation) {
        let vmm = &mut self.vmms[host];
        let (th, net, mem) = (vmm.cpu_threshold, vmm.net_capacity_bps, vmm.mem_capacity);
        vmm.cpu_threshold = 1e18;
        vmm.net_capacity_bps = f64::INFINITY;
        vmm.mem_capacity = u64::MAX;
        vmm.admit(name, res).expect("forced reservation cannot fail");
        vmm.cpu_threshold = th;
        vmm.net_capacity_bps = net;
        vmm.mem_capacity = mem;
    }

    /// Try every fair-share fraction against every host. Returns the
    /// placement with the reservation already installed.
    fn try_place(&mut self, spec: &AppSpec) -> Option<(usize, Reservation, f64, PricedGrant)> {
        let name = Self::res_name(spec.id);
        for frac in FAIR_SHARE_FRACTIONS {
            let Some(priced) = self.pricer.price(spec, frac) else { continue };
            let res = Self::scaled(
                Reservation {
                    cpu_share: spec.demand_cpu,
                    net_bps: spec.demand_net,
                    mem_bytes: spec.demand_mem,
                },
                frac,
            );
            if let Some(h) = self.place(&name, res) {
                return Some((h, res, frac, priced));
            }
        }
        None
    }

    fn overload_active(&self) -> bool {
        self.breaker.state() != BreakerState::Closed || !self.shed_stack.is_empty()
    }

    fn sync_ledger(&self, id: AppId) {
        let spec = self.spec(id);
        let entry = match self.recs.get(&id) {
            Some(r) => AppLedger {
                state: r.state,
                tier_admitted: r.tier_admitted,
                tier_final: r.tier_now,
                strikes: r.strikes,
                shed_count: r.shed_count,
                finish_us: r.finish_us,
            },
            None => AppLedger {
                state: AppState::Pending,
                tier_admitted: spec.tier,
                tier_final: spec.tier,
                strikes: 0,
                shed_count: 0,
                finish_us: None,
            },
        };
        self.ledger().apps.insert(id, entry);
    }

    fn mark_terminal(&mut self) {
        self.terminal += 1;
    }

    // ---- admission ----------------------------------------------------

    #[allow(clippy::too_many_arguments)] // the placement tuple from try_place, splatted
    fn admit_app(
        &mut self,
        id: AppId,
        host: usize,
        res: Reservation,
        fraction: f64,
        priced: PricedGrant,
        now: SimTime,
        ctx: &mut Ctx<'_>,
    ) -> AdmissionDecision {
        let grace = self.opts.grace_us;
        let rec = self.recs.get_mut(&id).expect("admitting an app that never requested");
        let latency_us = now.as_us().saturating_sub(rec.first_req_us);
        rec.state = AppState::Running;
        rec.host = host;
        rec.grant = res;
        rec.base_grant = res;
        rec.fraction = fraction;
        rec.grace_until = now.as_us() + grace;
        let actor = rec.actor;
        ctx.send_now(
            actor,
            Message::new(MSG_ADMIT, CTRL_BYTES, GrantBody { limits: Self::limits_of(res) }),
        );
        let spec = self.spec(id);
        self.obs.publish(
            self.event(now, "admit")
                .with("app", id)
                .with("kind", spec.kind.name())
                .with("tier", spec.tier as u64)
                .with("host", host)
                .with("cpu", res.cpu_share)
                .with("fraction", fraction)
                .with("config", priced.config_key.clone())
                .with("rank", priced.rank)
                .with("latency_us", latency_us),
        );
        self.obs.inc(self.m.admitted, 1);
        self.obs.observe(self.m.admission_latency_us, latency_us as f64);
        self.sync_ledger(id);
        AdmissionDecision::Admitted {
            app: id,
            host,
            grant: res,
            fraction,
            config_key: priced.config_key,
            rank: priced.rank,
            latency_us,
        }
    }

    fn reject_app(
        &mut self,
        id: AppId,
        reason: RejectReason,
        now: SimTime,
        ctx: &mut Ctx<'_>,
    ) -> AdmissionDecision {
        let rec = self.recs.get_mut(&id).expect("rejecting an app that never requested");
        rec.state = AppState::Rejected;
        let actor = rec.actor;
        ctx.send_now(actor, Message::signal(MSG_REJECT, CTRL_BYTES));
        self.obs.publish(self.event(now, "reject").with("app", id).with("reason", reason.name()));
        self.obs.inc(self.m.rejected, 1);
        self.mark_terminal();
        self.sync_ledger(id);
        AdmissionDecision::Rejected { app: id, reason }
    }

    /// Whether `spec` could ever be placed on an idle host at full (undipped)
    /// capacity, at the smallest fair-share fraction.
    fn ever_fits(&self, spec: &AppSpec) -> bool {
        let frac = *FAIR_SHARE_FRACTIONS.last().expect("fractions non-empty");
        spec.demand_cpu * frac <= self.base_threshold + EPS
            && spec.demand_net * frac <= self.vmms[0].net_capacity_bps + EPS
            && ((spec.demand_mem as f64 * frac) as u64) <= self.vmms[0].mem_capacity
    }

    fn handle_request(&mut self, id: AppId, from: ActorId, now: SimTime, ctx: &mut Ctx<'_>) {
        let spec = self.spec(id).clone();
        self.recs.insert(
            id,
            Rec {
                actor: from,
                state: AppState::Pending,
                tier_admitted: spec.tier,
                tier_now: spec.tier,
                host: usize::MAX,
                grant: Reservation::default(),
                base_grant: Reservation::default(),
                degraded: false,
                fraction: 0.0,
                first_req_us: now.as_us(),
                last_usage: None,
                streak: 0,
                strikes: 0,
                ep_start: None,
                throttled_until: None,
                grace_until: 0,
                shed_count: 0,
                finish_us: None,
            },
        );
        let decision = if self.pricer.price(&spec, 1.0).is_none() {
            self.reject_app(
                id,
                RejectReason::QosUnsatisfiable { rank_required: required_rank(spec.tier) },
                now,
                ctx,
            )
        } else if !self.ever_fits(&spec) {
            self.reject_app(
                id,
                RejectReason::DemandExceedsCluster {
                    demand_cpu: spec.demand_cpu,
                    host_capacity: self.base_threshold,
                },
                now,
                ctx,
            )
        } else if !self.overload_active() {
            match self.try_place(&spec) {
                Some((h, res, frac, priced)) => self.admit_app(id, h, res, frac, priced, now, ctx),
                None => self.enqueue(id, now, ctx),
            }
        } else {
            // Never admit into an overload episode.
            self.enqueue(id, now, ctx)
        };
        self.ledger().decisions.push(decision);
    }

    fn enqueue(&mut self, id: AppId, now: SimTime, ctx: &mut Ctx<'_>) -> AdmissionDecision {
        if self.queue.len() >= self.opts.queue_cap {
            return self.reject_app(
                id,
                RejectReason::QueueFull { cap: self.opts.queue_cap },
                now,
                ctx,
            );
        }
        let key = self.queue_key(id);
        self.queue.insert(key);
        let position = self.queue.iter().position(|k| *k == key).expect("just inserted");
        self.recs.get_mut(&id).expect("rec exists").state = AppState::Queued;
        self.obs.publish(self.event(now, "queue").with("app", id).with("position", position));
        self.obs.inc(self.m.queued, 1);
        self.sync_ledger(id);
        AdmissionDecision::Queued { app: id, position }
    }

    /// Priority-ordered queue drain with bounded backfill; runs only
    /// outside overload episodes. The head is always offered capacity
    /// first; when it does not fit, up to [`ArbiterOpts::backfill_depth`]
    /// entries behind it are scanned in queue order and admitted into
    /// residual capacity the head cannot use anyway (a blocked 0.6-cpu
    /// head must not strand a 0.3-cpu hole). Each backfill admission
    /// spends one of the waiting head's skip credits, so a given head is
    /// overtaken at most `backfill_depth` times before the drain reverts
    /// to strict head-of-line. A head that can never fit is rejected once
    /// the cluster is idle at full capacity (so nothing it could wait for
    /// remains).
    fn drain_queue(&mut self, now: SimTime, ctx: &mut Ctx<'_>) {
        if self.overload_active() {
            return;
        }
        while let Some(&key) = self.queue.iter().next() {
            let id = key.3;
            let spec = self.spec(id).clone();
            if let Some((h, res, frac, priced)) = self.try_place(&spec) {
                self.queue.remove(&key);
                self.hol_head = None;
                self.hol_skips = 0;
                let d = self.admit_app(id, h, res, frac, priced, now, ctx);
                self.ledger().decisions.push(d);
                continue;
            }
            let idle = self.vmms.iter().all(|v| v.reservation_count() == 0);
            let undipped = (self.threshold_at(now.as_us()) - self.base_threshold).abs() < EPS;
            if idle && undipped {
                self.queue.remove(&key);
                self.hol_head = None;
                self.hol_skips = 0;
                let d = self.reject_app(
                    id,
                    RejectReason::DemandExceedsCluster {
                        demand_cpu: spec.demand_cpu,
                        host_capacity: self.base_threshold,
                    },
                    now,
                    ctx,
                );
                self.ledger().decisions.push(d);
                continue;
            }
            // Head is blocked on capacity: bounded backfill behind it.
            if self.hol_head != Some(id) {
                self.hol_head = Some(id);
                self.hol_skips = 0;
            }
            let backfill_depth = self.backfill_depth.load().min(usize::MAX as u64) as usize;
            if self.hol_skips < backfill_depth {
                let behind: Vec<_> =
                    self.queue.iter().skip(1).take(backfill_depth).copied().collect();
                for k in behind {
                    if self.hol_skips >= backfill_depth {
                        break;
                    }
                    let bspec = self.spec(k.3).clone();
                    if let Some((h, res, frac, priced)) = self.try_place(&bspec) {
                        self.queue.remove(&k);
                        self.hol_skips += 1;
                        self.obs.inc(self.m.backfilled, 1);
                        let d = self.admit_app(k.3, h, res, frac, priced, now, ctx);
                        self.ledger().decisions.push(d);
                    }
                }
            }
            break;
        }
    }

    // ---- policing ------------------------------------------------------

    /// One strike escalation for `id`. Strike 1 throttles, 2 demotes,
    /// 3 evicts. A `violation` event always precedes the action.
    fn escalate(&mut self, id: AppId, now: SimTime, ctx: &mut Ctx<'_>) {
        let rec = self.recs.get_mut(&id).expect("escalating unknown app");
        rec.strikes += 1;
        let strikes = rec.strikes;
        let usage = rec.last_usage.unwrap_or(0.0);
        let envelope = rec.grant.cpu_share;
        self.obs.publish(
            self.event(now, "violation")
                .with("app", id)
                .with("strike", strikes)
                .with("usage", usage)
                .with("envelope", envelope),
        );
        self.obs.inc(self.m.violations, 1);
        match strikes {
            1 => {
                let dwell = self.opts.throttle_dwell_us;
                let grace = self.opts.grace_us;
                let rec = self.recs.get_mut(&id).expect("rec exists");
                rec.throttled_until = Some(now.as_us() + dwell);
                rec.grace_until = now.as_us() + grace;
                let clamp = Self::limits_of(rec.grant);
                let actor = rec.actor;
                ctx.send_now(
                    actor,
                    Message::new(
                        MSG_THROTTLE,
                        CTRL_BYTES,
                        ClampBody { limits: clamp, pause: false },
                    ),
                );
                self.obs.publish(self.event(now, "throttle").with("app", id));
                self.obs.inc(self.m.throttled, 1);
            }
            2 => {
                let demote_frac = self.opts.demote_frac;
                let grace = self.opts.grace_us;
                let rec = self.recs.get_mut(&id).expect("rec exists");
                rec.grace_until = now.as_us() + grace;
                rec.tier_now = (rec.tier_now + 1).min(N_TIERS - 1);
                let new = Self::scaled(rec.grant, demote_frac);
                let (host, tier) = (rec.host, rec.tier_now);
                rec.grant = new;
                rec.base_grant = Self::scaled(rec.base_grant, demote_frac);
                let actor = rec.actor;
                let name = Self::res_name(id);
                self.vmms[host].release(&name);
                self.force_reserve(host, &name, new);
                ctx.send_now(
                    actor,
                    Message::new(
                        MSG_DEMOTE,
                        CTRL_BYTES,
                        GrantBody { limits: Self::limits_of(new) },
                    ),
                );
                self.obs
                    .publish(self.event(now, "demote").with("app", id).with("tier", tier as u64));
                self.obs.inc(self.m.demoted, 1);
            }
            _ => {
                let (host, actor, ep) = {
                    let rec = self.recs.get_mut(&id).expect("rec exists");
                    rec.state = AppState::Evicted;
                    (rec.host, rec.actor, rec.ep_start.take())
                };
                if let Some(start) = ep {
                    self.obs.observe(
                        self.m.violation_duration_us,
                        now.as_us().saturating_sub(start) as f64,
                    );
                }
                self.vmms[host].release(&Self::res_name(id));
                ctx.send_now(actor, Message::signal(MSG_EVICT, CTRL_BYTES));
                self.obs.publish(self.event(now, "evict").with("app", id));
                self.obs.inc(self.m.evicted, 1);
                self.mark_terminal();
            }
        }
        self.sync_ledger(id);
    }

    fn police_apps(&mut self, now: SimTime, ctx: &mut Ctx<'_>) {
        let t = now.as_us();
        let tolerance = self.opts.usage_tolerance;
        let streak_k = self.opts.violation_streak;
        let ids: Vec<AppId> = self.recs.keys().copied().collect();
        for id in ids {
            let (over, expire) = {
                let rec = match self.recs.get(&id) {
                    Some(r) if r.state == AppState::Running => r,
                    _ => continue,
                };
                let expire = matches!(rec.throttled_until, Some(u) if t >= u);
                let over = t >= rec.grace_until
                    && match rec.last_usage {
                        Some(u) => u > rec.grant.cpu_share * (1.0 + tolerance) + 0.005,
                        None => false,
                    };
                (over, expire)
            };
            if expire {
                let actor = {
                    let rec = self.recs.get_mut(&id).expect("rec exists");
                    rec.throttled_until = None;
                    rec.actor
                };
                ctx.send_now(actor, Message::signal(MSG_RELAX, CTRL_BYTES));
                self.obs.publish(self.event(now, "relax").with("app", id));
            }
            if over {
                let escalates = {
                    let rec = self.recs.get_mut(&id).expect("rec exists");
                    rec.streak += 1;
                    if rec.ep_start.is_none() {
                        rec.ep_start = Some(t);
                    }
                    rec.streak.is_multiple_of(streak_k)
                };
                if escalates {
                    self.escalate(id, now, ctx);
                }
            } else {
                let cleared = {
                    let rec = self.recs.get_mut(&id).expect("rec exists");
                    if rec.streak > 0 {
                        rec.streak = 0;
                        rec.ep_start.take()
                    } else {
                        None
                    }
                };
                if let Some(start) = cleared {
                    let dur = t.saturating_sub(start);
                    self.obs.observe(self.m.violation_duration_us, dur as f64);
                    self.obs.publish(
                        self.event(now, "violation_clear").with("app", id).with("duration_us", dur),
                    );
                }
            }
        }
    }

    // ---- overload ------------------------------------------------------

    /// Pick and shed victims until committed fits capacity. The victim is
    /// always from the lowest-priority occupied tier; within a tier, the
    /// lightest weight, latest arrival, highest id goes first.
    fn shed_until_fits(&mut self, now: SimTime, ctx: &mut Ctx<'_>) {
        loop {
            let capacity = self.capacity();
            if self.committed() <= capacity + EPS {
                return;
            }
            let victim = self
                .recs
                .iter()
                .filter(|(_, r)| r.state == AppState::Running)
                .max_by_key(|(id, r)| {
                    let w = self.specs[id].weight;
                    let arr = self.specs[id].arrival_us;
                    (r.tier_now, Reverse(w), arr, **id)
                })
                .map(|(id, _)| *id);
            let Some(id) = victim else { return };
            let kind = self.spec(id).kind;
            let floor = self.opts.shed_floor_cpu;
            let (tier, actor, grant, host) = {
                let rec = self.recs.get_mut(&id).expect("victim exists");
                rec.state = AppState::Shed;
                rec.shed_count += 1;
                (rec.tier_now, rec.actor, rec.grant, rec.host)
            };
            let pause = kind == WorkloadKind::Bulk;
            let clamp = if pause {
                Limits::unconstrained()
            } else {
                Limits::unconstrained().with_cpu(floor).with_net((grant.net_bps * 0.1).max(1_000.0))
            };
            self.vmms[host].release(&Self::res_name(id));
            ctx.send_now(
                actor,
                Message::new(MSG_SHED, CTRL_BYTES, ClampBody { limits: clamp, pause }),
            );
            self.shed_stack.push(id);
            self.obs.publish(
                self.event(now, "shed")
                    .with("app", id)
                    .with("tier", tier as u64)
                    .with("kind", kind.name()),
            );
            self.obs.inc(self.m.shed, 1);
            self.sync_ledger(id);
        }
    }

    /// Scale every running survivor's envelope down once per overload
    /// episode, re-pricing its configuration at the degraded grant.
    fn degrade_survivors(&mut self, now: SimTime, ctx: &mut Ctx<'_>) {
        let ids: Vec<AppId> = self
            .recs
            .iter()
            .filter(|(_, r)| r.state == AppState::Running && !r.degraded)
            .map(|(id, _)| *id)
            .collect();
        for id in ids {
            let degrade_frac = self.opts.degrade_frac;
            let grace = self.opts.grace_us;
            let spec = self.spec(id).clone();
            let rec = self.recs.get_mut(&id).expect("survivor exists");
            let new = Self::scaled(rec.grant, degrade_frac);
            rec.degraded = true;
            rec.grace_until = now.as_us() + grace;
            let total_frac = rec.fraction * degrade_frac;
            rec.grant = new;
            let (host, actor) = (rec.host, rec.actor);
            let name = Self::res_name(id);
            self.vmms[host].release(&name);
            self.force_reserve(host, &name, new);
            let config =
                self.pricer.price_any(&spec, total_frac).map(|p| p.config_key).unwrap_or_default();
            ctx.send_now(
                actor,
                Message::new(MSG_DEGRADE, CTRL_BYTES, GrantBody { limits: Self::limits_of(new) }),
            );
            self.obs.publish(
                self.event(now, "degrade")
                    .with("app", id)
                    .with("cpu", new.cpu_share)
                    .with("config", config),
            );
        }
    }

    /// Recover the most recently shed app if it fits back with margin.
    fn try_recover_top(&mut self, now: SimTime, ctx: &mut Ctx<'_>) -> bool {
        let Some(&id) = self.shed_stack.last() else { return true };
        let res = self.recs[&id].base_grant;
        if self.committed() + res.cpu_share * self.recover_margin.load() > self.capacity() + EPS {
            return false;
        }
        let name = Self::res_name(id);
        let Some(host) = self.place(&name, res) else { return false };
        self.shed_stack.pop();
        let grace = self.opts.grace_us;
        let rec = self.recs.get_mut(&id).expect("shed app exists");
        rec.state = AppState::Running;
        rec.host = host;
        rec.grant = res;
        rec.degraded = false;
        rec.grace_until = now.as_us() + grace;
        let (actor, tier) = (rec.actor, rec.tier_now);
        ctx.send_now(
            actor,
            Message::new(MSG_RECOVER, CTRL_BYTES, GrantBody { limits: Self::limits_of(res) }),
        );
        self.obs.publish(self.event(now, "recover").with("app", id).with("tier", tier as u64));
        self.obs.inc(self.m.recovered, 1);
        self.next_recover_us = now.as_us() + self.opts.min_dwell_us;
        self.sync_ledger(id);
        true
    }

    /// Restore one degraded survivor to its pre-overload envelope.
    fn try_restore_one(&mut self, now: SimTime, ctx: &mut Ctx<'_>) {
        let id = match self.recs.iter().find(|(_, r)| r.state == AppState::Running && r.degraded) {
            Some((id, _)) => *id,
            None => return,
        };
        let (base, grant, host) = {
            let r = &self.recs[&id];
            (r.base_grant, r.grant, r.host)
        };
        let extra = (base.cpu_share - grant.cpu_share).max(0.0);
        if self.committed() + extra * self.recover_margin.load() > self.capacity() + EPS {
            return;
        }
        let name = Self::res_name(id);
        self.vmms[host].release(&name);
        if self.vmms[host].admit(&name, base).is_err() {
            // No room to grow back yet; reinstall the degraded grant.
            self.force_reserve(host, &name, grant);
            return;
        }
        let grace = self.opts.grace_us;
        let rec = self.recs.get_mut(&id).expect("rec exists");
        rec.grant = base;
        rec.degraded = false;
        rec.grace_until = now.as_us() + grace;
        let actor = rec.actor;
        ctx.send_now(
            actor,
            Message::new(MSG_RESTORE, CTRL_BYTES, GrantBody { limits: Self::limits_of(base) }),
        );
        self.obs.publish(self.event(now, "restore").with("app", id).with("cpu", base.cpu_share));
        self.next_restore_us = now.as_us() + self.opts.min_dwell_us;
        self.sync_ledger(id);
    }

    fn overload_step(&mut self, now: SimTime, ctx: &mut Ctx<'_>) {
        let t = now.as_us();
        let overloaded = self.committed() > self.capacity() + EPS;
        match self.breaker.state() {
            BreakerState::Closed => {
                if overloaded && t >= self.hold_until {
                    if self.breaker.on_failure(now) {
                        self.ledger().overload_opens += 1;
                        self.obs.publish(
                            self.event(now, "overload_open")
                                .with("committed", self.committed())
                                .with("capacity", self.capacity()),
                        );
                        self.shed_until_fits(now, ctx);
                        self.degrade_survivors(now, ctx);
                    }
                } else if !overloaded {
                    self.breaker.on_success();
                    if !self.shed_stack.is_empty() {
                        if t >= self.next_recover_us {
                            self.try_recover_top(now, ctx);
                        }
                    } else if t >= self.next_restore_us {
                        self.try_restore_one(now, ctx);
                    }
                }
            }
            BreakerState::Open | BreakerState::HalfOpen => {
                if overloaded {
                    self.breaker.on_failure(now);
                    self.shed_until_fits(now, ctx);
                } else if self.breaker.can_attempt(now) {
                    if self.shed_stack.is_empty() || self.try_recover_top(now, ctx) {
                        if self.breaker.on_success() {
                            self.ledger().overload_closes += 1;
                            self.hold_until = t + self.opts.min_dwell_us;
                            self.obs.publish(
                                self.event(now, "overload_close")
                                    .with("committed", self.committed())
                                    .with("capacity", self.capacity()),
                            );
                        }
                    } else {
                        self.breaker.on_failure(now);
                    }
                }
            }
        }
    }

    fn tick(&mut self, now: SimTime, ctx: &mut Ctx<'_>) {
        let t = now.as_us();
        let th = self.threshold_at(t);
        for vmm in &mut self.vmms {
            vmm.cpu_threshold = th;
        }
        let committed = self.committed();
        let capacity = self.capacity();
        let dt = t.saturating_sub(self.last_tick_us) as f64;
        self.last_tick_us = t;
        {
            let mut ledger = self.ledger();
            ledger.committed_integral += committed * dt;
            ledger.capacity_integral += capacity * dt;
            if !self.queue.is_empty() {
                ledger.busy_committed_integral += committed * dt;
                ledger.busy_capacity_integral += capacity * dt;
            }
        }
        self.obs.set(self.m.committed_cpu, committed);
        self.obs.set(self.m.capacity_cpu, capacity);
        self.obs.set(self.m.running, self.running_count() as f64);
        self.obs.set(self.m.queue_depth, self.queue.len() as f64);

        self.police_apps(now, ctx);
        self.overload_step(now, ctx);
        self.drain_queue(now, ctx);

        for id in self.recs.keys().copied().collect::<Vec<_>>() {
            self.sync_ledger(id);
        }
        if self.terminal < self.specs.len() {
            ctx.set_timer(self.opts.police_period_us, TAG_POLICE);
        }
    }
}

impl Actor for Arbiter {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.opts.police_period_us, TAG_POLICE);
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_>) {
        if tag == TAG_POLICE {
            let now = ctx.now();
            self.tick(now, ctx);
        }
    }

    fn on_message(&mut self, from: ActorId, msg: Message, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        match msg.tag {
            MSG_REQ => {
                let b: &ReqBody = msg.expect_body();
                self.handle_request(b.id, from, now, ctx);
            }
            MSG_USAGE => {
                let b: &UsageBody = msg.expect_body();
                if let Some(rec) = self.recs.get_mut(&b.id) {
                    rec.last_usage = b.cpu;
                }
            }
            MSG_DONE => {
                let b: &ReqBody = msg.expect_body();
                let id = b.id;
                if let Some(rec) = self.recs.get_mut(&id) {
                    if rec.state == AppState::Running || rec.state == AppState::Shed {
                        if rec.state == AppState::Shed {
                            self.shed_stack.retain(|&s| s != id);
                        }
                        let rec = self.recs.get_mut(&id).expect("rec exists");
                        rec.state = AppState::Done;
                        rec.finish_us = Some(now.as_us());
                        let host = rec.host;
                        if host != usize::MAX {
                            self.vmms[host].release(&Self::res_name(id));
                        }
                        self.obs.publish(self.event(now, "done").with("app", id));
                        self.mark_terminal();
                        self.sync_ledger(id);
                    }
                }
            }
            other => panic!("arbiter: unexpected message tag {other}"),
        }
    }
}
