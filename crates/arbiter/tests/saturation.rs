//! Saturating multi-application storms: determinism across drain
//! strategies, tier-ordered shedding, full recovery without breaker
//! flapping, rogue policing, and typed rejection paths.

use std::sync::Arc;

use arbiter::{
    run_storm, run_storm_with_specs, AdmissionDecision, AppSpec, AppState, RejectReason, StormOpts,
    WorkloadKind,
};
use obs::{EventFilter, Source, Value};
use simnet::DrainMode;
use visapp::{model_db, LoadGenOpts, QosProfile};

fn storm_db(opts: &StormOpts) -> Arc<adapt_core::PerfDb> {
    let lopts = LoadGenOpts {
        n_images: opts.n_images,
        link_bps: opts.link_bps,
        link_latency_us: opts.link_latency_us,
        ..LoadGenOpts::default()
    };
    Arc::new(model_db(&lopts))
}

/// A storm that exercises every arbiter mechanism: saturation queueing,
/// a capacity dip (shed + degrade + recover), and rogue policing.
fn full_mix() -> StormOpts {
    StormOpts::new(20)
        .with_seed(3)
        .with_cluster_hosts(2)
        .with_dips(vec![(300_000, 400_000, 0.35)])
        .with_rogue_every(4)
}

fn u64_field(fields: &[(&'static str, Value)], key: &str) -> u64 {
    fields
        .iter()
        .find(|(k, _)| *k == key)
        .and_then(|(_, v)| match v {
            Value::U64(u) => Some(*u),
            Value::I64(i) => Some(*i as u64),
            _ => None,
        })
        .unwrap_or_else(|| panic!("event missing u64 field {key}"))
}

#[test]
fn storm_digest_stable_across_drains_and_reruns() {
    let base = full_mix();
    let db = storm_db(&base);
    let reference = run_storm(&base, &db).digest();
    let modes = [
        ("heap", DrainMode::Heap),
        ("batched-rerun", DrainMode::Batched),
        ("sharded", DrainMode::Sharded { threads: 2, shards: 4 }),
    ];
    for (name, mode) in modes {
        let opts = full_mix().with_drain_mode(mode);
        let got = run_storm(&opts, &db).digest();
        assert_eq!(got, reference, "digest diverged under {name} drain");
    }
}

#[test]
fn different_seeds_differ() {
    let a = full_mix();
    let db = storm_db(&a);
    let d1 = run_storm(&a, &db).digest();
    let d2 = run_storm(&full_mix().with_seed(4), &db).digest();
    assert_ne!(d1, d2, "distinct seeds should not collide");
}

/// Replays the arbiter event stream, tracking the running set and each
/// app's current tier, and asserts every shed victim came from the
/// lowest-priority (numerically highest) occupied tier.
#[test]
fn shed_order_respects_tiers() {
    let opts = full_mix();
    let db = storm_db(&opts);
    let r = run_storm(&opts, &db);
    assert!(r.counters.shed > 0, "dip storm must shed something");
    let mut running: std::collections::BTreeMap<u64, u64> = Default::default();
    let mut shed_seen = 0;
    for e in r.obs.events_filtered(&EventFilter::any().source(Source::Arbiter)) {
        match e.kind {
            "admit" => {
                let app = u64_field(&e.fields, "app");
                let tier = u64_field(&e.fields, "tier");
                running.insert(app, tier);
            }
            "demote" => {
                let app = u64_field(&e.fields, "app");
                let tier = u64_field(&e.fields, "tier");
                running.insert(app, tier);
            }
            "recover" => {
                let app = u64_field(&e.fields, "app");
                let tier = u64_field(&e.fields, "tier");
                running.insert(app, tier);
            }
            "done" | "evict" => {
                running.remove(&u64_field(&e.fields, "app"));
            }
            "shed" => {
                shed_seen += 1;
                let app = u64_field(&e.fields, "app");
                let tier = u64_field(&e.fields, "tier");
                let max_running = running.values().copied().max().unwrap_or(tier);
                assert!(
                    tier >= max_running,
                    "shed app {app} from tier {tier} while tier {max_running} was running at t={}",
                    e.at_us
                );
                running.remove(&app);
            }
            _ => {}
        }
    }
    assert_eq!(shed_seen, r.counters.shed, "every shed must be evented");
}

#[test]
fn overload_recovers_everything_without_flapping() {
    let opts = full_mix();
    let db = storm_db(&opts);
    let r = run_storm(&opts, &db);
    assert!(r.overload_opens >= 1, "the dip must trip the breaker");
    assert_eq!(
        r.overload_opens, r.overload_closes,
        "every overload episode must close (no flapping, no stuck-open)"
    );
    // Every app that survived policing ends Done: shed apps were either
    // recovered or crawled to completion, and nothing is left parked.
    for a in &r.apps {
        if a.state != AppState::Evicted {
            assert_eq!(
                a.state,
                AppState::Done,
                "app {} ended {:?} (shed_count={})",
                a.id,
                a.state.name(),
                a.shed_count
            );
        }
    }
    assert!(r.utilization > 0.2, "storm should load the cluster, got {}", r.utilization);
}

#[test]
fn rogues_walk_the_strike_ladder_and_honest_apps_never_strike() {
    let opts = StormOpts::new(10).with_seed(5).with_session_pct(0).with_rogue_every(3);
    let db = storm_db(&opts);
    let r = run_storm(&opts, &db);
    let rogues: Vec<_> = r.apps.iter().filter(|a| a.strikes > 0).collect();
    assert_eq!(r.counters.evicted as usize, rogues.len(), "only rogues accumulate strikes");
    assert!(!rogues.is_empty(), "rogue_every=3 must plant rogues");
    for a in &rogues {
        assert_eq!(a.state, AppState::Evicted, "rogue {} must be evicted", a.id);
        assert_eq!(a.strikes, 3, "rogue {} walks throttle, demote, evict", a.id);
        // Demotion moves the tier up numerically, capped at bronze: a
        // bronze rogue keeps its tier but still loses envelope.
        assert!(a.tier_final >= a.tier_admitted, "demotion never raises priority");
    }
    for a in r.apps.iter().filter(|a| a.strikes == 0) {
        assert_eq!(a.state, AppState::Done, "honest app {} must finish untouched", a.id);
    }
    // Ladder counters: one throttle and one demote per eviction.
    assert_eq!(r.counters.throttled, r.counters.evicted);
    assert_eq!(r.counters.demoted, r.counters.evicted);
    assert_eq!(r.counters.violations, 3 * r.counters.evicted);

    // Every evict is preceded by a violation for the same app (the DST
    // oracle's invariant, checked here on the raw stream).
    let events = r.obs.events_filtered(&EventFilter::any().source(Source::Arbiter));
    for (i, e) in events.iter().enumerate() {
        if e.kind == "evict" {
            let app = u64_field(&e.fields, "app");
            let preceded = events[..i]
                .iter()
                .any(|p| p.kind == "violation" && u64_field(&p.fields, "app") == app);
            assert!(preceded, "evict of app {app} without a prior violation event");
        }
    }

    // Observability: both histograms must have samples.
    let lat = r.obs.lookup("arbiter.admission_latency_us").expect("latency histogram");
    assert!(r.obs.histogram_stats(lat).count > 0);
    let dur = r.obs.lookup("arbiter.violation_duration_us").expect("duration histogram");
    assert!(r.obs.histogram_stats(dur).count > 0);
}

fn bulk_spec(id: u32, tier: u8, arrival_us: u64) -> AppSpec {
    AppSpec {
        id,
        kind: WorkloadKind::Bulk,
        tier,
        weight: 5,
        profile: QosProfile::Throughput,
        demand_cpu: 0.9,
        demand_net: 1_000_000.0,
        demand_mem: 1 << 20,
        arrival_us,
        rogue: false,
    }
}

#[test]
fn rejection_paths_are_typed() {
    let arb = arbiter::ArbiterOpts { queue_cap: 1, ..Default::default() };
    let opts = StormOpts::new(4).with_cluster_hosts(1).with_arbiter(arb);
    let db = storm_db(&opts);
    let mut specs = vec![bulk_spec(0, 2, 10_000), bulk_spec(1, 2, 20_000), bulk_spec(2, 2, 30_000)];
    // An app whose network demand cannot fit any host even at the
    // smallest fair-share fraction.
    let mut hog = bulk_spec(3, 0, 40_000);
    hog.demand_net = opts.link_bps * 3.0;
    specs.push(hog);
    let r = run_storm_with_specs(&opts, specs, &db);

    let decision_of = |id: u32| {
        r.decisions
            .iter()
            .find(|d| d.app() == id)
            .unwrap_or_else(|| panic!("no decision for app {id}"))
    };
    assert!(matches!(decision_of(0), AdmissionDecision::Admitted { .. }));
    assert!(matches!(decision_of(1), AdmissionDecision::Queued { .. }));
    assert!(
        matches!(
            decision_of(2),
            AdmissionDecision::Rejected { reason: RejectReason::QueueFull { cap: 1 }, .. }
        ),
        "third 0.9-cpu app overflows the 1-slot queue: {:?}",
        decision_of(2)
    );
    assert!(
        matches!(
            decision_of(3),
            AdmissionDecision::Rejected { reason: RejectReason::DemandExceedsCluster { .. }, .. }
        ),
        "network hog must be turned away: {:?}",
        decision_of(3)
    );
    // The queued app is admitted once the first finishes, and both run to
    // completion.
    let done = |id: u32| r.apps.iter().find(|a| a.id == id).unwrap().state;
    assert_eq!(done(0), AppState::Done);
    assert_eq!(done(1), AppState::Done);
    assert_eq!(done(2), AppState::Rejected);
    assert_eq!(done(3), AppState::Rejected);
    assert_eq!(r.counters.rejected, 2);
}

/// The saturating mix keeps the cluster busy: time-averaged utilization
/// stays high through the storm and per-tier p99s are recorded.
#[test]
fn saturating_mix_reports_utilization_and_p99() {
    let opts = StormOpts::new(40).with_seed(9).with_cluster_hosts(2);
    let db = storm_db(&opts);
    let r = run_storm(&opts, &db);
    assert!(r.count(AppState::Done) == 40, "all apps finish: {:?}", r.counters);
    assert!(
        r.utilization > 0.4,
        "40 apps on 2 hosts should keep the cluster loaded, got {:.3}",
        r.utilization
    );
    assert!(!r.p99_response_s.is_empty(), "sessions must report per-tier p99s");
    for (tier, p99) in &r.p99_response_s {
        assert!(p99.is_finite() && *p99 > 0.0, "tier {tier} p99 = {p99}");
    }
}
