//! Scenario-to-trial adapter: run one sampled [`TrialPlan`] through the
//! full adaptive application and evaluate every oracle on the outcome.
//!
//! The expensive inputs — image store, profiled performance database,
//! preference list — depend only on the base geometry, not on the plan,
//! so one [`TrialContext`] is built per explorer run and shared by every
//! trial (the database clones structurally; clones share the query
//! index).

use std::collections::BTreeSet;
use std::sync::Arc;

use adapt_core::{Constraint, Objective, PerfDb, Preference, PreferenceList, RefineEngine};
use arbiter::{AppState, StormOpts};
use sandbox::{LimitSchedule, Limits};
use simnet::{DrainMode, ExplorePlan, SimTime};
use visapp::{
    build_db, model_db, run_adaptive_until, BreakerOpts, ImageStore, RunOutcome, Scenario,
    PROFILE_INPUT,
};

use crate::oracle::{self, DecisionContext, Violation};
use crate::space::TrialPlan;

/// Wall-clock bound on one trial, simulation seconds. Crash-without-
/// restart trials never drain on their own (breaker probes re-arm
/// forever), so every trial runs under a horizon.
pub const TRIAL_HORIZON_SECS: u64 = 60;

/// Entries in the knob-mutation command menu ([`knob_commands`]).
pub const KNOB_MENU_LEN: u64 = 7;

/// One-way link latency planted on `--cfg dst_drift` builds for
/// drift-armed plans (`drift_threshold_x1000 > 0`), microseconds: the
/// live path silently balloons from the 100us the performance database
/// was profiled at to 75ms. Latency is invisible to the resource vector
/// (which carries CPU/net-rate/memory), so the scheduler keeps querying
/// the database at the nominal operating point and predictions stay
/// stale — a genuine *model* drift, which the refine engine must catch.
/// On normal builds the same plans run unplanted and must replay clean.
pub const DRIFT_LATENCY_US: u64 = 75_000;

/// Consecutive over-threshold residual samples before a drift-armed
/// trial's refine engine alarms. Fixed (not a plan axis) so detection
/// latency is a property of the engine, not of the sample.
pub const DRIFT_MIN_STREAK: u64 = 3;

/// Decode a plan's knob triples `(at_ms, kind, magnitude_pct)` into the
/// operator-command schedule the trial scenario dispatches. The menu
/// covers every control surface the single-app trial registers —
/// steering dwell, scheduler preferences, retry backoff, breaker
/// thresholds, a breaker reset — plus one deliberately-unknown key whose
/// rejection must still be audited. `kind` is taken modulo the menu
/// length and every magnitude maps into the knob's accepted range, so
/// any integer triple decodes to a command the registry admits (only the
/// unknown-key entry is refused, by design).
pub fn knob_commands(plan: &TrialPlan) -> Vec<visapp::CommandAt> {
    use obs::Command;
    plan.knobs
        .iter()
        .map(|&(at_ms, kind, mag)| {
            let mag = mag.min(100);
            let cmd = match kind % KNOB_MENU_LEN {
                // Steering dwell: 0..=1s. Zero disables the dwell floor.
                0 => Command::set("steering.min_dwell_us", mag * 10_000),
                // Preference flip; both shapes keep an unconstrained
                // objective reachable so the scheduler always decides
                // within the preference depth the oracle allows.
                1 => Command::set(
                    "scheduler.prefs",
                    if mag < 50 {
                        "minimize:transmit_time"
                    } else {
                        "resolution>=3,minimize:transmit_time then minimize:transmit_time"
                    },
                ),
                // Retry multiplier: 1.0..=4.0 (the knob rejects < 1).
                2 => Command::set("client.retry.multiplier", 1.0 + mag as f64 * 0.03),
                // Breaker trip threshold: 1..=11 consecutive failures.
                3 => Command::set("client.breaker.failure_threshold", 1 + mag / 10),
                // Breaker recovery window: 10ms..=1.01s.
                4 => Command::set("client.breaker.recovery_timeout_us", (mag + 1) * 10_000),
                5 => Command::ResetBreaker { key: "client.breaker".into() },
                // Unknown key: must be refused and audited, never panic.
                _ => Command::set("no.such.knob", mag),
            };
            (at_ms.max(1) * 1_000, "dst".to_string(), cmd)
        })
        .collect()
}

/// Everything a trial run produced that the explorer cares about.
#[derive(Debug, Clone)]
pub struct TrialOutcome {
    /// Order-sensitive digest of the observable behaviour (events, stats,
    /// end time). Equal digests mean indistinguishable runs.
    pub digest: u64,
    /// First violation of each oracle kind, in oracle order.
    pub violations: Vec<Violation>,
    /// Images the client completed before the horizon.
    pub images_done: u64,
    /// Rounds the client applied.
    pub rounds: u64,
    /// Simulation end time, microseconds.
    pub end_us: u64,
}

/// Applications per overload-axis storm trial.
const STORM_APPS: usize = 16;

/// Cluster hosts per overload-axis storm trial.
const STORM_HOSTS: usize = 2;

/// Shared, plan-independent trial infrastructure.
pub struct TrialContext {
    base: Scenario,
    store: Arc<ImageStore>,
    db: PerfDb,
    prefs: PreferenceList,
    decisions: DecisionContext,
    /// Shared pricing database for overload-axis storm trials (analytic
    /// model over the storm's link geometry; plan-independent).
    storm_db: Arc<PerfDb>,
}

impl TrialContext {
    /// Build the shared context: generate the store and profile the
    /// performance database once (single-threaded so record order — and
    /// therefore scheduler tie-breaks — never depends on thread timing).
    pub fn new() -> Self {
        let base = Scenario {
            n_images: 4,
            img_size: 64,
            levels: 3,
            monitor_window_us: 500_000,
            trigger_gap_us: 200_000,
            request_timeout_us: Some(250_000),
            breaker: Some(BreakerOpts {
                failure_threshold: 3,
                recovery_timeout_us: 400_000,
                degraded: None,
            }),
            ..Scenario::default()
        };
        let store = base.build_store();
        let db = build_db(&base, &store, &[0.05], &[2_000.0, 11_000.0, 60_000.0], 1);
        // Minimizing *per-round* response time steers the scheduler toward
        // small fovea increments, so images take several request/reply
        // rounds. Multi-round images are what give late duplicate replies
        // a window to race the dedup guard — with one round per image the
        // image-id check alone would mask a broken round check.
        let prefs = PreferenceList::single(Preference::new(
            vec![Constraint::at_least("resolution", 3.0)],
            Objective::minimize("response_time"),
        ))
        .then(Preference::new(vec![], Objective::minimize("response_time")));
        let valid_configs: BTreeSet<String> =
            db.configs(PROFILE_INPUT).iter().map(|c| c.key()).collect();
        let preference_depth = 2;
        let storm_db = Arc::new(model_db(&Self::base_storm_opts(0).load_opts()));
        TrialContext {
            base,
            store,
            db,
            prefs,
            decisions: DecisionContext { valid_configs, preference_depth },
            storm_db,
        }
    }

    /// The fixed storm geometry overload trials run under (the seed is
    /// the only per-plan parameter besides the injected windows).
    fn base_storm_opts(seed: u64) -> StormOpts {
        StormOpts::new(STORM_APPS).with_seed(seed).with_cluster_hosts(STORM_HOSTS)
    }

    /// The decision-validity oracle's context (database keys, preference
    /// depth).
    pub fn decision_context(&self) -> &DecisionContext {
        &self.decisions
    }

    /// The concrete scenario a plan runs under a given drain mode.
    pub fn scenario(&self, plan: &TrialPlan, drain_mode: DrainMode) -> Scenario {
        #[allow(unused_mut)]
        let mut sc = Scenario {
            n_images: plan.n_images as usize,
            request_timeout_us: Some(plan.timeout_ms.max(1) * 1_000),
            fault_plan: plan.fault_plan(),
            drain_mode,
            commands: knob_commands(plan),
            ..self.base.clone()
        };
        // The planted environment change: only live runs see the latency
        // spike — the profiled database (built in `new`) keeps modelling
        // the nominal path, which is exactly the mismatch the refine
        // engine exists to catch.
        #[cfg(dst_drift)]
        if plan.drift_threshold_x1000 > 0 {
            sc.link_latency_us += DRIFT_LATENCY_US;
        }
        sc
    }

    /// Run one trial under the plan's own explore drain mode.
    pub fn run(&self, plan: &TrialPlan) -> TrialOutcome {
        let explore = DrainMode::Explore(
            ExplorePlan::new(plan.schedule_seed).with_timer_skew_us(plan.timer_skew_us),
        );
        self.run_with_drain(plan, explore)
    }

    /// Run one trial under an explicit drain mode (the cross-drain oracle
    /// replays the same plan under `Heap` and `Batched` and compares
    /// digests). Plans carrying overload windows run the multi-app
    /// arbiter storm; everything else runs the single-app scenario.
    pub fn run_with_drain(&self, plan: &TrialPlan, drain_mode: DrainMode) -> TrialOutcome {
        if plan.has_overload() {
            return self.run_storm_trial(plan, drain_mode);
        }
        let sc = self.scenario(plan, drain_mode);
        // Bandwidth collapses mid-run and later recovers: the adaptation
        // loop must react (decisions, switches), and the collapse itself
        // delays replies past the request timeout, racing retransmissions
        // against late originals — exactly the schedule the dedup guard
        // exists for.
        let schedule = LimitSchedule::new()
            .at(SimTime::from_secs(1), Limits::cpu(0.05).with_net(2_000.0))
            .at(SimTime::from_secs(3), Limits::cpu(0.05).with_net(60_000.0));
        let out = run_adaptive_until(
            &sc,
            &self.store,
            self.db.clone(),
            self.prefs.clone(),
            Limits::cpu(0.05).with_net(60_000.0),
            Some(schedule),
            SimTime::from_secs(TRIAL_HORIZON_SECS),
        );
        let digest = digest_outcome(&out);
        // Drift-armed plans fold the run through the refine engine
        // *before* the oracles so its `refine.drift` audit events land on
        // the bus the `model_drift` oracle reads. Detection only: the
        // trial never re-profiles, it just witnesses the alarm.
        if plan.drift_threshold_x1000 > 0 {
            let mut engine = RefineEngine::from_db(self.db.clone(), PROFILE_INPUT);
            engine.set_threshold(plan.drift_threshold_x1000 as f64 / 1000.0);
            engine.set_min_streak(DRIFT_MIN_STREAK);
            engine.set_obs(&out.obs);
            engine.ingest_run(&out.obs);
        }
        let violations = oracle::check_all(&out.obs, &self.decisions);
        TrialOutcome {
            digest,
            violations,
            images_done: out.stats.images.len() as u64,
            rounds: out.stats.rounds.len() as u64,
            end_us: out.end.as_us(),
        }
    }

    /// Run one overload-axis trial: a saturating multi-application storm
    /// with the plan's arrival surges and capacity dips, checked by the
    /// arbiter oracles (tier-ordered shedding, no clean evictions).
    fn run_storm_trial(&self, plan: &TrialPlan, drain_mode: DrainMode) -> TrialOutcome {
        let opts = Self::base_storm_opts(plan.trial_seed)
            .with_surges(
                plan.surges
                    .iter()
                    .map(|&(s, e, fx10)| (s * 1_000, (e - s) * 1_000, fx10 as f64 / 10.0))
                    .collect(),
            )
            .with_dips(
                plan.dips
                    .iter()
                    .map(|&(s, e, pct)| (s * 1_000, (e - s) * 1_000, pct as f64 / 100.0))
                    .collect(),
            )
            .with_drain_mode(drain_mode);
        let report = arbiter::run_storm(&opts, &self.storm_db);
        TrialOutcome {
            digest: report.digest(),
            violations: oracle::check_arbiter(&report.obs),
            images_done: report.count(AppState::Done) as u64,
            rounds: report.events_handled,
            end_us: report.end.as_us(),
        }
    }
}

impl Default for TrialContext {
    fn default() -> Self {
        Self::new()
    }
}

/// FNV-1a 64 over the integer-observable behaviour of a run: applied
/// rounds, image completions, configuration history, resilience counters
/// and the end time. Floats are deliberately excluded so the digest is
/// exact.
pub fn digest_outcome(out: &RunOutcome) -> u64 {
    let mut h = Fnv::new();
    let rounds = obs::EventFilter::any().source(obs::Source::App).kind("round");
    for ev in out.obs.events_filtered(&rounds) {
        h.write_u64(ev.at_us);
        h.write_u64(ev.u64_field("image").unwrap_or(u64::MAX));
        h.write_u64(ev.u64_field("round").unwrap_or(u64::MAX));
        h.write_u64(ev.u64_field("wire_round").unwrap_or(u64::MAX));
    }
    for img in &out.stats.images {
        h.write_u64(img.finished.as_us());
        h.write_u64(img.image_id as u64);
        h.write_u64(img.rounds as u64);
    }
    for (t, cfg) in &out.stats.config_history {
        h.write_u64(t.as_us());
        h.write_str(&cfg.key());
    }
    h.write_u64(out.stats.retries);
    h.write_u64(out.stats.timeouts);
    h.write_u64(out.stats.breaker_opens);
    h.write_u64(out.stats.breaker_closes);
    h.write_u64(out.stats.dup_replies_dropped);
    h.write_u64(out.end.as_us());
    h.finish()
}

/// Minimal FNV-1a 64 hasher (no external deps; stable across platforms).
pub struct Fnv(u64);

impl Fnv {
    pub fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    pub fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    pub fn write_str(&mut self, s: &str) {
        for b in s.as_bytes() {
            self.0 ^= *b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
        // Length terminator so "ab"+"c" != "a"+"bc".
        self.write_u64(s.len() as u64);
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_order_sensitive() {
        let mut a = Fnv::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Fnv::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
        let mut c = Fnv::new();
        c.write_str("ab");
        c.write_str("c");
        let mut d = Fnv::new();
        d.write_str("a");
        d.write_str("bc");
        assert_ne!(c.finish(), d.finish());
    }
}
