//! Seed shrinking: reduce a failing [`TrialPlan`] toward the minimal
//! plan that still violates the same invariant.
//!
//! Classic delta-debugging ladder: each pass proposes single-field
//! reductions in a fixed order (cheapest semantic simplification first —
//! kill the schedule perturbation, then the faults, then the workload),
//! re-runs the candidate, and keeps it iff a violation of the *same
//! kind* survives. Passes repeat until a fixpoint or the run budget is
//! exhausted, so shrinking is always bounded.

use crate::space::TrialPlan;
use crate::trial::TrialContext;

/// Outcome of shrinking one failing plan.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// The smallest plan found that still fails with the original kind.
    pub plan: TrialPlan,
    /// Accepted reductions.
    pub steps: u64,
    /// Candidate trials executed (bounded by the budget).
    pub trials_run: u64,
    /// Behaviour digest of the minimal plan's failing run, when any
    /// reduction was accepted (`None` means the original plan survived
    /// unshrunk and the caller already holds its digest).
    pub digest: Option<u64>,
}

/// Single-field reductions of `plan`, in preference order. Every
/// candidate has strictly smaller [`TrialPlan::weight`].
fn reductions(plan: &TrialPlan) -> Vec<TrialPlan> {
    let mut out = Vec::new();
    let mut push = |p: TrialPlan| {
        debug_assert!(p.weight() < plan.weight(), "reduction must shrink");
        out.push(p);
    };
    if plan.timer_skew_us > 0 {
        push(TrialPlan { timer_skew_us: 0, ..plan.clone() });
    }
    if plan.schedule_seed != 0 {
        push(TrialPlan { schedule_seed: 0, ..plan.clone() });
    }
    if plan.crash_at_ms != 0 {
        push(TrialPlan { crash_at_ms: 0, restart_at_ms: 0, ..plan.clone() });
    }
    if !plan.down.is_empty() {
        push(TrialPlan { down: Vec::new(), ..plan.clone() });
    }
    if plan.jitter_us > 0 {
        push(TrialPlan { jitter_us: 0, ..plan.clone() });
        if plan.jitter_us > 1 {
            push(TrialPlan { jitter_us: plan.jitter_us / 2, ..plan.clone() });
        }
    }
    if plan.loss_pct > 0 {
        push(TrialPlan { loss_pct: 0, ..plan.clone() });
        if plan.loss_pct > 1 {
            push(TrialPlan { loss_pct: plan.loss_pct / 2, ..plan.clone() });
        }
    }
    if !plan.surges.is_empty() {
        push(TrialPlan { surges: Vec::new(), ..plan.clone() });
        if plan.surges.len() > 1 {
            push(TrialPlan {
                surges: plan.surges[..plan.surges.len() / 2].to_vec(),
                ..plan.clone()
            });
        }
    }
    if !plan.dips.is_empty() {
        push(TrialPlan { dips: Vec::new(), ..plan.clone() });
        if plan.dips.len() > 1 {
            push(TrialPlan { dips: plan.dips[..plan.dips.len() / 2].to_vec(), ..plan.clone() });
        }
    }
    if !plan.knobs.is_empty() {
        push(TrialPlan { knobs: Vec::new(), ..plan.clone() });
        if plan.knobs.len() > 1 {
            push(TrialPlan { knobs: plan.knobs[..plan.knobs.len() / 2].to_vec(), ..plan.clone() });
        }
    }
    if plan.n_images > 2 {
        push(TrialPlan { n_images: 2, ..plan.clone() });
    }
    if plan.timeout_ms < 250 {
        push(TrialPlan { timeout_ms: 250, ..plan.clone() });
        push(TrialPlan { timeout_ms: (plan.timeout_ms + 250).div_ceil(2), ..plan.clone() });
    }
    if plan.timer_skew_us > 1 {
        push(TrialPlan { timer_skew_us: plan.timer_skew_us / 2, ..plan.clone() });
    }
    out
}

/// Shrink `plan` (which violated invariant `kind`) to a minimal failing
/// plan, running at most `budget` candidate trials.
pub fn shrink(ctx: &TrialContext, plan: &TrialPlan, kind: &str, budget: u64) -> ShrinkResult {
    let mut cur = plan.clone();
    let mut steps = 0;
    let mut trials_run = 0;
    let mut digest = None;
    'outer: loop {
        for cand in reductions(&cur) {
            if trials_run >= budget {
                break 'outer;
            }
            trials_run += 1;
            let out = ctx.run(&cand);
            let still_fails = out.violations.iter().any(|v| v.kind() == kind);
            if still_fails {
                cur = cand;
                steps += 1;
                digest = Some(out.digest);
                // Restart the ladder from the smaller plan.
                continue 'outer;
            }
        }
        break;
    }
    ShrinkResult { plan: cur, steps, trials_run, digest }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::FaultSpace;

    #[test]
    fn reductions_strictly_shrink_and_reach_fixpoint() {
        let mut plan = FaultSpace::default().sample(7);
        // Greedily accept every reduction; weight must be strictly
        // decreasing, so this terminates at the quiet plan.
        let mut guard = 0;
        while let Some(cand) = reductions(&plan).into_iter().next() {
            assert!(cand.weight() < plan.weight());
            plan = cand;
            guard += 1;
            assert!(guard < 1_000, "reduction ladder must terminate");
        }
        assert_eq!(plan.weight(), 0);
        assert!(reductions(&plan).is_empty(), "quiet plan has no reductions");
    }
}
