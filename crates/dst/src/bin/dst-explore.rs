//! Seed-sweep CLI for the simulation-test explorer.
//!
//! ```text
//! dst-explore [--trials N] [--seed S] [--no-shrink] [--cross-check N]
//!             [--out DIR] [--expect-violation]
//! ```
//!
//! Exit status: 0 when expectations hold — no violations normally, at
//! least one under `--expect-violation` (the canary build). Violations
//! are printed and, with `--out`, written as repro JSON files.

use std::path::PathBuf;
use std::process::ExitCode;

use adapt_dst::{Explorer, ExplorerOpts, TrialContext};

struct Args {
    opts: ExplorerOpts,
    out: Option<PathBuf>,
    expect_violation: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut opts = ExplorerOpts { trials: 200, ..Default::default() };
    let mut out = None;
    let mut expect_violation = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--trials" => opts.trials = val("--trials")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => opts.master_seed = val("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--cross-check" => {
                opts.cross_check_every =
                    val("--cross-check")?.parse().map_err(|e| format!("{e}"))?
            }
            "--max-failures" => {
                opts.max_failures = val("--max-failures")?.parse().map_err(|e| format!("{e}"))?
            }
            "--no-shrink" => opts.shrink = false,
            "--overload" => opts.space = adapt_dst::FaultSpace::overload(),
            "--drift" => opts.space = adapt_dst::FaultSpace::drift(),
            "--out" => out = Some(PathBuf::from(val("--out")?)),
            "--expect-violation" => expect_violation = true,
            "--help" | "-h" => {
                println!(
                    "usage: dst-explore [--trials N] [--seed S] [--no-shrink] [--overload] \
                     [--drift] [--cross-check N] [--max-failures N] [--out DIR] \
                     [--expect-violation]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(Args { opts, out, expect_violation })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("dst-explore: {e}");
            return ExitCode::from(2);
        }
    };
    eprintln!(
        "dst-explore: {} trials, seed {:#x}, shrink={}, cross-check every {}",
        args.opts.trials, args.opts.master_seed, args.opts.shrink, args.opts.cross_check_every
    );
    let ctx = TrialContext::new();
    let report = Explorer::new(args.opts).run(&ctx);
    println!("trials_run: {}", report.trials_run);
    println!("digest: {:#018x}", report.digest);
    println!("failures: {}", report.failures.len());
    for f in &report.failures {
        println!("  trial {}: {}", f.trial_index, f.violation);
        if let Some(s) = &f.shrunk {
            println!(
                "    shrunk in {} steps ({} candidate trials) to weight {} (from {})",
                s.steps,
                s.trials_run,
                s.plan.weight(),
                f.plan.weight()
            );
        }
        if let Some(dir) = &args.out {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("dst-explore: cannot create {}: {e}", dir.display());
                return ExitCode::from(2);
            }
            let path = dir.join(format!(
                "{}-trial-{}-seed-{:x}.json",
                f.violation.kind(),
                f.trial_index,
                f.plan.trial_seed
            ));
            if let Err(e) = std::fs::write(&path, f.repro().to_json()) {
                eprintln!("dst-explore: cannot write {}: {e}", path.display());
                return ExitCode::from(2);
            }
            println!("    repro written: {}", path.display());
        }
    }
    let found = report.found_violation();
    if found != args.expect_violation {
        if args.expect_violation {
            eprintln!("dst-explore: FAIL — expected a violation (canary build?), found none");
        } else {
            eprintln!("dst-explore: FAIL — invariant violations found");
        }
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
