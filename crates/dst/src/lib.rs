//! Deterministic simulation-test explorer (`adapt-dst`).
//!
//! Turns the simnet kernel into a model-checker-lite, in the tradition of
//! FoundationDB-style deterministic simulation testing:
//!
//! 1. **Schedule search** — each trial runs the full adaptive
//!    application under [`simnet::DrainMode::Explore`], which permutes
//!    same-timestamp delivery order and skews timer fires from a seeded
//!    PRNG, so one binary explores many legal event interleavings.
//! 2. **Fault-space search** — a declarative [`FaultSpace`] grammar
//!    (loss / jitter / link-down / crash-restart ranges) collapses per
//!    trial into a concrete [`TrialPlan`] from a single seed. The
//!    knob-mutation axis ([`FaultSpace::knobs`]) additionally draws
//!    seeded live control-plane `Command` schedules — operator retuning
//!    raced against the faults.
//! 3. **Invariant oracles** — after each trial, [`oracle`] functions
//!    replay the observability bus: no duplicate reply is ever applied,
//!    circuit-breaker transitions are legal, degrade/recover alternate,
//!    scheduler decisions stay inside the performance database, every
//!    control-plane mutation is audited ([`oracle::config_audit_complete`]),
//!    and (periodically) heap vs batched drain digests agree.
//! 4. **Shrinking** — a failing trial is delta-debugged ([`shrink`])
//!    toward the minimal plan that still violates the same invariant,
//!    and emitted as a self-contained JSON [`Repro`] that replays
//!    verbatim in a `#[test]`.
//!
//! The whole pipeline is deterministic: the same [`ExplorerOpts`]
//! produce the same [`ExploreReport`] digest, byte for byte, every run.
//!
//! # Quick start
//!
//! ```no_run
//! use adapt_dst::{Explorer, ExplorerOpts, TrialContext};
//!
//! let ctx = TrialContext::new();
//! let report = Explorer::new(ExplorerOpts { trials: 100, ..Default::default() }).run(&ctx);
//! assert!(!report.found_violation(), "failures: {:?}", report.failures);
//! ```
//!
//! The seeded canary bug (`--cfg dst_canary`, see `visapp::client`)
//! validates the pipeline end to end: the explorer must find it, shrink
//! it, and the committed repro must replay it. The model-drift canary
//! (`--cfg dst_drift`, see [`trial::DRIFT_LATENCY_US`]) closes the same loop
//! through the online-refinement layer: drift-armed trials
//! ([`FaultSpace::drift`]) fold the run through
//! `adapt_core::refine::RefineEngine`, the [`oracle::no_model_drift`]
//! oracle turns a sustained-drift alarm into a violation, and the
//! explorer captures, shrinks, and digest-pins the incident as a repro.

pub mod explorer;
pub mod oracle;
pub mod repro;
pub mod shrink;
pub mod space;
pub mod trial;

pub use explorer::{ExploreReport, Explorer, ExplorerOpts, Failure};
pub use oracle::{
    check_arbiter, config_audit_complete, no_evict_without_violation, no_model_drift,
    shed_order_respects_tiers, DecisionContext, Violation,
};
pub use repro::Repro;
pub use shrink::{shrink as shrink_plan, ShrinkResult};
pub use space::{FaultSpace, Span, TrialPlan};
pub use trial::{
    knob_commands, TrialContext, TrialOutcome, DRIFT_LATENCY_US, DRIFT_MIN_STREAK, KNOB_MENU_LEN,
    TRIAL_HORIZON_SECS,
};
