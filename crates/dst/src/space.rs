//! Declarative fault-space grammar and trial sampling.
//!
//! A [`FaultSpace`] describes *ranges* of faults the explorer may inject;
//! [`FaultSpace::sample`] collapses it into one fully-determined
//! [`TrialPlan`] from a single seed. Everything downstream (fault plan,
//! schedule perturbation, scenario size) derives from the plan's integer
//! fields, so a plan round-trips losslessly through the repro file format
//! and replays byte-identically.

use simnet::{FaultPlan, SimTime};
use visapp::load::SplitMix64;
use visapp::{CLIENT_HOST, SERVER_HOST};

/// Inclusive integer range `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    pub lo: u64,
    pub hi: u64,
}

impl Span {
    pub const fn new(lo: u64, hi: u64) -> Self {
        Span { lo, hi }
    }

    pub const fn fixed(v: u64) -> Self {
        Span { lo: v, hi: v }
    }

    pub fn sample(&self, rng: &mut SplitMix64) -> u64 {
        rng.range(self.lo, self.hi)
    }
}

/// The fault-space grammar: which faults trials may draw, and from what
/// ranges. The default space exercises every injection mechanism the
/// simnet kernel offers — loss, jitter, link-down windows, host
/// crash/restart — plus the kernel's schedule-perturbation hook.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpace {
    /// Perturb same-timestamp delivery order (kernel `DrainMode::Explore`).
    pub perturb_schedule: bool,
    /// Bounded additive skew on timer fires, microseconds.
    pub timer_skew_us: Span,
    /// Per-message loss probability, percent (applied both directions).
    pub loss_pct: Span,
    /// Max extra per-message delay, microseconds.
    pub jitter_us: Span,
    /// How many link-down windows to cut.
    pub down_windows: Span,
    /// Window start, milliseconds.
    pub down_start_ms: Span,
    /// Window length, milliseconds.
    pub down_len_ms: Span,
    /// Chance (percent) that the server crashes at all.
    pub crash_pct: u64,
    /// Crash time, milliseconds.
    pub crash_at_ms: Span,
    /// Chance (percent) that an injected crash restarts.
    pub restart_pct: u64,
    /// Restart delay after the crash, milliseconds.
    pub restart_after_ms: Span,
    /// Images the client fetches (kept >= 2 so the shared profiling
    /// scenario stays identical across trials).
    pub n_images: Span,
    /// Client request timeout, milliseconds. Small values race
    /// retransmissions against merely-late replies — the regime the
    /// reply dedup guard exists for.
    pub timeout_ms: Span,
    /// Overload axis: how many arrival-rate surge windows to inject.
    /// Non-zero windows route the trial through the cluster-arbiter
    /// storm instead of the single-app scenario.
    pub surge_windows: Span,
    /// Surge window start, milliseconds.
    pub surge_start_ms: Span,
    /// Surge window length, milliseconds.
    pub surge_len_ms: Span,
    /// Arrival-rate multiplier during a surge, tenths (30 = 3×).
    pub surge_factor_x10: Span,
    /// Overload axis: how many host-capacity dip windows to inject.
    pub dip_windows: Span,
    /// Dip window start, milliseconds.
    pub dip_start_ms: Span,
    /// Dip window length, milliseconds.
    pub dip_len_ms: Span,
    /// Capacity remaining during the dip, percent of nominal.
    pub dip_floor_pct: Span,
    /// Knob-mutation axis: how many live control-plane commands to
    /// dispatch mid-trial (drawn from the menu in
    /// [`crate::trial::knob_commands`]).
    pub knob_cmds: Span,
    /// Command dispatch time, milliseconds.
    pub knob_at_ms: Span,
    /// Which menu entry the command exercises (interpreted modulo the
    /// menu length, so any integer is a valid draw).
    pub knob_kind: Span,
    /// Command magnitude, percent — each menu entry scales this into its
    /// knob's safe range.
    pub knob_mag_pct: Span,
    /// Model-drift axis: sustained-drift threshold for the post-run
    /// refine ingest, thousandths (500 = EWMA residual 0.5). Zero (the
    /// default) disarms refinement entirely — the trial runs exactly as
    /// it would have before the axis existed. Non-zero arms the
    /// [`adapt_core::refine::RefineEngine`] fold over the trial bus and
    /// the `model_drift` oracle over its alarms; on `--cfg dst_drift`
    /// builds it additionally plants the live latency spike the engine
    /// must catch ([`crate::trial::DRIFT_LATENCY_US`]).
    pub drift_threshold_x1000: Span,
}

impl Default for FaultSpace {
    fn default() -> Self {
        FaultSpace {
            perturb_schedule: true,
            timer_skew_us: Span::new(0, 400),
            loss_pct: Span::new(0, 20),
            jitter_us: Span::new(0, 3_000),
            down_windows: Span::new(0, 1),
            down_start_ms: Span::new(200, 3_000),
            down_len_ms: Span::new(100, 800),
            crash_pct: 25,
            crash_at_ms: Span::new(300, 2_500),
            restart_pct: 75,
            restart_after_ms: Span::new(200, 1_500),
            n_images: Span::new(2, 4),
            timeout_ms: Span::new(10, 250),
            // The overload axis is off by default. A zero-width span
            // consumes no RNG state (`range(0, 0)` short-circuits), so
            // plans sampled from the default space are byte-identical to
            // plans sampled before the axis existed.
            surge_windows: Span::fixed(0),
            surge_start_ms: Span::fixed(0),
            surge_len_ms: Span::fixed(0),
            surge_factor_x10: Span::fixed(0),
            dip_windows: Span::fixed(0),
            dip_start_ms: Span::fixed(0),
            dip_len_ms: Span::fixed(0),
            dip_floor_pct: Span::fixed(0),
            // The knob-mutation axis is likewise off by default (and
            // RNG-neutral when off): legacy plans stay byte-identical.
            knob_cmds: Span::fixed(0),
            knob_at_ms: Span::fixed(0),
            knob_kind: Span::fixed(0),
            knob_mag_pct: Span::fixed(0),
            // The model-drift axis is off by default (and RNG-neutral
            // when off): legacy plans stay byte-identical.
            drift_threshold_x1000: Span::fixed(0),
        }
    }
}

impl FaultSpace {
    /// A quiet space: no faults, no perturbation. Useful as a baseline
    /// and for cross-drain digest checks.
    pub fn quiet() -> Self {
        FaultSpace {
            perturb_schedule: false,
            timer_skew_us: Span::fixed(0),
            loss_pct: Span::fixed(0),
            jitter_us: Span::fixed(0),
            down_windows: Span::fixed(0),
            down_start_ms: Span::fixed(0),
            down_len_ms: Span::fixed(0),
            crash_pct: 0,
            crash_at_ms: Span::fixed(0),
            restart_pct: 0,
            restart_after_ms: Span::fixed(0),
            n_images: Span::fixed(2),
            timeout_ms: Span::fixed(250),
            surge_windows: Span::fixed(0),
            surge_start_ms: Span::fixed(0),
            surge_len_ms: Span::fixed(0),
            surge_factor_x10: Span::fixed(0),
            dip_windows: Span::fixed(0),
            dip_start_ms: Span::fixed(0),
            dip_len_ms: Span::fixed(0),
            dip_floor_pct: Span::fixed(0),
            knob_cmds: Span::fixed(0),
            knob_at_ms: Span::fixed(0),
            knob_kind: Span::fixed(0),
            knob_mag_pct: Span::fixed(0),
            drift_threshold_x1000: Span::fixed(0),
        }
    }

    /// The overload space: no network faults, only saturating load —
    /// arrival-rate surges and host-capacity dips — driven through the
    /// cluster-arbiter storm. Every trial sampled from this space runs
    /// the multi-application path ([`TrialPlan::has_overload`]).
    pub fn overload() -> Self {
        FaultSpace {
            surge_windows: Span::new(1, 2),
            surge_start_ms: Span::new(50, 500),
            surge_len_ms: Span::new(100, 400),
            surge_factor_x10: Span::new(20, 50),
            dip_windows: Span::new(0, 1),
            dip_start_ms: Span::new(200, 700),
            dip_len_ms: Span::new(200, 500),
            dip_floor_pct: Span::new(30, 70),
            ..FaultSpace::quiet()
        }
    }

    /// The knob-mutation space: the default fault grammar plus live
    /// control-plane commands — seeded `Command` schedules that retune
    /// steering dwell, scheduler preferences, retry backoff, and breaker
    /// thresholds (or reset the breaker outright) while the faults play
    /// out. Every mutation must surface as an audit event
    /// ([`crate::oracle::config_audit_complete`]).
    pub fn knobs() -> Self {
        FaultSpace {
            knob_cmds: Span::new(1, 4),
            knob_at_ms: Span::new(100, 4_000),
            // Interpreted modulo the menu length; spanning two full
            // cycles keeps every entry reachable whatever the menu size.
            knob_kind: Span::new(0, 2 * crate::trial::KNOB_MENU_LEN - 1),
            knob_mag_pct: Span::new(0, 100),
            ..FaultSpace::default()
        }
    }

    /// The model-drift space: schedule perturbation and workload-size
    /// variation (so the shrinker has something to strip), no network
    /// faults (a lossy link slows real responses and would trip the
    /// drift oracle for honest reasons on a correct build), and the
    /// refine engine armed at a sampled threshold. On `--cfg dst_drift`
    /// builds every trial from this space plants the live latency spike;
    /// on correct builds the same plans replay clean.
    pub fn drift() -> Self {
        FaultSpace {
            perturb_schedule: true,
            timer_skew_us: Span::new(0, 400),
            n_images: Span::new(2, 4),
            drift_threshold_x1000: Span::new(250, 600),
            ..FaultSpace::quiet()
        }
    }

    /// Collapse the space into one concrete trial, deterministically from
    /// `trial_seed`. The same seed over the same space always yields the
    /// same plan.
    pub fn sample(&self, trial_seed: u64) -> TrialPlan {
        let mut rng = SplitMix64::new(trial_seed ^ 0xD57E_5EED_0A11_F00D);
        let schedule_seed = if self.perturb_schedule {
            // Non-zero: seed 0 means "identity schedule" to the kernel.
            rng.next_u64() | 1
        } else {
            0
        };
        let timer_skew_us = self.timer_skew_us.sample(&mut rng);
        let loss_pct = self.loss_pct.sample(&mut rng);
        let jitter_us = self.jitter_us.sample(&mut rng);
        let mut down = Vec::new();
        for _ in 0..self.down_windows.sample(&mut rng) {
            let start = self.down_start_ms.sample(&mut rng);
            let len = self.down_len_ms.sample(&mut rng).max(1);
            down.push((start, start + len));
        }
        let mut crash_at_ms = 0;
        let mut restart_at_ms = 0;
        if rng.range(0, 99) < self.crash_pct {
            crash_at_ms = self.crash_at_ms.sample(&mut rng).max(1);
            if rng.range(0, 99) < self.restart_pct {
                restart_at_ms = crash_at_ms + self.restart_after_ms.sample(&mut rng).max(1);
            }
        }
        let n_images = self.n_images.sample(&mut rng).max(2);
        let timeout_ms = self.timeout_ms.sample(&mut rng).max(1);
        // Overload draws come last so older spaces (all spans fixed at
        // zero, consuming no state) sample bit-identical plans.
        let mut surges = Vec::new();
        for _ in 0..self.surge_windows.sample(&mut rng) {
            let start = self.surge_start_ms.sample(&mut rng);
            let len = self.surge_len_ms.sample(&mut rng).max(1);
            let factor = self.surge_factor_x10.sample(&mut rng).max(11);
            surges.push((start, start + len, factor));
        }
        let mut dips = Vec::new();
        for _ in 0..self.dip_windows.sample(&mut rng) {
            let start = self.dip_start_ms.sample(&mut rng);
            let len = self.dip_len_ms.sample(&mut rng).max(1);
            let floor = self.dip_floor_pct.sample(&mut rng).clamp(5, 95);
            dips.push((start, start + len, floor));
        }
        // Knob draws come last, after the overload axis, for the same
        // reason: spaces without the axis consume no RNG state here.
        let mut knobs = Vec::new();
        for _ in 0..self.knob_cmds.sample(&mut rng) {
            let at = self.knob_at_ms.sample(&mut rng).max(1);
            let kind = self.knob_kind.sample(&mut rng);
            let mag = self.knob_mag_pct.sample(&mut rng).min(100);
            knobs.push((at, kind, mag));
        }
        // The drift draw comes last, after the knob axis, for the same
        // reason: spaces without the axis consume no RNG state here.
        let drift_threshold_x1000 = self.drift_threshold_x1000.sample(&mut rng);
        TrialPlan {
            trial_seed,
            schedule_seed,
            timer_skew_us,
            loss_pct,
            jitter_us,
            down,
            crash_at_ms,
            restart_at_ms,
            n_images,
            timeout_ms,
            surges,
            dips,
            knobs,
            drift_threshold_x1000,
        }
    }
}

/// One fully-determined trial: every fault and perturbation pinned to an
/// integer. Serialized verbatim into repro files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialPlan {
    /// The seed this plan was sampled from (also seeds the fault RNG).
    pub trial_seed: u64,
    /// Kernel schedule-perturbation seed; 0 = identity schedule.
    pub schedule_seed: u64,
    /// Kernel timer-skew bound, microseconds.
    pub timer_skew_us: u64,
    /// Loss probability, percent, both directions.
    pub loss_pct: u64,
    /// Max jitter, microseconds, both directions.
    pub jitter_us: u64,
    /// Link-down windows `(start_ms, end_ms)`.
    pub down: Vec<(u64, u64)>,
    /// Server crash time in ms; 0 = no crash.
    pub crash_at_ms: u64,
    /// Server restart time in ms; 0 = never restarts (if crashed).
    pub restart_at_ms: u64,
    /// Images the client fetches.
    pub n_images: u64,
    /// Client request timeout, milliseconds.
    pub timeout_ms: u64,
    /// Arrival-rate surge windows `(start_ms, end_ms, factor_x10)`.
    /// Non-empty surges or dips route the trial through the arbiter
    /// storm.
    pub surges: Vec<(u64, u64, u64)>,
    /// Host-capacity dip windows `(start_ms, end_ms, floor_pct)`.
    pub dips: Vec<(u64, u64, u64)>,
    /// Live control-plane commands `(at_ms, menu_kind, magnitude_pct)`,
    /// decoded by [`crate::trial::knob_commands`].
    pub knobs: Vec<(u64, u64, u64)>,
    /// Refine-engine sustained-drift threshold in thousandths; 0 disarms
    /// the post-run refine ingest (and, on `--cfg dst_drift` builds, the
    /// planted link skew).
    pub drift_threshold_x1000: u64,
}

impl TrialPlan {
    /// Whether this plan exercises the overload axis (and therefore runs
    /// the multi-application arbiter storm instead of the single-app
    /// adaptive scenario).
    pub fn has_overload(&self) -> bool {
        !self.surges.is_empty() || !self.dips.is_empty()
    }

    /// The simnet fault plan this trial installs, or `None` when the plan
    /// carries no network/host faults at all.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        if self.loss_pct == 0
            && self.jitter_us == 0
            && self.down.is_empty()
            && self.crash_at_ms == 0
        {
            return None;
        }
        let mut fp = FaultPlan::new(self.trial_seed ^ 0xFA17_FA17);
        if self.loss_pct > 0 {
            fp = fp.with_loss(CLIENT_HOST, SERVER_HOST, self.loss_pct as f64 / 100.0);
        }
        if self.jitter_us > 0 {
            fp = fp.with_jitter(CLIENT_HOST, SERVER_HOST, self.jitter_us);
        }
        for &(start, end) in &self.down {
            fp = fp.with_link_down(
                CLIENT_HOST,
                SERVER_HOST,
                SimTime::from_ms(start),
                SimTime::from_ms(end),
            );
        }
        if self.crash_at_ms > 0 {
            let restart = (self.restart_at_ms > 0).then(|| SimTime::from_ms(self.restart_at_ms));
            fp = fp.with_crash(SERVER_HOST, SimTime::from_ms(self.crash_at_ms), restart);
        }
        Some(fp)
    }

    /// A crude size measure the shrinker drives toward zero: the sum of
    /// everything that distinguishes this plan from the quiet baseline
    /// (for the timeout, distance below the default 250 ms).
    pub fn weight(&self) -> u64 {
        (self.schedule_seed != 0) as u64
            + self.timer_skew_us
            + self.loss_pct
            + self.jitter_us
            + 10 * self.down.len() as u64
            + 10 * (self.crash_at_ms != 0) as u64
            + (self.n_images - 2)
            + 250u64.saturating_sub(self.timeout_ms)
            + 10 * self.surges.len() as u64
            + 10 * self.dips.len() as u64
            + 5 * self.knobs.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic() {
        let space = FaultSpace::default();
        assert_eq!(space.sample(1234), space.sample(1234));
        // Different seeds explore different corners (overwhelmingly).
        assert_ne!(space.sample(1), space.sample(2));
    }

    #[test]
    fn samples_respect_ranges() {
        let space = FaultSpace::default();
        for seed in 0..200 {
            let p = space.sample(seed);
            assert!(p.loss_pct <= space.loss_pct.hi);
            assert!(p.jitter_us <= space.jitter_us.hi);
            assert!(p.timer_skew_us <= space.timer_skew_us.hi);
            assert!(p.down.len() as u64 <= space.down_windows.hi);
            assert!((2..=4).contains(&p.n_images));
            assert!((10..=250).contains(&p.timeout_ms));
            assert_ne!(p.schedule_seed, 0, "perturbing space never emits identity seed");
            for &(s, e) in &p.down {
                assert!(e > s, "down window must be non-empty");
            }
            if p.restart_at_ms != 0 {
                assert!(p.restart_at_ms > p.crash_at_ms, "restart follows crash");
            }
        }
    }

    #[test]
    fn quiet_space_yields_weightless_faultless_plans() {
        let p = FaultSpace::quiet().sample(99);
        assert_eq!(p.weight(), 0);
        assert!(p.fault_plan().is_none());
        assert!(!p.has_overload());
    }

    #[test]
    fn default_space_never_draws_overload() {
        for seed in 0..100 {
            let p = FaultSpace::default().sample(seed);
            assert!(p.surges.is_empty() && p.dips.is_empty());
            assert!(p.knobs.is_empty(), "the knob axis is opt-in");
        }
    }

    #[test]
    fn knob_space_samples_respect_ranges() {
        let space = FaultSpace::knobs();
        for seed in 0..200 {
            let p = space.sample(seed);
            assert!((1..=4).contains(&p.knobs.len()), "knob space always injects a command");
            for &(at, kind, mag) in &p.knobs {
                assert!((100..=4_000).contains(&at));
                assert!(kind < 2 * crate::trial::KNOB_MENU_LEN);
                assert!(mag <= 100);
            }
            assert!(p.weight() >= 5, "knob commands weigh in for the shrinker");
        }
    }

    #[test]
    fn knob_axis_is_rng_neutral_for_legacy_plans() {
        // The knob draws come last and a zero-width span consumes no RNG
        // state, so the default space samples exactly what the knob space
        // samples minus the commands — the shared fault prefix is
        // untouched by the axis existing.
        for seed in 0..100 {
            let legacy = FaultSpace::default().sample(seed);
            let knobbed = FaultSpace::knobs().sample(seed);
            let stripped = TrialPlan { knobs: Vec::new(), ..knobbed };
            assert_eq!(legacy, stripped, "knob draws must not perturb the fault prefix");
        }
    }

    #[test]
    fn drift_axis_is_rng_neutral_for_legacy_plans() {
        // Like the knob axis: the drift draw comes last and a zero-width
        // span consumes no RNG state, so disarming the axis reproduces
        // the exact plans sampled before the axis existed.
        for seed in 0..100 {
            let armed = FaultSpace::drift().sample(seed);
            let legacy =
                FaultSpace { drift_threshold_x1000: Span::fixed(0), ..FaultSpace::drift() }
                    .sample(seed);
            let stripped = TrialPlan { drift_threshold_x1000: 0, ..armed };
            assert_eq!(legacy, stripped, "drift draw must not perturb the fault prefix");
        }
    }

    #[test]
    fn drift_space_samples_respect_ranges() {
        let space = FaultSpace::drift();
        for seed in 0..200 {
            let p = space.sample(seed);
            assert!(
                (250..=600).contains(&p.drift_threshold_x1000),
                "drift space always arms the engine at a sane threshold"
            );
            assert!(p.fault_plan().is_none(), "drift space carries no network faults");
            assert!(!p.has_overload());
            assert!((2..=4).contains(&p.n_images));
        }
        for seed in 0..20 {
            assert_eq!(
                FaultSpace::default().sample(seed).drift_threshold_x1000,
                0,
                "legacy spaces never arm the drift axis"
            );
        }
    }

    #[test]
    fn overload_space_samples_respect_ranges() {
        let space = FaultSpace::overload();
        for seed in 0..200 {
            let p = space.sample(seed);
            assert!(p.has_overload(), "overload space always injects at least one surge");
            assert!(p.fault_plan().is_none(), "overload space carries no network faults");
            assert!((1..=2).contains(&p.surges.len()));
            for &(s, e, f) in &p.surges {
                assert!(e > s, "surge window must be non-empty");
                assert!((11..=50).contains(&f), "surge factor stays a genuine multiplier");
            }
            for &(s, e, floor) in &p.dips {
                assert!(e > s, "dip window must be non-empty");
                assert!((5..=95).contains(&floor));
            }
            assert!(p.weight() >= 10, "overload windows weigh in for the shrinker");
        }
    }
}
