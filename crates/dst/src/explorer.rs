//! The explorer: a model-checker-lite driving thousands of seeded trials
//! through the fault space, checking every oracle, cross-checking drain
//! modes, and shrinking failures to minimal repros.

use visapp::load::SplitMix64;

use crate::oracle::Violation;
use crate::repro::Repro;
use crate::shrink::{self, ShrinkResult};
use crate::space::{FaultSpace, TrialPlan};
use crate::trial::{Fnv, TrialContext};

/// Explorer configuration.
#[derive(Debug, Clone)]
pub struct ExplorerOpts {
    /// Seeds the per-trial seed stream: same master seed, same trials.
    pub master_seed: u64,
    /// Trials to run (the run also stops at `max_failures`).
    pub trials: u64,
    /// The fault-space grammar to sample.
    pub space: FaultSpace,
    /// Every `n`th trial additionally replays under `Heap` and `Batched`
    /// drain and compares digests (0 disables the cross-check).
    pub cross_check_every: u64,
    /// Shrink each failure toward a minimal plan.
    pub shrink: bool,
    /// Candidate-trial budget per shrink.
    pub shrink_budget: u64,
    /// Stop after this many failing trials.
    pub max_failures: usize,
}

impl Default for ExplorerOpts {
    fn default() -> Self {
        ExplorerOpts {
            master_seed: 0xDA7A_5EED,
            trials: 1_000,
            space: FaultSpace::default(),
            cross_check_every: 16,
            shrink: true,
            shrink_budget: 64,
            max_failures: 4,
        }
    }
}

/// One failing trial, with its shrink result when shrinking ran.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Zero-based index of the failing trial.
    pub trial_index: u64,
    /// The plan as sampled.
    pub plan: TrialPlan,
    /// The first violation the oracles reported.
    pub violation: Violation,
    /// Behaviour digest of the failing trial as sampled.
    pub digest: u64,
    /// Shrinking outcome (absent when `shrink` was off).
    pub shrunk: Option<ShrinkResult>,
}

impl Failure {
    /// The repro to commit: the shrunken plan when available, the
    /// original otherwise, with the matching run's behaviour digest
    /// pinned so replays can assert bit-for-bit equality.
    pub fn repro(&self) -> Repro {
        let plan = self.shrunk.as_ref().map_or_else(|| self.plan.clone(), |s| s.plan.clone());
        let digest = self.shrunk.as_ref().and_then(|s| s.digest).unwrap_or(self.digest);
        Repro::new(plan, self.violation.kind(), &self.violation.to_string()).with_digest(digest)
    }
}

/// What an explorer run found.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Trials executed (excluding shrink candidates and cross-checks).
    pub trials_run: u64,
    /// Fold of every trial digest, in order: the determinism anchor —
    /// two runs with the same options must produce the same value.
    pub digest: u64,
    /// Failing trials, in discovery order.
    pub failures: Vec<Failure>,
}

impl ExploreReport {
    pub fn found_violation(&self) -> bool {
        !self.failures.is_empty()
    }
}

/// The explorer itself. Construction is cheap; all shared trial state
/// lives in the [`TrialContext`] passed to [`Explorer::run`].
#[derive(Debug, Clone, Default)]
pub struct Explorer {
    pub opts: ExplorerOpts,
}

impl Explorer {
    pub fn new(opts: ExplorerOpts) -> Self {
        Explorer { opts }
    }

    /// Run the configured trials. Deterministic: the same options over
    /// the same context always produce the same report (digest included).
    pub fn run(&self, ctx: &TrialContext) -> ExploreReport {
        let o = &self.opts;
        let mut seeds = SplitMix64::new(o.master_seed);
        let mut digest = Fnv::new();
        let mut failures: Vec<Failure> = Vec::new();
        let mut trials_run = 0;
        for i in 0..o.trials {
            let plan = o.space.sample(seeds.next_u64());
            let out = ctx.run(&plan);
            trials_run += 1;
            digest.write_u64(out.digest);
            let trial_digest = out.digest;
            let mut violation = out.violations.into_iter().next();
            if violation.is_none() && o.cross_check_every != 0 && i % o.cross_check_every == 0 {
                // Cross-drain oracle: the identity variant of this plan
                // must behave identically under heap, batched, and the
                // sharded parallel drain.
                let heap = ctx.run_with_drain(&plan, simnet::DrainMode::Heap);
                let batched = ctx.run_with_drain(&plan, simnet::DrainMode::Batched);
                let sharded =
                    ctx.run_with_drain(&plan, simnet::DrainMode::Sharded { threads: 0, shards: 0 });
                digest.write_u64(heap.digest);
                digest.write_u64(batched.digest);
                digest.write_u64(sharded.digest);
                if heap.digest != batched.digest {
                    violation = Some(Violation::DrainDivergence {
                        heap: heap.digest,
                        batched: batched.digest,
                    });
                } else if sharded.digest != batched.digest {
                    violation = Some(Violation::ShardDivergence {
                        sharded: sharded.digest,
                        batched: batched.digest,
                    });
                }
            }
            if let Some(violation) = violation {
                let shrunk = (o.shrink && violation.kind() != "drain_divergence")
                    .then(|| shrink::shrink(ctx, &plan, violation.kind(), o.shrink_budget));
                failures.push(Failure {
                    trial_index: i,
                    plan,
                    violation,
                    digest: trial_digest,
                    shrunk,
                });
                if failures.len() >= o.max_failures {
                    break;
                }
            }
        }
        ExploreReport { trials_run, digest: digest.finish(), failures }
    }
}
