//! Invariant oracles evaluated over the observability bus.
//!
//! Each oracle reads one slice of the event stream a finished trial left
//! on its [`obs::Obs`] bus and returns the first violation it finds.
//! Oracles are pure functions of the bus (plus static context for
//! decision validity), so they run identically on a live trial and on a
//! replayed repro.

use std::collections::{BTreeSet, HashSet};
use std::fmt;

use obs::{EventFilter, Obs};

/// One invariant violation. `kind()` is the stable machine name used by
/// the shrinker (a candidate counts as "still failing" only if the same
/// kind reappears) and by repro files.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// The same wire reply was applied more than once
    /// (`(image, wire_round)` repeated in the App `round` stream).
    DuplicateApply { image: u64, wire_round: u64 },
    /// The circuit-breaker event stream is illegal: a close without a
    /// matching earlier open.
    BreakerIllegal { at_us: u64, opens: u64, closes: u64 },
    /// Steering degrade/recover events out of order (recover first, or
    /// two of the same in a row).
    DegradeOrder { at_us: u64, kind_seen: String },
    /// The scheduler decided on a configuration outside the performance
    /// database, or at a preference rank deeper than the list.
    InvalidDecision { at_us: u64, config: String, rank: u64 },
    /// The same trial produced different digests under heap vs batched
    /// drain order.
    DrainDivergence { heap: u64, batched: u64 },
    /// The same trial produced different digests under the sharded
    /// parallel drain vs the sequential batched drain.
    ShardDivergence { sharded: u64, batched: u64 },
    /// Overload shedding took a victim from a tier more important than
    /// the least-important tier still running — shedding must drain the
    /// lowest-priority (numerically highest) occupied tier first.
    ShedOrder { at_us: u64, app: u64, tier: u64, running_tier: u64 },
    /// The arbiter evicted an app that was never flagged for a contract
    /// violation — eviction is the end of the policing ladder, never a
    /// first resort.
    EvictWithoutViolation { at_us: u64, app: u64 },
    /// The control plane's audit trail is incomplete or malformed: an
    /// audit event is missing a required field, a per-key config version
    /// failed to increase, or a decision was stamped with a preference
    /// version no audited mutation ever produced.
    ConfigAuditIncomplete { at_us: u64, detail: String },
    /// The refine engine raised a sustained-drift alarm: measured QoS
    /// drifted past the threshold away from the performance database's
    /// predictions for a configuration slice. On a correct build with an
    /// honest profile this never happens; the `dst_drift` canary plants
    /// the live latency spike that makes it fire.
    ModelDrift { at_us: u64, config: String, residual_x1000: u64 },
}

impl Violation {
    /// Stable machine-readable name of the violated invariant.
    pub fn kind(&self) -> &'static str {
        match self {
            Violation::DuplicateApply { .. } => "duplicate_apply",
            Violation::BreakerIllegal { .. } => "breaker_illegal",
            Violation::DegradeOrder { .. } => "degrade_order",
            Violation::InvalidDecision { .. } => "invalid_decision",
            Violation::DrainDivergence { .. } => "drain_divergence",
            Violation::ShardDivergence { .. } => "shard_divergence",
            Violation::ShedOrder { .. } => "shed_order",
            Violation::EvictWithoutViolation { .. } => "evict_without_violation",
            Violation::ConfigAuditIncomplete { .. } => "config_audit_incomplete",
            Violation::ModelDrift { .. } => "model_drift",
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::DuplicateApply { image, wire_round } => {
                write!(f, "duplicate_apply: image {image} wire round {wire_round} applied twice")
            }
            Violation::BreakerIllegal { at_us, opens, closes } => write!(
                f,
                "breaker_illegal: close at t={at_us}us with {opens} opens / {closes} closes"
            ),
            Violation::DegradeOrder { at_us, kind_seen } => {
                write!(f, "degrade_order: unexpected '{kind_seen}' at t={at_us}us")
            }
            Violation::InvalidDecision { at_us, config, rank } => {
                write!(f, "invalid_decision: config '{config}' rank {rank} at t={at_us}us")
            }
            Violation::DrainDivergence { heap, batched } => {
                write!(f, "drain_divergence: heap digest {heap:#x} != batched {batched:#x}")
            }
            Violation::ShardDivergence { sharded, batched } => {
                write!(f, "shard_divergence: sharded digest {sharded:#x} != batched {batched:#x}")
            }
            Violation::ShedOrder { at_us, app, tier, running_tier } => write!(
                f,
                "shed_order: app {app} (tier {tier}) shed at t={at_us}us while tier \
                 {running_tier} was still running"
            ),
            Violation::EvictWithoutViolation { at_us, app } => {
                write!(f, "evict_without_violation: app {app} evicted at t={at_us}us clean")
            }
            Violation::ConfigAuditIncomplete { at_us, detail } => {
                write!(f, "config_audit_incomplete: {detail} at t={at_us}us")
            }
            Violation::ModelDrift { at_us, config, residual_x1000 } => write!(
                f,
                "model_drift: config '{config}' residual {residual_x1000}/1000 at t={at_us}us"
            ),
        }
    }
}

/// Static context the decision-validity oracle needs: what the
/// performance database and preference list actually contain.
#[derive(Debug, Clone)]
pub struct DecisionContext {
    /// `Configuration::key()` of every configuration in the database.
    pub valid_configs: BTreeSet<String>,
    /// Length of the preference list (valid ranks are `0..depth`).
    pub preference_depth: u64,
}

/// No reply is ever *applied* twice: each `(image, wire_round)` pair
/// appears at most once in the App `round` event stream. A re-applied
/// duplicate repeats the pair even though the client's sequential round
/// counter keeps incrementing.
pub fn no_duplicate_apply(obs: &Obs) -> Option<Violation> {
    let filter = EventFilter::any().source(obs::Source::App).kind("round");
    let mut seen = HashSet::new();
    for ev in obs.events_filtered(&filter) {
        let image = ev.u64_field("image")?;
        let wire_round = ev.u64_field("wire_round")?;
        if !seen.insert((image, wire_round)) {
            return Some(Violation::DuplicateApply { image, wire_round });
        }
    }
    None
}

/// The circuit-breaker event stream is prefix-legal: at every prefix,
/// closes never exceed opens. Consecutive opens are legal (a failed
/// half-open probe re-opens without an intervening close); a close with
/// no outstanding open is not.
pub fn breaker_legal(obs: &Obs) -> Option<Violation> {
    let filter =
        EventFilter::any().source(obs::Source::App).kind("breaker_open").kind("breaker_close");
    let (mut opens, mut closes) = (0u64, 0u64);
    for ev in obs.events_filtered(&filter) {
        match ev.kind {
            "breaker_open" => opens += 1,
            "breaker_close" => {
                closes += 1;
                if closes > opens {
                    return Some(Violation::BreakerIllegal { at_us: ev.at_us, opens, closes });
                }
            }
            _ => {}
        }
    }
    None
}

/// Steering degrade/recover strictly alternate, starting with degrade:
/// the runtime only recovers from a degraded state and only degrades from
/// a non-degraded one.
pub fn degrade_recover_order(obs: &Obs) -> Option<Violation> {
    let mut degraded = false;
    for ev in obs.events_filtered(&EventFilter::degrade_recover()) {
        match ev.kind {
            "degrade" if degraded => {
                return Some(Violation::DegradeOrder {
                    at_us: ev.at_us,
                    kind_seen: "degrade".into(),
                })
            }
            "recover" if !degraded => {
                return Some(Violation::DegradeOrder {
                    at_us: ev.at_us,
                    kind_seen: "recover".into(),
                })
            }
            "degrade" => degraded = true,
            "recover" => degraded = false,
            _ => {}
        }
    }
    None
}

/// Every scheduler decision names a configuration the performance
/// database actually holds, at a rank within the preference list.
pub fn decisions_valid(obs: &Obs, ctx: &DecisionContext) -> Option<Violation> {
    for ev in obs.events_filtered(&EventFilter::decisions()) {
        let config = ev.str_field("config").unwrap_or("<missing>").to_string();
        let rank = ev.u64_field("rank").unwrap_or(u64::MAX);
        if !ctx.valid_configs.contains(&config) || rank >= ctx.preference_depth {
            return Some(Violation::InvalidDecision { at_us: ev.at_us, config, rank });
        }
    }
    None
}

/// Overload shedding drains the least-important occupied tier first:
/// replaying the arbiter event stream (admit/demote/recover grow the
/// running set, done/evict/shed remove from it), every `shed` victim's
/// tier must be >= every tier still running at that instant. Tiers are
/// numeric priority — 0 (gold) is most important and shed last.
pub fn shed_order_respects_tiers(obs: &Obs) -> Option<Violation> {
    let filter = EventFilter::any().source(obs::Source::Arbiter);
    let mut running: std::collections::BTreeMap<u64, u64> = Default::default();
    for ev in obs.events_filtered(&filter) {
        let app = || ev.u64_field("app");
        match ev.kind {
            "admit" | "demote" | "recover" => {
                if let (Some(app), Some(tier)) = (app(), ev.u64_field("tier")) {
                    running.insert(app, tier);
                }
            }
            "done" | "evict" => {
                if let Some(app) = app() {
                    running.remove(&app);
                }
            }
            "shed" => {
                let app = app()?;
                let tier = ev.u64_field("tier")?;
                let running_tier = running.values().copied().max().unwrap_or(tier);
                if tier < running_tier {
                    return Some(Violation::ShedOrder { at_us: ev.at_us, app, tier, running_tier });
                }
                running.remove(&app);
            }
            _ => {}
        }
    }
    None
}

/// Eviction is the end of the policing ladder: every `evict` event must
/// be preceded by at least one `violation` event for the same app.
pub fn no_evict_without_violation(obs: &Obs) -> Option<Violation> {
    let filter = EventFilter::any().source(obs::Source::Arbiter);
    let mut flagged = HashSet::new();
    for ev in obs.events_filtered(&filter) {
        match ev.kind {
            "violation" => {
                if let Some(app) = ev.u64_field("app") {
                    flagged.insert(app);
                }
            }
            "evict" => {
                let app = ev.u64_field("app")?;
                if !flagged.contains(&app) {
                    return Some(Violation::EvictWithoutViolation { at_us: ev.at_us, app });
                }
            }
            _ => {}
        }
    }
    None
}

/// The control plane's audit contract holds end to end:
///
/// 1. every `config_set` audit carries `key` and a `version` that
///    strictly increases per key (versions come from the underlying
///    `Adaptive` cell, so a repeat or regression means a lost mutation);
/// 2. every `config_reject` audit names the `key` and a `reason`;
/// 3. every scheduler decision stamped with a non-zero `pref_version`
///    traces back to an *earlier* audited `config_set` of
///    `scheduler.prefs` that produced exactly that version — a decision
///    influenced by an unaudited mutation is the violation this oracle
///    exists to catch.
///
/// On runs with an empty command schedule the stream holds no control
/// events and no version-stamped decisions, so the oracle passes
/// vacuously. Skipped (conservatively) if the event ring overflowed,
/// since an audit may then have been evicted rather than never emitted.
pub fn config_audit_complete(obs: &Obs) -> Option<Violation> {
    if obs.events_dropped() > 0 {
        return None;
    }
    let mut versions: std::collections::HashMap<String, u64> = Default::default();
    let mut prefs_versions = HashSet::new();
    let bad = |at_us: u64, detail: String| Some(Violation::ConfigAuditIncomplete { at_us, detail });
    for ev in obs.events() {
        match (ev.source, ev.kind) {
            (obs::Source::Control, "config_set") => {
                let Some(key) = ev.str_field("key") else {
                    return bad(ev.at_us, "config_set audit without a key".into());
                };
                let Some(version) = ev.u64_field("version") else {
                    return bad(ev.at_us, format!("config_set of '{key}' without a version"));
                };
                let last = versions.get(key).copied().unwrap_or(0);
                if version <= last {
                    return bad(
                        ev.at_us,
                        format!("config_set of '{key}' version {version} after {last}"),
                    );
                }
                versions.insert(key.to_string(), version);
                if key == "scheduler.prefs" {
                    prefs_versions.insert(version);
                }
            }
            (obs::Source::Control, "config_reject")
                if ev.str_field("key").is_none() || ev.str_field("reason").is_none() =>
            {
                return bad(ev.at_us, "config_reject audit without key/reason".into());
            }
            (obs::Source::Scheduler, "decide") => {
                if let Some(v) = ev.u64_field("pref_version") {
                    if v > 0 && !prefs_versions.contains(&v) {
                        return bad(
                            ev.at_us,
                            format!("decision under unaudited preference version {v}"),
                        );
                    }
                }
            }
            _ => {}
        }
    }
    None
}

/// The performance model tracks reality: the refine engine never raises
/// a sustained-drift alarm. Trials arm the engine post-run (see
/// [`crate::trial::TrialContext::run_with_drain`]), so its `refine.drift`
/// audit events sit on the same bus this oracle scans. Trials that never
/// armed refinement publish no refine events and pass vacuously.
pub fn no_model_drift(obs: &Obs) -> Option<Violation> {
    let filter = EventFilter::any().source(obs::Source::Refine).kind("drift");
    obs.events_filtered(&filter).into_iter().next().map(|ev| Violation::ModelDrift {
        at_us: ev.at_us,
        config: ev.str_field("config").unwrap_or_default().to_string(),
        residual_x1000: ev.u64_field("residual_x1000").unwrap_or(0),
    })
}

/// Run the arbiter-storm oracles, collecting the first violation of each
/// kind. Used by overload trials, whose event stream lives on
/// `Source::Arbiter` rather than the single-app sources.
pub fn check_arbiter(obs: &Obs) -> Vec<Violation> {
    [shed_order_respects_tiers(obs), no_evict_without_violation(obs)]
        .into_iter()
        .flatten()
        .collect()
}

/// Run every bus oracle, collecting the first violation of each kind.
pub fn check_all(obs: &Obs, ctx: &DecisionContext) -> Vec<Violation> {
    [
        no_duplicate_apply(obs),
        breaker_legal(obs),
        degrade_recover_order(obs),
        decisions_valid(obs, ctx),
        config_audit_complete(obs),
        no_model_drift(obs),
    ]
    .into_iter()
    .flatten()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::{Event, Source};

    fn ctx() -> DecisionContext {
        DecisionContext {
            valid_configs: ["dR=16:c=1:l=3".to_string()].into_iter().collect(),
            preference_depth: 2,
        }
    }

    fn round(obs: &Obs, at: u64, image: u64, wire_round: u64) {
        obs.publish(
            Event::new(at, Source::App, "round")
                .with("image", image)
                .with("round", wire_round)
                .with("wire_round", wire_round),
        );
    }

    #[test]
    fn clean_stream_passes_all_oracles() {
        let obs = Obs::new();
        round(&obs, 10, 0, 0);
        round(&obs, 20, 0, 1);
        obs.publish(Event::new(5, Source::App, "breaker_open"));
        obs.publish(Event::new(6, Source::App, "breaker_close"));
        obs.publish(Event::new(7, Source::Steering, "degrade"));
        obs.publish(Event::new(8, Source::Steering, "recover"));
        obs.publish(
            Event::new(9, Source::Scheduler, "decide")
                .with("config", "dR=16:c=1:l=3")
                .with("rank", 0u64),
        );
        assert!(check_all(&obs, &ctx()).is_empty());
    }

    #[test]
    fn duplicate_wire_round_is_caught() {
        let obs = Obs::new();
        round(&obs, 10, 0, 0);
        round(&obs, 20, 0, 0);
        let v = no_duplicate_apply(&obs).expect("must flag");
        assert_eq!(v.kind(), "duplicate_apply");
    }

    #[test]
    fn breaker_close_without_open_is_illegal() {
        let obs = Obs::new();
        obs.publish(Event::new(5, Source::App, "breaker_close"));
        assert_eq!(breaker_legal(&obs).expect("must flag").kind(), "breaker_illegal");
        // Re-open after a failed half-open probe is legal.
        let obs = Obs::new();
        obs.publish(Event::new(1, Source::App, "breaker_open"));
        obs.publish(Event::new(2, Source::App, "breaker_open"));
        obs.publish(Event::new(3, Source::App, "breaker_close"));
        assert!(breaker_legal(&obs).is_none());
    }

    #[test]
    fn recover_before_degrade_is_flagged() {
        let obs = Obs::new();
        obs.publish(Event::new(5, Source::Steering, "recover"));
        assert_eq!(degrade_recover_order(&obs).expect("must flag").kind(), "degrade_order");
        let obs = Obs::new();
        obs.publish(Event::new(5, Source::Steering, "degrade"));
        obs.publish(Event::new(6, Source::Steering, "degrade"));
        assert_eq!(degrade_recover_order(&obs).expect("must flag").kind(), "degrade_order");
    }

    fn arb(obs: &Obs, at: u64, kind: &'static str, app: u64, tier: u64) {
        obs.publish(Event::new(at, Source::Arbiter, kind).with("app", app).with("tier", tier));
    }

    #[test]
    fn tier_ordered_shedding_passes() {
        let obs = Obs::new();
        arb(&obs, 1, "admit", 0, 0);
        arb(&obs, 2, "admit", 1, 2);
        arb(&obs, 3, "admit", 2, 1);
        // Bronze first, then silver, then gold: legal.
        arb(&obs, 10, "shed", 1, 2);
        arb(&obs, 11, "shed", 2, 1);
        arb(&obs, 12, "shed", 0, 0);
        arb(&obs, 20, "recover", 0, 0);
        arb(&obs, 30, "done", 0, 0);
        assert!(check_arbiter(&obs).is_empty());
    }

    #[test]
    fn shedding_gold_past_running_bronze_is_flagged() {
        let obs = Obs::new();
        arb(&obs, 1, "admit", 0, 0);
        arb(&obs, 2, "admit", 1, 2);
        arb(&obs, 10, "shed", 0, 0);
        let v = shed_order_respects_tiers(&obs).expect("must flag");
        assert_eq!(v.kind(), "shed_order");
        assert!(matches!(v, Violation::ShedOrder { app: 0, tier: 0, running_tier: 2, .. }));
    }

    #[test]
    fn demotion_moves_an_app_into_the_shed_frontier() {
        let obs = Obs::new();
        arb(&obs, 1, "admit", 0, 0);
        arb(&obs, 2, "admit", 1, 1);
        // App 0 is demoted to bronze; shedding it before the silver app
        // is now legal.
        arb(&obs, 5, "demote", 0, 2);
        arb(&obs, 10, "shed", 0, 2);
        assert!(shed_order_respects_tiers(&obs).is_none());
    }

    #[test]
    fn clean_evict_is_flagged_and_policed_evict_passes() {
        let obs = Obs::new();
        arb(&obs, 1, "admit", 3, 1);
        arb(&obs, 9, "evict", 3, 1);
        let v = no_evict_without_violation(&obs).expect("must flag");
        assert_eq!(v.kind(), "evict_without_violation");

        let obs = Obs::new();
        arb(&obs, 1, "admit", 3, 1);
        obs.publish(Event::new(5, Source::Arbiter, "violation").with("app", 3u64));
        arb(&obs, 9, "evict", 3, 1);
        assert!(no_evict_without_violation(&obs).is_none());
    }

    fn set_audit(obs: &Obs, at: u64, key: &'static str, version: u64) {
        obs.publish(
            Event::new(at, Source::Control, "config_set").with("key", key).with("version", version),
        );
    }

    #[test]
    fn complete_audit_trail_passes() {
        let obs = Obs::new();
        set_audit(&obs, 10, "scheduler.prefs", 1);
        set_audit(&obs, 20, "client.retry.multiplier", 1);
        set_audit(&obs, 30, "scheduler.prefs", 2);
        obs.publish(
            Event::new(15, Source::Control, "config_reject")
                .with("key", "no.such.knob")
                .with("reason", "unknown_key"),
        );
        obs.publish(Event::new(40, Source::Scheduler, "decide").with("pref_version", 2u64));
        assert!(config_audit_complete(&obs).is_none());
        // Unstamped decisions (version 0 is never emitted) are fine too.
        obs.publish(Event::new(50, Source::Scheduler, "decide"));
        assert!(config_audit_complete(&obs).is_none());
    }

    #[test]
    fn version_regression_is_flagged() {
        let obs = Obs::new();
        set_audit(&obs, 10, "scheduler.prefs", 2);
        set_audit(&obs, 20, "scheduler.prefs", 2);
        let v = config_audit_complete(&obs).expect("must flag");
        assert_eq!(v.kind(), "config_audit_incomplete");
    }

    #[test]
    fn unaudited_preference_version_is_flagged() {
        // A decision stamped with a version no audit produced: the
        // mutation bypassed the router.
        let obs = Obs::new();
        set_audit(&obs, 10, "scheduler.prefs", 1);
        obs.publish(Event::new(40, Source::Scheduler, "decide").with("pref_version", 2u64));
        let v = config_audit_complete(&obs).expect("must flag");
        assert!(matches!(v, Violation::ConfigAuditIncomplete { at_us: 40, .. }));
        // The audit arriving only *after* the decision is equally a gap.
        let obs = Obs::new();
        obs.publish(Event::new(40, Source::Scheduler, "decide").with("pref_version", 1u64));
        set_audit(&obs, 50, "scheduler.prefs", 1);
        assert!(config_audit_complete(&obs).is_some());
    }

    #[test]
    fn malformed_audit_events_are_flagged() {
        let obs = Obs::new();
        obs.publish(Event::new(10, Source::Control, "config_set").with("version", 1u64));
        assert_eq!(
            config_audit_complete(&obs).expect("must flag").kind(),
            "config_audit_incomplete"
        );
        let obs = Obs::new();
        obs.publish(Event::new(10, Source::Control, "config_reject").with("key", "k"));
        assert!(config_audit_complete(&obs).is_some());
    }

    #[test]
    fn decision_outside_db_or_depth_is_flagged() {
        let obs = Obs::new();
        obs.publish(
            Event::new(9, Source::Scheduler, "decide").with("config", "bogus").with("rank", 0u64),
        );
        assert_eq!(decisions_valid(&obs, &ctx()).expect("must flag").kind(), "invalid_decision");
        let obs = Obs::new();
        obs.publish(
            Event::new(9, Source::Scheduler, "decide")
                .with("config", "dR=16:c=1:l=3")
                .with("rank", 7u64),
        );
        assert!(decisions_valid(&obs, &ctx()).is_some());
    }
}
