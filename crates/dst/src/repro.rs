//! Self-contained repro files.
//!
//! A repro records one failing [`TrialPlan`] plus the violated invariant,
//! as JSON, and replays verbatim: parsing the file and running the plan
//! reproduces the exact trial the explorer saw. The JSON is emitted and
//! parsed by hand — the plan is all integers, and keeping the format
//! dependency-free means a repro replays anywhere the crate builds.

use std::fmt::Write as _;

use crate::space::TrialPlan;

/// One shrunken failing trial, ready to commit under `repros/`.
#[derive(Debug, Clone, PartialEq)]
pub struct Repro {
    /// Format version (currently 1).
    pub version: u64,
    /// `Violation::kind()` of the invariant the plan violated.
    pub violation: String,
    /// Human-readable description of the original violation.
    pub detail: String,
    /// Behaviour digest of the (shrunken) failing trial, pinned so a
    /// replay can assert bit-for-bit equality, not just "same violation
    /// kind". Zero means unrecorded (legacy files).
    pub digest: u64,
    /// The (shrunken) plan to replay.
    pub plan: TrialPlan,
}

impl Repro {
    pub fn new(plan: TrialPlan, violation: &str, detail: &str) -> Self {
        Repro {
            version: 1,
            violation: violation.to_string(),
            detail: detail.to_string(),
            digest: 0,
            plan,
        }
    }

    /// Pin the failing trial's behaviour digest into the repro file.
    pub fn with_digest(mut self, digest: u64) -> Self {
        self.digest = digest;
        self
    }

    /// Serialize to the committed file format.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let p = &self.plan;
        let mut down = String::new();
        for (i, (a, b)) in p.down.iter().enumerate() {
            if i > 0 {
                down.push_str(", ");
            }
            let _ = write!(down, "[{a}, {b}]");
        }
        let triples = |list: &[(u64, u64, u64)]| {
            let mut s = String::new();
            for (i, (a, b, c)) in list.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "[{a}, {b}, {c}]");
            }
            s
        };
        let _ = write!(
            s,
            "{{\n  \"version\": {},\n  \"violation\": {},\n  \"detail\": {},\n  \"digest\": {},\n  \"plan\": {{\n",
            self.version,
            quote(&self.violation),
            quote(&self.detail),
            self.digest
        );
        let _ = writeln!(s, "    \"trial_seed\": {},", p.trial_seed);
        let _ = writeln!(s, "    \"schedule_seed\": {},", p.schedule_seed);
        let _ = writeln!(s, "    \"timer_skew_us\": {},", p.timer_skew_us);
        let _ = writeln!(s, "    \"loss_pct\": {},", p.loss_pct);
        let _ = writeln!(s, "    \"jitter_us\": {},", p.jitter_us);
        let _ = writeln!(s, "    \"down\": [{down}],");
        let _ = writeln!(s, "    \"crash_at_ms\": {},", p.crash_at_ms);
        let _ = writeln!(s, "    \"restart_at_ms\": {},", p.restart_at_ms);
        let _ = writeln!(s, "    \"n_images\": {},", p.n_images);
        let _ = writeln!(s, "    \"timeout_ms\": {},", p.timeout_ms);
        let _ = writeln!(s, "    \"surges\": [{}],", triples(&p.surges));
        let _ = writeln!(s, "    \"dips\": [{}],", triples(&p.dips));
        let _ = writeln!(s, "    \"knobs\": [{}],", triples(&p.knobs));
        let _ = writeln!(s, "    \"drift_threshold_x1000\": {}", p.drift_threshold_x1000);
        s.push_str("  }\n}\n");
        s
    }

    /// Parse a repro file. Strict about structure, lenient about
    /// whitespace and key order.
    pub fn from_json(text: &str) -> Result<Repro, String> {
        let mut p = Parser { b: text.as_bytes(), i: 0 };
        let mut version = None;
        let mut violation = None;
        let mut detail = String::new();
        // Legacy files carry no digest; zero means "not pinned".
        let mut digest = 0;
        let mut plan: Option<TrialPlan> = None;
        p.expect(b'{')?;
        loop {
            let key = p.string()?;
            p.expect(b':')?;
            match key.as_str() {
                "version" => version = Some(p.u64()?),
                "violation" => violation = Some(p.string()?),
                "detail" => detail = p.string()?,
                "digest" => digest = p.u64()?,
                "plan" => plan = Some(p.plan()?),
                other => return Err(format!("unknown key '{other}'")),
            }
            if !p.comma_or(b'}')? {
                break;
            }
        }
        p.end()?;
        let version = version.ok_or("missing 'version'")?;
        if version != 1 {
            return Err(format!("unsupported repro version {version}"));
        }
        Ok(Repro {
            version,
            violation: violation.ok_or("missing 'violation'")?,
            detail,
            digest,
            plan: plan.ok_or("missing 'plan'")?,
        })
    }
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Minimal scanner over the repro grammar: objects, `[a, b]` pair
/// arrays, unsigned integers, and escaped strings.
struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        match self.peek() {
            Some(got) if got == c => {
                self.i += 1;
                Ok(())
            }
            got => Err(format!("expected '{}' at byte {}, got {got:?}", c as char, self.i)),
        }
    }

    /// After a member: consume `,` (returning true) or `close`
    /// (returning false).
    fn comma_or(&mut self, close: u8) -> Result<bool, String> {
        match self.peek() {
            Some(b',') => {
                self.i += 1;
                Ok(true)
            }
            Some(got) if got == close => {
                self.i += 1;
                Ok(false)
            }
            got => Err(format!("expected ',' or '{}', got {got:?}", close as char)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let c = *self.b.get(self.i).ok_or("unterminated string")?;
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self.b.get(self.i).ok_or("unterminated escape")?;
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex =
                                self.b.get(self.i..self.i + 4).ok_or("truncated \\u escape")?;
                            self.i += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                        }
                        other => return Err(format!("unsupported escape '\\{}'", other as char)),
                    }
                }
                c => out.push(c as char),
            }
        }
    }

    fn u64(&mut self) -> Result<u64, String> {
        self.ws();
        let start = self.i;
        while self.i < self.b.len() && self.b[self.i].is_ascii_digit() {
            self.i += 1;
        }
        if start == self.i {
            return Err(format!("expected integer at byte {start}"));
        }
        std::str::from_utf8(&self.b[start..self.i])
            .map_err(|e| e.to_string())?
            .parse()
            .map_err(|e: std::num::ParseIntError| e.to_string())
    }

    /// `[[a, b], ...]` — the down-window list.
    fn pair_array(&mut self) -> Result<Vec<(u64, u64)>, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(out);
        }
        loop {
            self.expect(b'[')?;
            let a = self.u64()?;
            self.expect(b',')?;
            let b = self.u64()?;
            self.expect(b']')?;
            out.push((a, b));
            if !self.comma_or(b']')? {
                return Ok(out);
            }
        }
    }

    /// `[[a, b, c], ...]` — surge / dip window lists.
    fn triple_array(&mut self) -> Result<Vec<(u64, u64, u64)>, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(out);
        }
        loop {
            self.expect(b'[')?;
            let a = self.u64()?;
            self.expect(b',')?;
            let b = self.u64()?;
            self.expect(b',')?;
            let c = self.u64()?;
            self.expect(b']')?;
            out.push((a, b, c));
            if !self.comma_or(b']')? {
                return Ok(out);
            }
        }
    }

    fn plan(&mut self) -> Result<TrialPlan, String> {
        self.expect(b'{')?;
        let mut plan = TrialPlan {
            trial_seed: 0,
            schedule_seed: 0,
            timer_skew_us: 0,
            loss_pct: 0,
            jitter_us: 0,
            down: Vec::new(),
            crash_at_ms: 0,
            restart_at_ms: 0,
            n_images: 2,
            timeout_ms: 250,
            // Overload, knob, and drift axes default off so older repro
            // files (which lack the keys) keep parsing.
            surges: Vec::new(),
            dips: Vec::new(),
            knobs: Vec::new(),
            drift_threshold_x1000: 0,
        };
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            match key.as_str() {
                "trial_seed" => plan.trial_seed = self.u64()?,
                "schedule_seed" => plan.schedule_seed = self.u64()?,
                "timer_skew_us" => plan.timer_skew_us = self.u64()?,
                "loss_pct" => plan.loss_pct = self.u64()?,
                "jitter_us" => plan.jitter_us = self.u64()?,
                "down" => plan.down = self.pair_array()?,
                "crash_at_ms" => plan.crash_at_ms = self.u64()?,
                "restart_at_ms" => plan.restart_at_ms = self.u64()?,
                "n_images" => plan.n_images = self.u64()?,
                "timeout_ms" => plan.timeout_ms = self.u64()?,
                "surges" => plan.surges = self.triple_array()?,
                "dips" => plan.dips = self.triple_array()?,
                "knobs" => plan.knobs = self.triple_array()?,
                "drift_threshold_x1000" => plan.drift_threshold_x1000 = self.u64()?,
                other => return Err(format!("unknown plan key '{other}'")),
            }
            if !self.comma_or(b'}')? {
                return Ok(plan);
            }
        }
    }

    fn end(&mut self) -> Result<(), String> {
        self.ws();
        if self.i == self.b.len() {
            Ok(())
        } else {
            Err(format!("trailing data at byte {}", self.i))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::FaultSpace;

    #[test]
    fn json_round_trips_exactly() {
        for seed in [1, 7, 42, 0xDEAD_BEEF] {
            let plan = FaultSpace::default().sample(seed);
            let repro = Repro::new(plan, "duplicate_apply", "image 0 round 3 applied twice");
            let parsed = Repro::from_json(&repro.to_json()).expect("parses");
            assert_eq!(parsed, repro);
        }
    }

    #[test]
    fn overload_plans_round_trip() {
        for seed in [3, 9, 0xCAFE] {
            let plan = FaultSpace::overload().sample(seed);
            assert!(plan.has_overload());
            let repro = Repro::new(plan, "shed_order", "tier 0 shed while tier 2 ran");
            let parsed = Repro::from_json(&repro.to_json()).expect("parses");
            assert_eq!(parsed, repro);
        }
    }

    #[test]
    fn knob_plans_round_trip() {
        for seed in [2, 11, 0xB0B] {
            let plan = FaultSpace::knobs().sample(seed);
            assert!(!plan.knobs.is_empty());
            let repro = Repro::new(plan, "config_audit_incomplete", "unaudited version 2");
            let parsed = Repro::from_json(&repro.to_json()).expect("parses");
            assert_eq!(parsed, repro);
        }
    }

    #[test]
    fn pre_overload_repro_files_still_parse() {
        // A repro written before the overload axis existed has no
        // surges/dips keys; they must default to empty.
        let text = "{\"version\": 1, \"violation\": \"duplicate_apply\", \"detail\": \"d\", \
                    \"plan\": {\"trial_seed\": 5, \"schedule_seed\": 1, \"timer_skew_us\": 0, \
                    \"loss_pct\": 0, \"jitter_us\": 0, \"down\": [], \"crash_at_ms\": 0, \
                    \"restart_at_ms\": 0, \"n_images\": 2, \"timeout_ms\": 250}}";
        let r = Repro::from_json(text).expect("legacy format parses");
        assert!(r.plan.surges.is_empty() && r.plan.dips.is_empty() && r.plan.knobs.is_empty());
        assert_eq!(r.plan.drift_threshold_x1000, 0, "drift axis defaults off");
        assert_eq!(r.digest, 0, "legacy files carry no pinned digest");
    }

    #[test]
    fn drift_plans_round_trip_with_digest() {
        for seed in [4, 13, 0xD21F7] {
            let plan = FaultSpace::drift().sample(seed);
            assert!(plan.drift_threshold_x1000 > 0, "drift space arms the engine");
            let repro = Repro::new(plan, "model_drift", "config 'c=1,dR=32,l=2' residual 900/1000")
                .with_digest(0xABCD_EF01_2345_6789);
            let parsed = Repro::from_json(&repro.to_json()).expect("parses");
            assert_eq!(parsed, repro);
            assert_eq!(parsed.digest, 0xABCD_EF01_2345_6789);
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let plan = FaultSpace::quiet().sample(1);
        let repro = Repro::new(plan, "breaker_illegal", "tab\there \"quoted\" \\ back\nline");
        let parsed = Repro::from_json(&repro.to_json()).expect("parses");
        assert_eq!(parsed.detail, repro.detail);
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert!(Repro::from_json("").is_err());
        assert!(Repro::from_json("{}").is_err());
        assert!(Repro::from_json("{\"version\": 1}").is_err());
        assert!(Repro::from_json("{\"version\": 2, \"violation\": \"x\", \"plan\": {}}").is_err());
        let plan = FaultSpace::quiet().sample(1);
        let good = Repro::new(plan, "k", "d").to_json();
        assert!(Repro::from_json(&format!("{good}garbage")).is_err());
    }
}
