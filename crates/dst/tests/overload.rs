//! The overload axis end-to-end: explorer trials sampled from
//! [`FaultSpace::overload`] run the multi-application arbiter storm,
//! hold the arbiter oracles (tier-ordered shedding, no clean
//! evictions), and stay deterministic — including the periodic
//! heap/batched/sharded cross-drain digest check.

use adapt_dst::{Explorer, ExplorerOpts, FaultSpace, TrialContext};

fn overload_opts(master_seed: u64) -> ExplorerOpts {
    ExplorerOpts {
        master_seed,
        trials: 6,
        space: FaultSpace::overload(),
        cross_check_every: 3,
        shrink: false,
        shrink_budget: 0,
        max_failures: 2,
    }
}

#[test]
fn overload_trials_hold_arbiter_oracles() {
    let ctx = TrialContext::new();
    let report = Explorer::new(overload_opts(0x0E44_10AD)).run(&ctx);
    assert_eq!(report.trials_run, 6);
    assert!(
        report.failures.is_empty(),
        "arbiter oracle violations under overload: {:?}",
        report.failures.iter().map(|f| f.violation.to_string()).collect::<Vec<_>>()
    );
}

#[test]
fn overload_exploration_is_deterministic() {
    let ctx = TrialContext::new();
    let a = Explorer::new(overload_opts(0xD1D1)).run(&ctx);
    let b = Explorer::new(overload_opts(0xD1D1)).run(&ctx);
    assert_eq!(a.digest, b.digest, "same seed over the overload space must replay identically");
    assert_ne!(
        a.digest,
        Explorer::new(overload_opts(0x5EED)).run(&ctx).digest,
        "different master seeds explore different storms"
    );
}

#[test]
fn overload_shrinking_keeps_windows_load_bearing() {
    // Dropping every surge and dip turns an overload plan into the
    // single-app scenario, where arbiter-kind violations cannot occur —
    // so a shrink of an arbiter violation must retain at least one
    // window. Exercise the reduction path directly on a synthetic
    // "failure" whose kind can never re-occur: the shrinker must fall
    // back to the original plan.
    let ctx = TrialContext::new();
    let plan = FaultSpace::overload().sample(42);
    let shrunk = adapt_dst::shrink_plan(&ctx, &plan, "shed_order", 4);
    assert_eq!(shrunk.steps, 0, "a clean build accepts no reduction of a non-reproducing kind");
    assert_eq!(shrunk.plan, plan);
    assert!(shrunk.trials_run <= 4);
}
