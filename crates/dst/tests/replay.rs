//! Committed repros replay verbatim.
//!
//! Every file under `repros/` is a shrunken failing trial some explorer
//! run emitted. On a correct build they replay clean — the violation
//! they describe was a bug that is fixed or (for the canaries) compiled
//! out. On a canary build (`--cfg dst_canary` for the duplicate-apply
//! bug, `--cfg dst_drift` for the planted model drift) the committed
//! canary repros must reproduce their recorded violations — and, where
//! a digest is pinned, bit-for-bit across every drain mode — proving the
//! repro format carries everything needed to replay the failure.

use std::fs;
use std::path::PathBuf;

use adapt_dst::{Repro, TrialContext};

fn repro_files() -> Vec<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("repros");
    let Ok(entries) = fs::read_dir(&dir) else { return Vec::new() };
    let mut files: Vec<PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    files.sort();
    files
}

fn load(path: &PathBuf) -> Repro {
    let text = fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path:?}: {e}"));
    Repro::from_json(&text).unwrap_or_else(|e| panic!("parse {path:?}: {e}"))
}

#[cfg(not(any(dst_canary, dst_drift)))]
#[test]
fn committed_repros_replay_clean_on_a_correct_build() {
    let files = repro_files();
    if files.is_empty() {
        return;
    }
    let ctx = TrialContext::new();
    for path in files {
        let repro = load(&path);
        let out = ctx.run(&repro.plan);
        assert!(
            out.violations.is_empty(),
            "{path:?} ({}) violates on a correct build: {:?}",
            repro.violation,
            out.violations.iter().map(|v| v.to_string()).collect::<Vec<_>>()
        );
    }
}

#[cfg(dst_canary)]
#[test]
fn committed_canary_repro_reproduces_the_violation() {
    let files = repro_files();
    let canaries: Vec<_> =
        files.iter().map(load).filter(|r| r.violation == "duplicate_apply").collect();
    assert!(
        !canaries.is_empty(),
        "no committed duplicate_apply repro; run the canary explorer and commit its output"
    );
    let ctx = TrialContext::new();
    for repro in canaries {
        let out = ctx.run(&repro.plan);
        assert!(
            out.violations.iter().any(|v| v.kind() == repro.violation),
            "committed repro no longer reproduces '{}' on the canary build",
            repro.violation
        );
    }
}

/// On the drift build the committed model-drift repro must reproduce the
/// alarm, and its pinned digest must match bit-for-bit — under the
/// plan's own explore drain AND the heap, batched, and sharded drains
/// (run under `SIMNET_THREADS=1` and `4` in CI).
#[cfg(dst_drift)]
#[test]
fn committed_drift_repro_reproduces_and_replays_bit_for_bit() {
    use simnet::DrainMode;

    let files = repro_files();
    let drifts: Vec<_> = files.iter().map(load).filter(|r| r.violation == "model_drift").collect();
    assert!(
        !drifts.is_empty(),
        "no committed model_drift repro; run the drift explorer and commit its output"
    );
    let ctx = TrialContext::new();
    for repro in drifts {
        let out = ctx.run(&repro.plan);
        assert!(
            out.violations.iter().any(|v| v.kind() == repro.violation),
            "committed repro no longer reproduces '{}' on the drift build",
            repro.violation
        );
        assert_ne!(repro.digest, 0, "drift repros pin the failing run's digest");
        assert_eq!(
            out.digest, repro.digest,
            "replay must be bit-for-bit identical to the captured incident"
        );
        for drain in
            [DrainMode::Heap, DrainMode::Batched, DrainMode::Sharded { threads: 0, shards: 0 }]
        {
            let alt = ctx.run_with_drain(&repro.plan, drain);
            assert_eq!(alt.digest, repro.digest, "{drain:?} replay must match the pinned digest");
        }
    }
}
