//! Committed repros replay verbatim.
//!
//! Every file under `repros/` is a shrunken failing trial some explorer
//! run emitted. On a correct build they replay clean — the violation
//! they describe was a bug that is fixed or (for the canary) compiled
//! out. On the canary build (`--cfg dst_canary`) the committed canary
//! repro must reproduce its recorded violation, proving the repro format
//! carries everything needed to replay the failure.

use std::fs;
use std::path::PathBuf;

use adapt_dst::{Repro, TrialContext};

fn repro_files() -> Vec<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("repros");
    let Ok(entries) = fs::read_dir(&dir) else { return Vec::new() };
    let mut files: Vec<PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    files.sort();
    files
}

fn load(path: &PathBuf) -> Repro {
    let text = fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path:?}: {e}"));
    Repro::from_json(&text).unwrap_or_else(|e| panic!("parse {path:?}: {e}"))
}

#[cfg(not(dst_canary))]
#[test]
fn committed_repros_replay_clean_on_a_correct_build() {
    let files = repro_files();
    if files.is_empty() {
        return;
    }
    let ctx = TrialContext::new();
    for path in files {
        let repro = load(&path);
        let out = ctx.run(&repro.plan);
        assert!(
            out.violations.is_empty(),
            "{path:?} ({}) violates on a correct build: {:?}",
            repro.violation,
            out.violations.iter().map(|v| v.to_string()).collect::<Vec<_>>()
        );
    }
}

#[cfg(dst_canary)]
#[test]
fn committed_canary_repro_reproduces_the_violation() {
    let files = repro_files();
    let canaries: Vec<_> =
        files.iter().map(load).filter(|r| r.violation == "duplicate_apply").collect();
    assert!(
        !canaries.is_empty(),
        "no committed duplicate_apply repro; run the canary explorer and commit its output"
    );
    let ctx = TrialContext::new();
    for repro in canaries {
        let out = ctx.run(&repro.plan);
        assert!(
            out.violations.iter().any(|v| v.kind() == repro.violation),
            "committed repro no longer reproduces '{}' on the canary build",
            repro.violation
        );
    }
}
