//! Property: drain-mode equivalence. For any trial plan — including ones
//! with an active fault plan — the heap drain, the batched drain, and the
//! identity explore schedule (`ExplorePlan::new(0)`, no permutation, no
//! timer skew) must produce bit-identical behaviour digests. This pins
//! the contract the explorer's cross-drain oracle relies on: schedule
//! *perturbation* is the only thing allowed to change observable
//! behaviour, never the drain implementation itself.
//!
//! Written as a seeded sweep rather than a `proptest!` block: each case
//! runs three full simulations, so the case count must stay small and
//! the failing seed printable directly.

use adapt_dst::{FaultSpace, TrialContext};
use simnet::{DrainMode, ExplorePlan};

#[test]
fn heap_batched_and_identity_explore_agree_under_faults() {
    let ctx = TrialContext::new();
    let space = FaultSpace::default();
    for seed in [3u64, 11, 42, 97, 1234, 0xBEEF] {
        let mut plan = space.sample(seed);
        // Force the fault plan active: every case must exercise loss and
        // jitter, whatever the sampler drew.
        plan.loss_pct = plan.loss_pct.clamp(5, 20);
        plan.jitter_us = plan.jitter_us.clamp(500, 3_000);
        assert!(plan.fault_plan().is_some(), "plan must carry active faults");
        let heap = ctx.run_with_drain(&plan, DrainMode::Heap);
        let batched = ctx.run_with_drain(&plan, DrainMode::Batched);
        let identity = ctx.run_with_drain(&plan, DrainMode::Explore(ExplorePlan::new(0)));
        assert_eq!(heap.digest, batched.digest, "heap vs batched diverged for seed {seed}");
        assert_eq!(
            batched.digest, identity.digest,
            "identity explore schedule diverged from batched for seed {seed}"
        );
        assert!(heap.rounds > 0, "trials must make progress (seed {seed})");
    }
}
