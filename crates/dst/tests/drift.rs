//! The incident-to-repro feedback loop for model drift.
//!
//! On a correct build, drift-armed plans (refine engine folding the run,
//! `model_drift` oracle watching its alarms) replay clean: the profile
//! was honest, residuals stay small, the fast path is invisible. On the
//! drift-canary build (`--cfg dst_drift`) the planted latency spike makes
//! predictions stale; the explorer must detect the alarm, capture the
//! plan, shrink it, and emit a digest-pinned repro that round-trips
//! through JSON and replays the identical incident.

use adapt_dst::{FaultSpace, TrialContext};

#[cfg(not(any(dst_canary, dst_drift)))]
#[test]
fn drift_armed_plans_replay_clean_on_a_correct_build() {
    // The no-false-positive guarantee: arming the refine engine over an
    // honest profile never trips the drift oracle (nor any other), even
    // with schedule perturbation and workload variation in play. Gated
    // off both canary builds: a planted defect is allowed to trip *its*
    // oracle under the perturbed schedules drift plans carry.
    let ctx = TrialContext::new();
    for seed in [1, 7, 42] {
        let plan = FaultSpace::drift().sample(seed);
        assert!(plan.drift_threshold_x1000 > 0);
        let out = ctx.run(&plan);
        assert!(
            out.violations.is_empty(),
            "seed {seed}: honest model must not drift: {:?}",
            out.violations.iter().map(|v| v.to_string()).collect::<Vec<_>>()
        );
    }
}

#[cfg(not(dst_drift))]
#[test]
fn drift_armed_trials_leave_the_digest_unchanged() {
    // Arming refinement is post-run observation only: the same plan with
    // the axis zeroed produces a bit-identical trial.
    let ctx = TrialContext::new();
    let armed = FaultSpace::drift().sample(11);
    let disarmed = adapt_dst::TrialPlan { drift_threshold_x1000: 0, ..armed.clone() };
    assert_eq!(ctx.run(&armed).digest, ctx.run(&disarmed).digest);
}

#[cfg(dst_drift)]
#[test]
fn explorer_captures_shrinks_and_digest_pins_the_planted_drift() {
    use adapt_dst::{Explorer, ExplorerOpts, Repro};

    let ctx = TrialContext::new();
    let report = Explorer::new(ExplorerOpts {
        master_seed: 0xD21F7_5EED,
        trials: 6,
        space: FaultSpace::drift(),
        cross_check_every: 0,
        shrink: true,
        shrink_budget: 24,
        max_failures: 1,
        ..Default::default()
    })
    .run(&ctx);

    assert!(report.found_violation(), "planted latency spike must be detected");
    let failure = &report.failures[0];
    assert_eq!(failure.violation.kind(), "model_drift");

    // The repro is self-contained: it round-trips through JSON, carries a
    // non-zero pinned digest, and replays the identical incident.
    let repro = failure.repro();
    let parsed = Repro::from_json(&repro.to_json()).expect("repro round-trips");
    assert_eq!(parsed, repro);
    assert_ne!(repro.digest, 0);
    let replay = ctx.run(&repro.plan);
    assert!(replay.violations.iter().any(|v| v.kind() == "model_drift"));
    assert_eq!(replay.digest, repro.digest, "replay is bit-for-bit the captured incident");

    // Shrinking kept the violation while stripping incidental structure.
    if let Some(shrunk) = &failure.shrunk {
        assert!(shrunk.plan.weight() <= failure.plan.weight());
    }
}
