//! The explorer's determinism contract: the same options over the same
//! context produce byte-identical reports, and the kernel's explore
//! drain mode is a pure function of its plan.

use adapt_dst::{Explorer, ExplorerOpts, FaultSpace, TrialContext};

fn small_opts(master_seed: u64) -> ExplorerOpts {
    ExplorerOpts {
        master_seed,
        trials: 12,
        space: FaultSpace::default(),
        cross_check_every: 6,
        shrink: false,
        shrink_budget: 0,
        max_failures: 4,
    }
}

#[test]
fn same_seed_same_digest() {
    let ctx = TrialContext::new();
    let a = Explorer::new(small_opts(0xA11CE)).run(&ctx);
    let b = Explorer::new(small_opts(0xA11CE)).run(&ctx);
    assert_eq!(a.trials_run, b.trials_run);
    assert_eq!(a.digest, b.digest, "same master seed must replay identically");
    assert_eq!(a.failures.len(), b.failures.len());
}

#[test]
fn different_seeds_reach_different_schedules() {
    let ctx = TrialContext::new();
    let a = Explorer::new(small_opts(1)).run(&ctx);
    let b = Explorer::new(small_opts(2)).run(&ctx);
    assert_ne!(a.digest, b.digest, "different master seeds must explore different trials");
}

// The correctness contract on the real (non-canary) build: no sampled
// trial violates any invariant. Under the canary build duplicates are
// expected, so this only runs on the real guard.
#[cfg(not(dst_canary))]
#[test]
fn sampled_trials_hold_all_invariants() {
    let ctx = TrialContext::new();
    let report = Explorer::new(small_opts(0xBEEF)).run(&ctx);
    assert!(
        report.failures.is_empty(),
        "violations on a correct build: {:?}",
        report.failures.iter().map(|f| f.violation.to_string()).collect::<Vec<_>>()
    );
}

// Pipeline validation on the canary build: the explorer must find the
// seeded dedup bug and shrink it without losing the violation.
#[cfg(dst_canary)]
#[test]
fn explorer_finds_and_shrinks_the_canary() {
    let ctx = TrialContext::new();
    let opts = ExplorerOpts {
        master_seed: 0xBEEF,
        trials: 12,
        shrink: true,
        shrink_budget: 48,
        max_failures: 1,
        cross_check_every: 0,
        ..Default::default()
    };
    let report = Explorer::new(opts).run(&ctx);
    let failure = report.failures.first().expect("canary build must produce a violation");
    assert_eq!(failure.violation.kind(), "duplicate_apply");
    let shrunk = failure.shrunk.as_ref().expect("shrinking was enabled");
    assert!(shrunk.plan.weight() <= failure.plan.weight(), "shrinking never grows the plan");
    let replay = ctx.run(&shrunk.plan);
    assert!(
        replay.violations.iter().any(|v| v.kind() == "duplicate_apply"),
        "the shrunken plan must still reproduce the violation"
    );
}
