//! The knob-mutation axis end-to-end: explorer trials sampled from
//! [`FaultSpace::knobs`] dispatch seeded live control-plane commands —
//! preference flips, retry/breaker retuning, breaker resets, and one
//! deliberately-unknown key — while the usual faults play out, and every
//! oracle (including [`adapt_dst::config_audit_complete`]) must hold.

use adapt_dst::{knob_commands, Explorer, ExplorerOpts, FaultSpace, TrialContext};

fn knob_opts(master_seed: u64) -> ExplorerOpts {
    ExplorerOpts {
        master_seed,
        trials: 10,
        space: FaultSpace::knobs(),
        cross_check_every: 5,
        shrink: false,
        shrink_budget: 0,
        max_failures: 4,
    }
}

// Gated off the canary builds: a planted defect is *supposed* to trip
// its oracle, and knob plans carry the network faults that expose the
// dedup canary.
#[cfg(not(any(dst_canary, dst_drift)))]
#[test]
fn knob_trials_hold_all_oracles() {
    let ctx = TrialContext::new();
    let report = Explorer::new(knob_opts(0x4A0B_5EED)).run(&ctx);
    assert_eq!(report.trials_run, 10);
    assert!(
        report.failures.is_empty(),
        "oracle violations under live knob mutation: {:?}",
        report.failures.iter().map(|f| f.violation.to_string()).collect::<Vec<_>>()
    );
}

#[test]
fn knob_exploration_is_deterministic() {
    let ctx = TrialContext::new();
    let a = Explorer::new(knob_opts(0xD0D0)).run(&ctx);
    let b = Explorer::new(knob_opts(0xD0D0)).run(&ctx);
    assert_eq!(a.digest, b.digest, "same seed over the knob space must replay identically");
    assert_ne!(
        a.digest,
        Explorer::new(knob_opts(0x5EED)).run(&ctx).digest,
        "different master seeds explore different command schedules"
    );
}

#[test]
fn knob_commands_change_observable_behaviour() {
    // A knob plan and its command-stripped twin share the identical fault
    // prefix (RNG-neutral draws), so any digest difference is the live
    // command taking effect. Find a seed whose commands land early enough
    // to matter and assert divergence.
    let ctx = TrialContext::new();
    let space = FaultSpace::knobs();
    let mut diverged = false;
    for seed in 0..16 {
        let plan = space.sample(seed);
        assert!(!plan.knobs.is_empty());
        let stripped = adapt_dst::TrialPlan { knobs: Vec::new(), ..plan.clone() };
        let with = ctx.run(&plan);
        let without = ctx.run(&stripped);
        assert!(with.violations.is_empty(), "knob trial violated: {:?}", with.violations);
        assert!(without.violations.is_empty());
        if with.digest != without.digest {
            diverged = true;
            break;
        }
    }
    assert!(diverged, "no sampled command schedule left any trace on 16 trials");
}

#[test]
fn every_menu_entry_decodes_to_a_dispatchable_command() {
    // All (kind, magnitude) corners decode without panicking and produce
    // schedules at strictly positive times.
    let plan = adapt_dst::TrialPlan {
        knobs: (0..2 * adapt_dst::KNOB_MENU_LEN)
            .flat_map(|kind| [(0, kind, 0), (500, kind, 50), (4_000, kind, 100)])
            .collect(),
        ..FaultSpace::quiet().sample(1)
    };
    let cmds = knob_commands(&plan);
    assert_eq!(cmds.len(), plan.knobs.len());
    for (at_us, who, _) in &cmds {
        assert!(*at_us >= 1_000, "at_ms saturates to >= 1ms");
        assert_eq!(who, "dst");
    }
}
