//! Axis-aligned integer rectangles: foveal regions and their incremental
//! differences.
//!
//! The active-visualization client requests growing square regions around
//! the fovea; the server must transmit only the *new* area each round.
//! [`Rect::subtract`] decomposes `self \ other` into at most four disjoint
//! rectangles, which is how incremental "rings" are produced.

/// A half-open rectangle `[x, x+w) x [y, y+h)` in pixel coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rect {
    pub x: usize,
    pub y: usize,
    pub w: usize,
    pub h: usize,
}

impl Rect {
    pub fn new(x: usize, y: usize, w: usize, h: usize) -> Self {
        Rect { x, y, w, h }
    }

    /// The empty rectangle at the origin.
    pub fn empty() -> Self {
        Rect { x: 0, y: 0, w: 0, h: 0 }
    }

    pub fn is_empty(&self) -> bool {
        self.w == 0 || self.h == 0
    }

    pub fn area(&self) -> usize {
        self.w * self.h
    }

    pub fn x1(&self) -> usize {
        self.x + self.w
    }

    pub fn y1(&self) -> usize {
        self.y + self.h
    }

    pub fn contains(&self, px: usize, py: usize) -> bool {
        px >= self.x && px < self.x1() && py >= self.y && py < self.y1()
    }

    pub fn contains_rect(&self, o: &Rect) -> bool {
        o.is_empty()
            || (o.x >= self.x && o.y >= self.y && o.x1() <= self.x1() && o.y1() <= self.y1())
    }

    /// Intersection (possibly empty).
    pub fn intersect(&self, o: &Rect) -> Rect {
        let x0 = self.x.max(o.x);
        let y0 = self.y.max(o.y);
        let x1 = self.x1().min(o.x1());
        let y1 = self.y1().min(o.y1());
        if x0 >= x1 || y0 >= y1 {
            Rect::empty()
        } else {
            Rect::new(x0, y0, x1 - x0, y1 - y0)
        }
    }

    /// A square of side `2r` centered at `(cx, cy)`, clamped to a
    /// `width x height` image.
    pub fn fovea(cx: usize, cy: usize, r: usize, width: usize, height: usize) -> Rect {
        let x0 = cx.saturating_sub(r);
        let y0 = cy.saturating_sub(r);
        let x1 = (cx + r).min(width);
        let y1 = (cy + r).min(height);
        if x0 >= x1 || y0 >= y1 {
            Rect::empty()
        } else {
            Rect::new(x0, y0, x1 - x0, y1 - y0)
        }
    }

    /// Scale down by `2^shift` (for mapping a full-resolution region onto a
    /// coarser pyramid level), rounding outward so the scaled rect covers
    /// every coefficient that influences the original region.
    pub fn scale_down(&self, shift: usize) -> Rect {
        if self.is_empty() {
            return Rect::empty();
        }
        let x0 = self.x >> shift;
        let y0 = self.y >> shift;
        let x1 = (self.x1() + (1 << shift) - 1) >> shift;
        let y1 = (self.y1() + (1 << shift) - 1) >> shift;
        Rect::new(x0, y0, x1 - x0, y1 - y0)
    }

    /// `self \ other` as up to four disjoint rectangles (top, bottom, left,
    /// right bands). Their union is exactly the set difference.
    pub fn subtract(&self, other: &Rect) -> Vec<Rect> {
        let inter = self.intersect(other);
        if inter.is_empty() {
            return if self.is_empty() { vec![] } else { vec![*self] };
        }
        let mut out = Vec::new();
        // Top band.
        if inter.y > self.y {
            out.push(Rect::new(self.x, self.y, self.w, inter.y - self.y));
        }
        // Bottom band.
        if inter.y1() < self.y1() {
            out.push(Rect::new(self.x, inter.y1(), self.w, self.y1() - inter.y1()));
        }
        // Left band (within the intersection's vertical extent).
        if inter.x > self.x {
            out.push(Rect::new(self.x, inter.y, inter.x - self.x, inter.h));
        }
        // Right band.
        if inter.x1() < self.x1() {
            out.push(Rect::new(inter.x1(), inter.y, self.x1() - inter.x1(), inter.h));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_geometry() {
        let r = Rect::new(2, 3, 4, 5);
        assert_eq!(r.area(), 20);
        assert_eq!((r.x1(), r.y1()), (6, 8));
        assert!(r.contains(2, 3));
        assert!(r.contains(5, 7));
        assert!(!r.contains(6, 3));
    }

    #[test]
    fn intersection() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, 5, 10, 10);
        assert_eq!(a.intersect(&b), Rect::new(5, 5, 5, 5));
        let c = Rect::new(20, 20, 5, 5);
        assert!(a.intersect(&c).is_empty());
    }

    #[test]
    fn fovea_clamps_to_image() {
        let r = Rect::fovea(10, 10, 20, 64, 64);
        assert_eq!(r, Rect::new(0, 0, 30, 30));
        let r = Rect::fovea(60, 60, 20, 64, 64);
        assert_eq!(r, Rect::new(40, 40, 24, 24));
    }

    #[test]
    fn scale_down_rounds_outward() {
        let r = Rect::new(3, 5, 6, 2); // x in [3,9), y in [5,7)
        let s = r.scale_down(1);
        // x in [1, 5), y in [2, 4)
        assert_eq!(s, Rect::new(1, 2, 4, 2));
        assert_eq!(Rect::empty().scale_down(3), Rect::empty());
    }

    #[test]
    fn subtract_disjoint_returns_self() {
        let a = Rect::new(0, 0, 4, 4);
        let b = Rect::new(10, 10, 2, 2);
        assert_eq!(a.subtract(&b), vec![a]);
    }

    #[test]
    fn subtract_contained_leaves_frame() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(2, 2, 6, 6);
        let parts = a.subtract(&b);
        assert_eq!(parts.len(), 4);
        let total: usize = parts.iter().map(Rect::area).sum();
        assert_eq!(total, 100 - 36);
        // Pieces are disjoint and none overlaps b.
        for (i, p) in parts.iter().enumerate() {
            assert!(p.intersect(&b).is_empty());
            for q in &parts[i + 1..] {
                assert!(p.intersect(q).is_empty(), "{p:?} overlaps {q:?}");
            }
        }
    }

    #[test]
    fn subtract_covering_returns_empty() {
        let a = Rect::new(2, 2, 3, 3);
        let b = Rect::new(0, 0, 10, 10);
        assert!(a.subtract(&b).is_empty());
    }

    #[test]
    fn subtract_partial_overlap() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, 0, 10, 10);
        let parts = a.subtract(&b);
        let total: usize = parts.iter().map(Rect::area).sum();
        assert_eq!(total, 50);
        for p in &parts {
            assert!(a.contains_rect(p));
            assert!(p.intersect(&b).is_empty());
        }
    }

    #[test]
    fn subtract_exactly_tiles_difference() {
        // Pointwise check on a small grid.
        let a = Rect::new(1, 2, 7, 6);
        let b = Rect::new(4, 4, 9, 2);
        let parts = a.subtract(&b);
        for y in 0..12 {
            for x in 0..12 {
                let in_diff = a.contains(x, y) && !b.contains(x, y);
                let covered = parts.iter().filter(|p| p.contains(x, y)).count();
                assert_eq!(covered, usize::from(in_diff), "({x},{y})");
            }
        }
    }
}
