//! Multiresolution image pyramids and region-of-interest coefficient
//! extraction.
//!
//! The server stores each image as an L-level integer Haar decomposition in
//! the standard Mallat layout. "Resolution level" follows the paper: level
//! 0 is the coarsest stored approximation, level `L` the original image.
//! [`Pyramid::chunks_for_region`] extracts exactly the coefficient chunks a
//! client needs to reconstruct a given spatial region at a given resolution
//! level, optionally excluding an already-transmitted region — this is the
//! progressive foveal transmission path.
//!
//! The client side is [`Reassembler`]: it accumulates chunks into a sparse
//! coefficient frame and reconstructs viewable images. Because the Haar
//! transform has strictly local (non-overlapping) support, a region
//! reconstructed from its chunks is pixel-exact inside that region.

use crate::haar::{fwd_2d_level, inv_2d_level};
use crate::image::Image;
use crate::rect::Rect;

/// A wavelet subband.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Band {
    /// Coarsest approximation (exists only at level 0).
    LL,
    /// Horizontal detail.
    HL,
    /// Vertical detail.
    LH,
    /// Diagonal detail.
    HH,
}

/// A rectangle of coefficients from one subband at one level.
/// `rect` is in band-local coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct SubbandChunk {
    pub band: Band,
    pub level: usize,
    pub rect: Rect,
    pub data: Vec<i32>,
}

impl SubbandChunk {
    /// Number of coefficients carried.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// An L-level integer Haar decomposition of one image.
///
/// ```
/// use wavelet::{image::plasma, Pyramid, Reassembler, Rect};
///
/// let img = plasma(64, 64, 7);
/// let pyramid = Pyramid::build(&img, 3);
/// // Lossless at the finest level:
/// assert_eq!(pyramid.reconstruct(3), img);
/// // A foveal region transfers exactly the coefficients it needs:
/// let region = Rect::fovea(32, 32, 10, 64, 64);
/// let chunks = pyramid.chunks_for_region(region, 3, None);
/// let mut client = Reassembler::new(64, 64, 3);
/// for c in &chunks {
///     client.apply(c);
/// }
/// let view = client.reconstruct(3);
/// assert_eq!(view.get(32, 32), img.get(32, 32));
/// ```
#[derive(Debug, Clone)]
pub struct Pyramid {
    width: usize,
    height: usize,
    levels: usize,
    coeffs: Vec<i32>,
}

impl Pyramid {
    /// Decompose `img` with `levels` transform steps. Dimensions must be
    /// divisible by `2^levels`.
    pub fn build(img: &Image, levels: usize) -> Pyramid {
        assert!(levels > 0, "need at least one level");
        assert!(
            img.width.is_multiple_of(1 << levels) && img.height.is_multiple_of(1 << levels),
            "dimensions {}x{} not divisible by 2^{levels}",
            img.width,
            img.height
        );
        let mut coeffs: Vec<i32> = img.data.iter().map(|&v| v as i32).collect();
        for k in 0..levels {
            fwd_2d_level(&mut coeffs, img.width, img.width >> k, img.height >> k);
        }
        Pyramid { width: img.width, height: img.height, levels, coeffs }
    }

    pub fn width(&self) -> usize {
        self.width
    }

    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of decomposition steps `L`; valid resolution levels are
    /// `0..=L`.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Image dimensions at resolution `level`.
    pub fn dims_at(&self, level: usize) -> (usize, usize) {
        assert!(level <= self.levels, "level {level} > {}", self.levels);
        let shift = self.levels - level;
        (self.width >> shift, self.height >> shift)
    }

    /// Raw coefficient at frame position.
    pub fn coeff(&self, x: usize, y: usize) -> i32 {
        self.coeffs[y * self.width + x]
    }

    /// Size of `band` at `level` (band-local). LL exists only at level 0;
    /// detail bands at levels `1..=L` refine level `l-1` to `l`.
    pub fn band_size(&self, band: Band, level: usize) -> (usize, usize) {
        match band {
            Band::LL => {
                assert_eq!(level, 0, "LL exists only at level 0");
                self.dims_at(0)
            }
            _ => {
                assert!(
                    level >= 1 && level <= self.levels,
                    "detail level {level} out of 1..={}",
                    self.levels
                );
                self.dims_at(level - 1)
            }
        }
    }

    /// Frame-coordinate origin of `band` at `level`.
    pub fn band_origin(&self, band: Band, level: usize) -> (usize, usize) {
        let (sw, sh) = self.band_size(band, level);
        match band {
            Band::LL => (0, 0),
            Band::HL => (sw, 0),
            Band::LH => (0, sh),
            Band::HH => (sw, sh),
        }
    }

    fn extract_band_rect(&self, band: Band, level: usize, rect: Rect) -> Option<SubbandChunk> {
        if rect.is_empty() {
            return None;
        }
        let (ox, oy) = self.band_origin(band, level);
        let mut data = Vec::with_capacity(rect.area());
        for y in rect.y..rect.y1() {
            let row = (oy + y) * self.width + ox + rect.x;
            data.extend_from_slice(&self.coeffs[row..row + rect.w]);
        }
        Some(SubbandChunk { band, level, rect, data })
    }

    /// Band-local rectangle covering full-resolution region `region` for a
    /// band whose coefficients live `shift` halvings below full resolution.
    fn band_local(&self, region: Rect, shift: usize, band: Band, level: usize) -> Rect {
        let (bw, bh) = self.band_size(band, level);
        region.scale_down(shift).intersect(&Rect::new(0, 0, bw, bh))
    }

    /// All coefficient chunks needed to reconstruct `region` (full-res
    /// pixel coordinates) at resolution `level`, excluding coefficients
    /// already covered by `exclude` (also full-res).
    pub fn chunks_for_region(
        &self,
        region: Rect,
        level: usize,
        exclude: Option<Rect>,
    ) -> Vec<SubbandChunk> {
        assert!(level <= self.levels);
        let mut out = Vec::new();
        let push_band = |band: Band, lvl: usize, shift: usize, out: &mut Vec<SubbandChunk>| {
            let want = self.band_local(region, shift, band, lvl);
            if want.is_empty() {
                return;
            }
            let pieces = match exclude {
                Some(ex) if !ex.is_empty() => {
                    let ex_local = self.band_local(ex, shift, band, lvl);
                    want.subtract(&ex_local)
                }
                _ => vec![want],
            };
            for p in pieces {
                if let Some(c) = self.extract_band_rect(band, lvl, p) {
                    out.push(c);
                }
            }
        };
        // LL at level 0: coefficients sit L halvings down.
        push_band(Band::LL, 0, self.levels, &mut out);
        // Details for levels 1..=level: band at level j has coefficients
        // (L - j + 1) halvings down.
        for j in 1..=level {
            let shift = self.levels - j + 1;
            for band in [Band::HL, Band::LH, Band::HH] {
                push_band(band, j, shift, &mut out);
            }
        }
        out
    }

    /// Total coefficient count for `region` at `level` (no exclusion).
    pub fn region_coeff_count(&self, region: Rect, level: usize) -> usize {
        self.chunks_for_region(region, level, None).iter().map(SubbandChunk::len).sum()
    }

    /// Reconstruct the full image at `level` (level `L` is lossless).
    pub fn reconstruct(&self, level: usize) -> Image {
        reconstruct_from_frame(&self.coeffs, self.width, self.height, self.levels, level)
    }
}

/// Shared reconstruction: copy the top-left block for `level` out of a
/// Mallat-layout frame and run `level` inverse steps.
pub(crate) fn reconstruct_from_frame(
    frame: &[i32],
    width: usize,
    height: usize,
    levels: usize,
    level: usize,
) -> Image {
    assert!(level <= levels);
    let shift = levels - level;
    let (bw, bh) = (width >> shift, height >> shift);
    let mut block = vec![0i32; bw * bh];
    for y in 0..bh {
        block[y * bw..(y + 1) * bw].copy_from_slice(&frame[y * width..y * width + bw]);
    }
    for step in (0..level).rev() {
        inv_2d_level(&mut block, bw, bw >> step, bh >> step);
    }
    let mut img = Image::blank(bw, bh);
    for (dst, &v) in img.data.iter_mut().zip(&block) {
        *dst = v.clamp(0, 255) as u8;
    }
    img
}

/// Client-side accumulator of [`SubbandChunk`]s.
#[derive(Debug, Clone)]
pub struct Reassembler {
    width: usize,
    height: usize,
    levels: usize,
    frame: Vec<i32>,
    coeffs_received: usize,
}

impl Reassembler {
    pub fn new(width: usize, height: usize, levels: usize) -> Self {
        assert!(
            width.is_multiple_of(1 << levels) && height.is_multiple_of(1 << levels),
            "dimensions not divisible by 2^levels"
        );
        Reassembler { width, height, levels, frame: vec![0; width * height], coeffs_received: 0 }
    }

    pub fn levels(&self) -> usize {
        self.levels
    }

    pub fn coeffs_received(&self) -> usize {
        self.coeffs_received
    }

    fn band_origin(&self, band: Band, level: usize) -> (usize, usize) {
        // Mirrors Pyramid::band_origin without borrowing a Pyramid.
        let shift = match band {
            Band::LL => self.levels,
            _ => self.levels - level + 1,
        };
        let (sw, sh) = (self.width >> shift, self.height >> shift);
        match band {
            Band::LL => (0, 0),
            Band::HL => (sw, 0),
            Band::LH => (0, sh),
            Band::HH => (sw, sh),
        }
    }

    /// Write a received chunk into the coefficient frame.
    pub fn apply(&mut self, chunk: &SubbandChunk) {
        assert_eq!(chunk.data.len(), chunk.rect.area(), "chunk data does not match its rectangle");
        let (ox, oy) = self.band_origin(chunk.band, chunk.level);
        for (i, y) in (chunk.rect.y..chunk.rect.y1()).enumerate() {
            let src = &chunk.data[i * chunk.rect.w..(i + 1) * chunk.rect.w];
            let at = (oy + y) * self.width + ox + chunk.rect.x;
            self.frame[at..at + chunk.rect.w].copy_from_slice(src);
        }
        self.coeffs_received += chunk.data.len();
    }

    /// Reconstruct the (possibly partial) image at `level`.
    pub fn reconstruct(&self, level: usize) -> Image {
        reconstruct_from_frame(&self.frame, self.width, self.height, self.levels, level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::{checkerboard, gradient, noise, plasma};

    #[test]
    fn full_reconstruction_is_lossless() {
        for img in [plasma(64, 64, 1), noise(64, 64, 2), checkerboard(64, 64, 5), gradient(64, 64)]
        {
            let p = Pyramid::build(&img, 4);
            let back = p.reconstruct(4);
            assert_eq!(back, img);
        }
    }

    #[test]
    fn non_square_images_work() {
        let img = plasma(128, 32, 3);
        let p = Pyramid::build(&img, 3);
        assert_eq!(p.dims_at(0), (16, 4));
        assert_eq!(p.reconstruct(3), img);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_dimensions_rejected() {
        let _ = Pyramid::build(&gradient(48, 48), 5);
    }

    #[test]
    fn coarse_levels_approximate_downsampling() {
        let img = plasma(64, 64, 9);
        let p = Pyramid::build(&img, 3);
        let lvl2 = p.reconstruct(2);
        assert_eq!((lvl2.width, lvl2.height), (32, 32));
        // The Haar approximation should be close to a box-filtered
        // downsample (floor-mean vs mean differs by <1 per step).
        let reference = img.downsample2();
        assert!(lvl2.psnr(&reference) > 35.0, "psnr {}", lvl2.psnr(&reference));
    }

    #[test]
    fn band_layout_covers_frame_exactly() {
        let img = gradient(32, 32);
        let p = Pyramid::build(&img, 3);
        // LL0 + all detail bands must tile the frame without overlap.
        let mut covered = vec![0u8; 32 * 32];
        let mut mark = |origin: (usize, usize), size: (usize, usize)| {
            for y in 0..size.1 {
                for x in 0..size.0 {
                    covered[(origin.1 + y) * 32 + origin.0 + x] += 1;
                }
            }
        };
        mark(p.band_origin(Band::LL, 0), p.band_size(Band::LL, 0));
        for l in 1..=3 {
            for b in [Band::HL, Band::LH, Band::HH] {
                mark(p.band_origin(b, l), p.band_size(b, l));
            }
        }
        assert!(covered.iter().all(|&c| c == 1));
    }

    #[test]
    fn full_region_chunks_rebuild_image_exactly() {
        let img = plasma(64, 64, 11);
        let p = Pyramid::build(&img, 4);
        let full = Rect::new(0, 0, 64, 64);
        let chunks = p.chunks_for_region(full, 4, None);
        let mut r = Reassembler::new(64, 64, 4);
        for c in &chunks {
            r.apply(c);
        }
        assert_eq!(r.reconstruct(4), img);
        assert_eq!(r.coeffs_received(), 64 * 64);
    }

    #[test]
    fn region_chunks_rebuild_region_exactly() {
        let img = plasma(64, 64, 13);
        let p = Pyramid::build(&img, 3);
        let region = Rect::new(16, 8, 24, 32);
        let chunks = p.chunks_for_region(region, 3, None);
        let mut r = Reassembler::new(64, 64, 3);
        for c in &chunks {
            r.apply(c);
        }
        let rebuilt = r.reconstruct(3);
        for y in region.y..region.y1() {
            for x in region.x..region.x1() {
                assert_eq!(rebuilt.get(x, y), img.get(x, y), "pixel ({x},{y})");
            }
        }
    }

    #[test]
    fn incremental_rings_cover_without_duplication() {
        let img = plasma(64, 64, 17);
        let p = Pyramid::build(&img, 3);
        let r1 = Rect::fovea(32, 32, 8, 64, 64);
        let r2 = Rect::fovea(32, 32, 16, 64, 64);
        let first = p.chunks_for_region(r1, 3, None);
        let ring = p.chunks_for_region(r2, 3, Some(r1));
        let mut re = Reassembler::new(64, 64, 3);
        for c in first.iter().chain(&ring) {
            re.apply(c);
        }
        let rebuilt = re.reconstruct(3);
        for y in r2.y..r2.y1() {
            for x in r2.x..r2.x1() {
                assert_eq!(rebuilt.get(x, y), img.get(x, y), "pixel ({x},{y})");
            }
        }
        // The ring must be smaller than a fresh full-region transfer.
        let ring_coeffs: usize = ring.iter().map(SubbandChunk::len).sum();
        let full_coeffs: usize =
            p.chunks_for_region(r2, 3, None).iter().map(SubbandChunk::len).sum();
        assert!(ring_coeffs < full_coeffs);
    }

    #[test]
    fn lower_level_needs_fewer_coefficients() {
        let img = plasma(64, 64, 19);
        let p = Pyramid::build(&img, 4);
        let region = Rect::new(0, 0, 64, 64);
        let mut prev = 0;
        for level in 0..=4 {
            let n = p.region_coeff_count(region, level);
            assert!(n > prev, "level {level}: {n} <= {prev}");
            prev = n;
        }
        // Each level multiplies coefficient count by ~4.
        assert_eq!(p.region_coeff_count(region, 4), 64 * 64);
        assert_eq!(p.region_coeff_count(region, 3), 32 * 32);
    }

    #[test]
    fn reassembler_partial_data_still_reconstructs_coarse() {
        let img = plasma(64, 64, 23);
        let p = Pyramid::build(&img, 3);
        let full = Rect::new(0, 0, 64, 64);
        // Send only level-1 data.
        let chunks = p.chunks_for_region(full, 1, None);
        let mut r = Reassembler::new(64, 64, 3);
        for c in &chunks {
            r.apply(c);
        }
        // Level-1 view is exact...
        assert_eq!(r.reconstruct(1), p.reconstruct(1));
        // ...full-level view is only an approximation (details are zero)
        // but still resembles the original.
        let approx = r.reconstruct(3);
        assert!(approx.psnr(&img) > 20.0);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn reassembler_rejects_malformed_chunk() {
        let mut r = Reassembler::new(16, 16, 2);
        r.apply(&SubbandChunk {
            band: Band::LL,
            level: 0,
            rect: Rect::new(0, 0, 2, 2),
            data: vec![1, 2, 3], // wrong length
        });
    }
}
