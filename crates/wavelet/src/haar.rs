//! Integer Haar wavelet transform (the S-transform), 1-D and 2-D.
//!
//! The S-transform is the integer-to-integer variant of the Haar wavelet:
//! for a pair `(a, b)` it produces detail `h = a - b` and approximation
//! `l = b + (h >> 1)` (floor of the mean). It is exactly invertible over
//! integers, so the multiresolution pyramid is lossless — matching the
//! paper's wavelet image store, which must reproduce the original image at
//! the highest resolution.
//!
//! The 2-D transform is the standard Mallat construction: one level
//! transforms rows then columns of the current approximation block,
//! splitting it into LL (approximation), LH, HL, HH (detail) quadrants
//! stored in place.

/// Forward S-transform of a pair: returns `(low, high)`.
#[inline]
pub fn fwd_pair(a: i32, b: i32) -> (i32, i32) {
    let h = a - b;
    let l = b + (h >> 1);
    (l, h)
}

/// Inverse S-transform: recovers `(a, b)` from `(low, high)`.
#[inline]
pub fn inv_pair(l: i32, h: i32) -> (i32, i32) {
    let b = l - (h >> 1);
    let a = h + b;
    (a, b)
}

/// One forward level over `row[0..n]` (`n` even): approximations land in
/// `row[0..n/2]`, details in `row[n/2..n]`.
pub fn fwd_1d(row: &mut [i32], n: usize, scratch: &mut Vec<i32>) {
    debug_assert!(n.is_multiple_of(2) && n <= row.len());
    scratch.clear();
    scratch.resize(n, 0);
    let half = n / 2;
    for i in 0..half {
        let (l, h) = fwd_pair(row[2 * i], row[2 * i + 1]);
        scratch[i] = l;
        scratch[half + i] = h;
    }
    row[..n].copy_from_slice(&scratch[..n]);
}

/// Inverse of [`fwd_1d`].
pub fn inv_1d(row: &mut [i32], n: usize, scratch: &mut Vec<i32>) {
    debug_assert!(n.is_multiple_of(2) && n <= row.len());
    scratch.clear();
    scratch.resize(n, 0);
    let half = n / 2;
    for i in 0..half {
        let (a, b) = inv_pair(row[i], row[half + i]);
        scratch[2 * i] = a;
        scratch[2 * i + 1] = b;
    }
    row[..n].copy_from_slice(&scratch[..n]);
}

/// One forward 2-D level on the `bw x bh` top-left block of a `stride`-wide
/// matrix: rows then columns. After this, the block's quadrants are
/// LL (top-left), HL (top-right), LH (bottom-left), HH (bottom-right).
pub fn fwd_2d_level(data: &mut [i32], stride: usize, bw: usize, bh: usize) {
    debug_assert!(bw.is_multiple_of(2) && bh.is_multiple_of(2));
    let mut scratch = Vec::with_capacity(bw.max(bh));
    // Rows.
    for y in 0..bh {
        fwd_1d(&mut data[y * stride..y * stride + bw], bw, &mut scratch);
    }
    // Columns.
    let mut col = vec![0i32; bh];
    for x in 0..bw {
        for (y, c) in col.iter_mut().enumerate() {
            *c = data[y * stride + x];
        }
        fwd_1d(&mut col, bh, &mut scratch);
        for (y, c) in col.iter().enumerate() {
            data[y * stride + x] = *c;
        }
    }
}

/// Inverse of [`fwd_2d_level`].
pub fn inv_2d_level(data: &mut [i32], stride: usize, bw: usize, bh: usize) {
    debug_assert!(bw.is_multiple_of(2) && bh.is_multiple_of(2));
    let mut scratch = Vec::with_capacity(bw.max(bh));
    // Columns first (reverse order of forward).
    let mut col = vec![0i32; bh];
    for x in 0..bw {
        for (y, c) in col.iter_mut().enumerate() {
            *c = data[y * stride + x];
        }
        inv_1d(&mut col, bh, &mut scratch);
        for (y, c) in col.iter().enumerate() {
            data[y * stride + x] = *c;
        }
    }
    // Rows.
    for y in 0..bh {
        inv_1d(&mut data[y * stride..y * stride + bw], bw, &mut scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn pair_roundtrip_exhaustive_small() {
        for a in -64..64 {
            for b in -64..64 {
                let (l, h) = fwd_pair(a, b);
                assert_eq!(inv_pair(l, h), (a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn pair_roundtrip_extremes() {
        for &(a, b) in
            &[(255, 0), (0, 255), (255, 255), (-1000, 1000), (i32::MIN / 4, i32::MAX / 4)]
        {
            let (l, h) = fwd_pair(a, b);
            assert_eq!(inv_pair(l, h), (a, b));
        }
    }

    #[test]
    fn one_d_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let orig: Vec<i32> = (0..64).map(|_| rng.gen_range(-512..512)).collect();
        let mut row = orig.clone();
        let mut scratch = Vec::new();
        fwd_1d(&mut row, 64, &mut scratch);
        assert_ne!(row, orig);
        inv_1d(&mut row, 64, &mut scratch);
        assert_eq!(row, orig);
    }

    #[test]
    fn one_d_constant_signal_has_zero_details() {
        let mut row = vec![7i32; 16];
        let mut scratch = Vec::new();
        fwd_1d(&mut row, 16, &mut scratch);
        assert!(row[8..].iter().all(|&h| h == 0));
        assert!(row[..8].iter().all(|&l| l == 7));
    }

    #[test]
    fn two_d_roundtrip() {
        let mut rng = StdRng::seed_from_u64(2);
        let (w, h) = (16, 8);
        let orig: Vec<i32> = (0..w * h).map(|_| rng.gen_range(0..256)).collect();
        let mut data = orig.clone();
        fwd_2d_level(&mut data, w, w, h);
        assert_ne!(data, orig);
        inv_2d_level(&mut data, w, w, h);
        assert_eq!(data, orig);
    }

    #[test]
    fn two_d_partial_block_with_stride() {
        // Transform only the top-left 4x4 of an 8x8 matrix; the rest must
        // be untouched.
        let mut data: Vec<i32> = (0..64).collect();
        let orig = data.clone();
        fwd_2d_level(&mut data, 8, 4, 4);
        for y in 0..8 {
            for x in 0..8 {
                if x >= 4 || y >= 4 {
                    assert_eq!(data[y * 8 + x], orig[y * 8 + x], "({x},{y}) modified");
                }
            }
        }
        inv_2d_level(&mut data, 8, 4, 4);
        assert_eq!(data, orig);
    }

    #[test]
    fn ll_quadrant_approximates_mean() {
        // A flat 4x4 block of value 100: LL should be all 100s, details 0.
        let mut data = vec![100i32; 16];
        fwd_2d_level(&mut data, 4, 4, 4);
        for y in 0..2 {
            for x in 0..2 {
                assert_eq!(data[y * 4 + x], 100);
            }
        }
        for y in 0..4 {
            for x in 0..4 {
                if x >= 2 || y >= 2 {
                    assert_eq!(data[y * 4 + x], 0);
                }
            }
        }
    }
}
