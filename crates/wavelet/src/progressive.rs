//! Wire encoding of coefficient chunks for progressive transmission.
//!
//! Chunks are serialized as zigzag varints — small detail coefficients
//! (the common case for natural images) become single bytes, so the byte
//! stream is already compact and the downstream general-purpose compressors
//! (LZW / BWT pipeline, crate `compress`) see realistic, structured input.

use crate::pyramid::{Band, SubbandChunk};
use crate::rect::Rect;

/// Errors from [`decode_chunks`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    Truncated,
    BadBand(u8),
    Overflow,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "payload truncated"),
            DecodeError::BadBand(b) => write!(f, "invalid band code {b}"),
            DecodeError::Overflow => write!(f, "varint overflow"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64, DecodeError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos).ok_or(DecodeError::Truncated)?;
        *pos += 1;
        if shift >= 64 {
            return Err(DecodeError::Overflow);
        }
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

#[inline]
fn zigzag(v: i32) -> u64 {
    ((v as i64) << 1 ^ ((v as i64) >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i32 {
    ((v >> 1) as i64 ^ -((v & 1) as i64)) as i32
}

fn band_code(b: Band) -> u8 {
    match b {
        Band::LL => 0,
        Band::HL => 1,
        Band::LH => 2,
        Band::HH => 3,
    }
}

fn band_from(code: u8) -> Result<Band, DecodeError> {
    Ok(match code {
        0 => Band::LL,
        1 => Band::HL,
        2 => Band::LH,
        3 => Band::HH,
        b => return Err(DecodeError::BadBand(b)),
    })
}

/// Serialize a set of chunks into a byte payload.
pub fn encode_chunks(chunks: &[SubbandChunk]) -> Vec<u8> {
    let mut out = Vec::new();
    put_varint(&mut out, chunks.len() as u64);
    for c in chunks {
        out.push(band_code(c.band));
        put_varint(&mut out, c.level as u64);
        put_varint(&mut out, c.rect.x as u64);
        put_varint(&mut out, c.rect.y as u64);
        put_varint(&mut out, c.rect.w as u64);
        put_varint(&mut out, c.rect.h as u64);
        for &v in &c.data {
            put_varint(&mut out, zigzag(v));
        }
    }
    out
}

/// Parse a payload produced by [`encode_chunks`].
pub fn decode_chunks(buf: &[u8]) -> Result<Vec<SubbandChunk>, DecodeError> {
    let mut pos = 0usize;
    let count = get_varint(buf, &mut pos)? as usize;
    // Defensive cap: a count field cannot plausibly exceed the buffer size.
    if count > buf.len() {
        return Err(DecodeError::Truncated);
    }
    let mut chunks = Vec::with_capacity(count);
    for _ in 0..count {
        let band = band_from(*buf.get(pos).ok_or(DecodeError::Truncated)?)?;
        pos += 1;
        let level = get_varint(buf, &mut pos)? as usize;
        let x = get_varint(buf, &mut pos)? as usize;
        let y = get_varint(buf, &mut pos)? as usize;
        let w = get_varint(buf, &mut pos)? as usize;
        let h = get_varint(buf, &mut pos)? as usize;
        let area = w.checked_mul(h).ok_or(DecodeError::Overflow)?;
        if area > buf.len().saturating_sub(pos).saturating_mul(5).saturating_add(5) {
            // Each coefficient takes >= 1 byte; reject absurd areas early.
            return Err(DecodeError::Truncated);
        }
        let mut data = Vec::with_capacity(area);
        for _ in 0..area {
            data.push(unzigzag(get_varint(buf, &mut pos)?));
        }
        chunks.push(SubbandChunk { band, level, rect: Rect::new(x, y, w, h), data });
    }
    Ok(chunks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::plasma;
    use crate::pyramid::Pyramid;

    #[test]
    fn varint_roundtrip() {
        let mut buf = Vec::new();
        for v in [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX] {
            buf.clear();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [-1000, -1, 0, 1, 255, i32::MIN, i32::MAX] {
            assert_eq!(unzigzag(zigzag(v)), v, "v={v}");
        }
        // Small magnitudes map to small codes.
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn chunk_roundtrip() {
        let img = plasma(64, 64, 5);
        let p = Pyramid::build(&img, 3);
        let chunks = p.chunks_for_region(Rect::new(8, 8, 32, 32), 3, None);
        assert!(!chunks.is_empty());
        let bytes = encode_chunks(&chunks);
        let back = decode_chunks(&bytes).unwrap();
        assert_eq!(back, chunks);
    }

    #[test]
    fn empty_chunk_list() {
        let bytes = encode_chunks(&[]);
        assert_eq!(decode_chunks(&bytes).unwrap(), Vec::new());
    }

    #[test]
    fn truncated_payload_errors() {
        let img = plasma(32, 32, 5);
        let p = Pyramid::build(&img, 2);
        let chunks = p.chunks_for_region(Rect::new(0, 0, 32, 32), 2, None);
        let bytes = encode_chunks(&chunks);
        for cut in [1, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_chunks(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn garbage_rejected_not_panicking() {
        // Arbitrary bytes must produce Err, never panic or huge allocations.
        let garbage: Vec<u8> = (0..64u8).map(|i| i.wrapping_mul(37).wrapping_add(11)).collect();
        let _ = decode_chunks(&garbage);
        let _ = decode_chunks(&[0xff; 16]);
        let _ = decode_chunks(&[4, 0, 1, 0xff, 0xff, 0xff, 0xff, 0x0f]);
    }

    #[test]
    fn smooth_images_encode_compactly() {
        // Detail coefficients of a smooth image are near zero, so the
        // varint payload should be close to 1 byte/coefficient, while a
        // noise image needs more.
        let smooth = plasma(64, 64, 5);
        let noisy = crate::image::noise(64, 64, 5);
        let region = Rect::new(0, 0, 64, 64);
        let ps = Pyramid::build(&smooth, 3);
        let pn = Pyramid::build(&noisy, 3);
        let bs = encode_chunks(&ps.chunks_for_region(region, 3, None)).len();
        let bn = encode_chunks(&pn.chunks_for_region(region, 3, None)).len();
        assert!(bs < bn, "smooth {bs} vs noisy {bn}");
    }
}
