//! Grayscale images and deterministic synthetic image generators.
//!
//! The paper's active-visualization server stores "large images" as wavelet
//! coefficients. We have no proprietary image corpus, so these generators
//! produce deterministic synthetic images with controllable size and
//! spatial-frequency content (which controls compressibility). All
//! generators are seeded, so every experiment is reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An 8-bit grayscale image, row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    pub width: usize,
    pub height: usize,
    pub data: Vec<u8>,
}

impl Image {
    /// A black image.
    pub fn blank(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        Image { width, height, data: vec![0; width * height] }
    }

    pub fn from_fn(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> u8) -> Self {
        let mut img = Image::blank(width, height);
        for y in 0..height {
            for x in 0..width {
                img.data[y * width + x] = f(x, y);
            }
        }
        img
    }

    #[inline]
    pub fn get(&self, x: usize, y: usize) -> u8 {
        self.data[y * self.width + x]
    }

    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: u8) {
        self.data[y * self.width + x] = v;
    }

    pub fn len_bytes(&self) -> usize {
        self.data.len()
    }

    /// Mean squared error against another image of identical dimensions.
    pub fn mse(&self, other: &Image) -> f64 {
        assert_eq!(
            (self.width, self.height),
            (other.width, other.height),
            "MSE requires identical dimensions"
        );
        let sum: f64 = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| {
                let d = a as f64 - b as f64;
                d * d
            })
            .sum();
        sum / self.data.len() as f64
    }

    /// Peak signal-to-noise ratio in dB; `f64::INFINITY` for identical images.
    pub fn psnr(&self, other: &Image) -> f64 {
        let mse = self.mse(other);
        if mse == 0.0 {
            f64::INFINITY
        } else {
            10.0 * (255.0f64 * 255.0 / mse).log10()
        }
    }

    /// Downsample by 2x box filter (used for reference pyramids in tests).
    pub fn downsample2(&self) -> Image {
        let w = (self.width / 2).max(1);
        let h = (self.height / 2).max(1);
        Image::from_fn(w, h, |x, y| {
            let (x2, y2) = (x * 2, y * 2);
            let mut sum = 0u32;
            let mut n = 0u32;
            for dy in 0..2 {
                for dx in 0..2 {
                    let (xx, yy) = (x2 + dx, y2 + dy);
                    if xx < self.width && yy < self.height {
                        sum += self.get(xx, yy) as u32;
                        n += 1;
                    }
                }
            }
            (sum / n.max(1)) as u8
        })
    }
}

/// A horizontal gradient (very compressible).
pub fn gradient(width: usize, height: usize) -> Image {
    Image::from_fn(width, height, |x, _| ((x * 255) / width.max(1)) as u8)
}

/// A checkerboard with `cell` pixel squares (sharp edges, moderate entropy).
pub fn checkerboard(width: usize, height: usize, cell: usize) -> Image {
    let cell = cell.max(1);
    Image::from_fn(width, height, |x, y| {
        if ((x / cell) + (y / cell)).is_multiple_of(2) {
            230
        } else {
            25
        }
    })
}

/// Uniform random noise (incompressible; worst case for the codecs).
pub fn noise(width: usize, height: usize, seed: u64) -> Image {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut img = Image::blank(width, height);
    rng.fill(&mut img.data[..]);
    img
}

/// Multi-octave value noise ("plasma"): smooth large-scale structure with
/// fine detail, a reasonable stand-in for photographic content.
pub fn plasma(width: usize, height: usize, seed: u64) -> Image {
    let mut rng = StdRng::seed_from_u64(seed);
    let octaves = 5usize;
    let mut acc = vec![0.0f64; width * height];
    let mut amplitude = 1.0f64;
    let mut total_amp = 0.0f64;
    for o in 0..octaves {
        let cells = 1usize << (o + 2); // 4, 8, 16, ...
        let gw = cells + 2;
        let gh = cells + 2;
        let grid: Vec<f64> = (0..gw * gh).map(|_| rng.gen::<f64>()).collect();
        for y in 0..height {
            for x in 0..width {
                let fx = x as f64 / width as f64 * cells as f64;
                let fy = y as f64 / height as f64 * cells as f64;
                let (ix, iy) = (fx as usize, fy as usize);
                let (tx, ty) = (fx - ix as f64, fy - iy as f64);
                // Smoothstep for C1 continuity.
                let (sx, sy) = (tx * tx * (3.0 - 2.0 * tx), ty * ty * (3.0 - 2.0 * ty));
                let g = |gx: usize, gy: usize| grid[gy * gw + gx];
                let v0 = g(ix, iy) * (1.0 - sx) + g(ix + 1, iy) * sx;
                let v1 = g(ix, iy + 1) * (1.0 - sx) + g(ix + 1, iy + 1) * sx;
                acc[y * width + x] += amplitude * (v0 * (1.0 - sy) + v1 * sy);
            }
        }
        total_amp += amplitude;
        amplitude *= 0.5;
    }
    let mut img = Image::blank(width, height);
    for (dst, &v) in img.data.iter_mut().zip(&acc) {
        *dst = ((v / total_amp) * 255.0).clamp(0.0, 255.0) as u8;
    }
    img
}

/// Plasma plus uniform sensor noise of amplitude `amp` — a stand-in for
/// photographic content. Pure plasma is unrealistically smooth (dictionary
/// coders do anomalously well on it); a few counts of noise restores the
/// entropy balance real images have.
pub fn photo(width: usize, height: usize, seed: u64, amp: i32) -> Image {
    let base = plasma(width, height, seed);
    if amp <= 0 {
        return base;
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut img = base;
    for v in img.data.iter_mut() {
        let n = rng.gen_range(-amp..=amp);
        *v = (*v as i32 + n).clamp(0, 255) as u8;
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_and_get_set() {
        let mut img = Image::from_fn(4, 2, |x, y| (x + 10 * y) as u8);
        assert_eq!(img.get(3, 1), 13);
        img.set(0, 0, 99);
        assert_eq!(img.get(0, 0), 99);
        assert_eq!(img.len_bytes(), 8);
    }

    #[test]
    fn mse_and_psnr() {
        let a = gradient(16, 16);
        let b = a.clone();
        assert_eq!(a.mse(&b), 0.0);
        assert_eq!(a.psnr(&b), f64::INFINITY);
        let c = Image::blank(16, 16);
        assert!(a.mse(&c) > 0.0);
        assert!(a.psnr(&c).is_finite());
    }

    #[test]
    #[should_panic(expected = "identical dimensions")]
    fn mse_dimension_mismatch_panics() {
        let _ = gradient(8, 8).mse(&gradient(4, 4));
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(plasma(32, 32, 7), plasma(32, 32, 7));
        assert_eq!(noise(32, 32, 7), noise(32, 32, 7));
        assert_ne!(plasma(32, 32, 7), plasma(32, 32, 8));
    }

    #[test]
    fn checkerboard_alternates() {
        let img = checkerboard(8, 8, 2);
        assert_eq!(img.get(0, 0), 230);
        assert_eq!(img.get(2, 0), 25);
        assert_eq!(img.get(2, 2), 230);
    }

    #[test]
    fn plasma_has_mid_range_values() {
        let img = plasma(64, 64, 42);
        let mean: f64 = img.data.iter().map(|&v| v as f64).sum::<f64>() / img.data.len() as f64;
        assert!(mean > 60.0 && mean < 200.0, "plasma mean {mean}");
        // Not constant.
        assert!(img.data.iter().any(|&v| v != img.data[0]));
    }

    #[test]
    fn photo_adds_bounded_noise() {
        let base = plasma(32, 32, 5);
        let ph = photo(32, 32, 5, 4);
        assert_ne!(ph, base);
        for (a, b) in ph.data.iter().zip(&base.data) {
            assert!((*a as i32 - *b as i32).abs() <= 4 || *a == 0 || *a == 255);
        }
        assert_eq!(photo(32, 32, 5, 4), photo(32, 32, 5, 4), "deterministic");
        assert_eq!(photo(32, 32, 5, 0), base, "amp 0 is pure plasma");
    }

    #[test]
    fn downsample_halves_dimensions() {
        let img = gradient(16, 8);
        let d = img.downsample2();
        assert_eq!((d.width, d.height), (8, 4));
    }
}
