//! # wavelet — integer Haar codec, multiresolution pyramids, progressive
//! foveal regions
//!
//! Substrate for the paper's *active visualization* application (§2.1):
//! images are stored server-side as wavelet coefficients; the server builds
//! a pyramid "ranging from the finest to the coarsest resolution" and
//! transmits the user's foveal region progressively, coarse-to-fine, with
//! incremental rings as the region grows.
//!
//! - [`Image`] + seeded synthetic generators ([`image::plasma`],
//!   [`image::gradient`], [`image::checkerboard`], [`image::noise`]) stand
//!   in for the paper's image corpus.
//! - [`haar`] implements the lossless integer S-transform (1-D and 2-D).
//! - [`Pyramid`] is the server-side store;
//!   [`Pyramid::chunks_for_region`] extracts exactly the coefficients for a
//!   foveal region at a resolution level, minus an already-sent region.
//! - [`Reassembler`] is the client-side accumulator; reconstruction is
//!   pixel-exact inside received regions.
//! - [`progressive`] provides the compact zigzag-varint wire encoding fed
//!   to the `compress` crate's LZW / BWT pipelines.

pub mod haar;
pub mod image;
pub mod progressive;
pub mod pyramid;
pub mod rect;

pub use image::Image;
pub use progressive::{decode_chunks, encode_chunks, DecodeError};
pub use pyramid::{Band, Pyramid, Reassembler, SubbandChunk};
pub use rect::Rect;
