//! Property-based tests for the wavelet substrate: losslessness, region
//! exactness, geometry invariants, and wire-format roundtrips.

use proptest::prelude::*;

use wavelet::haar::{fwd_pair, inv_pair};
use wavelet::image::Image;
use wavelet::{decode_chunks, encode_chunks, Pyramid, Reassembler, Rect};

/// Arbitrary image with power-of-two dimensions in {16, 32, 64}.
fn arb_image() -> impl Strategy<Value = Image> {
    (prop_oneof![Just(16usize), Just(32), Just(64)], any::<u64>()).prop_flat_map(|(size, seed)| {
        proptest::collection::vec(any::<u8>(), size * size).prop_map(move |data| {
            let mut img = Image::blank(size, size);
            img.data = data;
            let _ = seed;
            img
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn haar_pair_roundtrips(a in -100_000i32..100_000, b in -100_000i32..100_000) {
        let (l, h) = fwd_pair(a, b);
        prop_assert_eq!(inv_pair(l, h), (a, b));
        // The low-pass value is the floor mean, so it lies between the inputs.
        prop_assert!(l >= a.min(b) - 1 && l <= a.max(b));
    }

    #[test]
    fn pyramid_is_lossless(img in arb_image()) {
        let levels = 3;
        let p = Pyramid::build(&img, levels);
        prop_assert_eq!(p.reconstruct(levels), img);
    }

    #[test]
    fn any_region_reconstructs_exactly(
        img in arb_image(),
        x in 0usize..64,
        y in 0usize..64,
        w in 1usize..64,
        h in 1usize..64,
        level in 1usize..=3,
    ) {
        let levels = 3;
        let p = Pyramid::build(&img, levels);
        let region = Rect::new(x, y, w, h).intersect(&Rect::new(0, 0, img.width, img.height));
        prop_assume!(!region.is_empty());
        let chunks = p.chunks_for_region(region, level, None);
        let mut re = Reassembler::new(img.width, img.height, levels);
        for c in &chunks {
            re.apply(c);
        }
        let got = re.reconstruct(level);
        let want = p.reconstruct(level);
        // Exact inside the region at the requested level's scale.
        let shift = levels - level;
        let scaled = region.scale_down(shift);
        for yy in scaled.y..scaled.y1().min(want.height) {
            for xx in scaled.x..scaled.x1().min(want.width) {
                prop_assert_eq!(got.get(xx, yy), want.get(xx, yy), "pixel ({}, {})", xx, yy);
            }
        }
    }

    #[test]
    fn incremental_rings_equal_full_transfer(
        img in arb_image(),
        r1 in 2usize..20,
        r2 in 20usize..40,
    ) {
        let levels = 3;
        let p = Pyramid::build(&img, levels);
        let (cx, cy) = (img.width / 2, img.height / 2);
        let inner = Rect::fovea(cx, cy, r1, img.width, img.height);
        let outer = Rect::fovea(cx, cy, r2, img.width, img.height);
        // Incremental: inner region then the ring.
        let mut a = Reassembler::new(img.width, img.height, levels);
        for c in p.chunks_for_region(inner, levels, None) {
            a.apply(&c);
        }
        for c in p.chunks_for_region(outer, levels, Some(inner)) {
            a.apply(&c);
        }
        // One-shot: the outer region at once.
        let mut b = Reassembler::new(img.width, img.height, levels);
        for c in p.chunks_for_region(outer, levels, None) {
            b.apply(&c);
        }
        prop_assert_eq!(a.reconstruct(levels), b.reconstruct(levels));
    }

    #[test]
    fn ring_coefficients_are_disjoint_from_inner(
        img in arb_image(),
        r1 in 2usize..16,
        extra in 1usize..16,
    ) {
        let levels = 3;
        let p = Pyramid::build(&img, levels);
        let (cx, cy) = (img.width / 2, img.height / 2);
        let inner = Rect::fovea(cx, cy, r1, img.width, img.height);
        let outer = Rect::fovea(cx, cy, r1 + extra, img.width, img.height);
        let inner_n: usize = p.chunks_for_region(inner, levels, None).iter().map(|c| c.len()).sum();
        let ring_n: usize = p.chunks_for_region(outer, levels, Some(inner)).iter().map(|c| c.len()).sum();
        let outer_n: usize = p.chunks_for_region(outer, levels, None).iter().map(|c| c.len()).sum();
        // No double counting: inner + ring covers at most outer (the ring
        // excludes inner's coefficients; outward rounding may leave a
        // shared boundary row that the ring re-sends, never more).
        prop_assert!(ring_n <= outer_n);
        prop_assert!(inner_n + ring_n >= outer_n, "union must cover the outer region");
    }

    #[test]
    fn chunk_encoding_roundtrips(img in arb_image(), level in 0usize..=3) {
        let p = Pyramid::build(&img, 3);
        let chunks = p.chunks_for_region(Rect::new(0, 0, img.width, img.height), level, None);
        let bytes = encode_chunks(&chunks);
        prop_assert_eq!(decode_chunks(&bytes).unwrap(), chunks);
    }

    #[test]
    fn decode_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_chunks(&data);
    }

    #[test]
    fn rect_subtract_partitions(
        ax in 0usize..30, ay in 0usize..30, aw in 1usize..30, ah in 1usize..30,
        bx in 0usize..30, by in 0usize..30, bw in 1usize..30, bh in 1usize..30,
    ) {
        let a = Rect::new(ax, ay, aw, ah);
        let b = Rect::new(bx, by, bw, bh);
        let parts = a.subtract(&b);
        // Pointwise: parts tile exactly a \ b, disjointly.
        for y in 0..64 {
            for x in 0..64 {
                let expect = a.contains(x, y) && !b.contains(x, y);
                let got = parts.iter().filter(|p| p.contains(x, y)).count();
                prop_assert_eq!(got, usize::from(expect), "({}, {})", x, y);
            }
        }
    }

    #[test]
    fn scale_down_covers_source(
        x in 0usize..100, y in 0usize..100, w in 1usize..100, h in 1usize..100,
        shift in 0usize..5,
    ) {
        let r = Rect::new(x, y, w, h);
        let s = r.scale_down(shift);
        // Every source pixel maps into the scaled rect.
        for (px, py) in [(r.x, r.y), (r.x1() - 1, r.y1() - 1)] {
            prop_assert!(s.contains(px >> shift, py >> shift));
        }
    }
}
