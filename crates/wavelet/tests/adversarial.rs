//! Adversarial inputs for the wavelet layer: degenerate images through
//! the full pyramid round trip, and chunk-codec payloads at the edges of
//! the format (empty set, empty-data chunks, extreme coefficients,
//! malformed bytes).

use wavelet::{
    decode_chunks, encode_chunks, Band, Image, Pyramid, Reassembler, Rect, SubbandChunk,
};

/// Build → full-region chunks → encode → decode → reassemble → compare
/// at every resolution level.
fn round_trip(img: &Image, levels: usize) {
    let pyr = Pyramid::build(img, levels);
    let full = Rect::new(0, 0, img.width, img.height);
    let mut re = Reassembler::new(img.width, img.height, levels);
    let chunks = pyr.chunks_for_region(full, levels, None);
    let decoded = decode_chunks(&encode_chunks(&chunks)).expect("wire format round-trips");
    assert_eq!(decoded, chunks, "chunk codec must be lossless");
    for c in &decoded {
        re.apply(c);
    }
    for level in 0..=levels {
        assert_eq!(
            re.reconstruct(level),
            pyr.reconstruct(level),
            "{}x{} image diverged at level {level}",
            img.width,
            img.height
        );
    }
}

#[test]
fn degenerate_images_survive_the_full_pipeline() {
    // All-black, all-white, single-pixel checker, hard step edge, and the
    // minimum size a 3-level pyramid accepts (8x8).
    let cases: Vec<(&str, Image)> = vec![
        ("all black", Image::blank(16, 16)),
        ("all white", Image::from_fn(16, 16, |_, _| 255)),
        ("checkerboard", Image::from_fn(16, 16, |x, y| if (x + y) % 2 == 0 { 0 } else { 255 })),
        ("step edge", Image::from_fn(32, 32, |x, _| if x < 16 { 0 } else { 255 })),
        ("minimum 8x8", Image::from_fn(8, 8, |x, y| (x * 31 + y * 7) as u8)),
        ("non-square", Image::from_fn(32, 8, |x, y| (x ^ y) as u8)),
    ];
    for (name, img) in cases {
        for levels in 1..=3 {
            if img.width % (1 << levels) != 0 || img.height % (1 << levels) != 0 {
                continue;
            }
            round_trip(&img, levels);
        }
        let _ = name;
    }
}

#[test]
fn chunk_codec_edge_payloads() {
    // Empty chunk set.
    assert_eq!(decode_chunks(&encode_chunks(&[])).expect("empty set"), Vec::new());

    // A chunk with an empty data vector and one with extreme coefficient
    // values (Haar coefficients are signed; the zigzag varint must cover
    // the full i32 range).
    let empty_data =
        SubbandChunk { band: Band::LL, level: 0, rect: Rect::new(0, 0, 0, 0), data: vec![] };
    let extremes = SubbandChunk {
        band: Band::HH,
        level: 2,
        rect: Rect::new(3, 5, 2, 2),
        data: vec![i32::MAX, i32::MIN, 0, -1],
    };
    let chunks = vec![empty_data, extremes];
    assert_eq!(decode_chunks(&encode_chunks(&chunks)).expect("edge chunks"), chunks);
}

#[test]
fn chunk_decoder_rejects_malformed_bytes() {
    // Truncations at every prefix of a valid payload must error, never
    // panic or fabricate chunks.
    let chunks = vec![SubbandChunk {
        band: Band::LH,
        level: 1,
        rect: Rect::new(1, 2, 3, 4),
        data: (0..12).map(|i| i * 17 - 100).collect(),
    }];
    let good = encode_chunks(&chunks);
    for cut in 1..good.len() {
        assert!(decode_chunks(&good[..cut]).is_err(), "truncation at {cut} must be rejected");
    }
    // A bogus band code and an absurd declared count are rejected.
    assert!(decode_chunks(&[1, 9]).is_err(), "bad band code");
    assert!(decode_chunks(&[0xFF, 0xFF, 0xFF, 0xFF, 0x0F]).is_err(), "absurd chunk count");
}
