#!/usr/bin/env bash
# Full local CI gate: build, tests, lints, formatting.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
# Note: the chaos fault-injection scenarios (visapp `chaos_*` tests) run
# as part of `cargo test -q` above; they used to be a dedicated stage,
# which ran the whole visapp suite a second time for nothing.
cargo clippy --workspace --all-targets -- -D warnings
# The workspace's own code must not call the deprecated pre-obs entry
# points (Trace::events/take/render, AdaptiveRuntime::configure/events,
# StatsHandle::with_mut, FaultPlan::loss/...); external callers still
# get the soft deprecation warning only.
cargo clippy --workspace --all-targets -- -D deprecated
# Rustdoc is part of the API surface: broken intra-doc links and bad
# doc examples fail the gate.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps
cargo fmt --check
# Simulation-test canary: the adapt-dst suite compiled with the planted
# dedup bug must find it, shrink it, and replay the committed repro.
# Opt-in because it rebuilds the workspace under a different cfg.
if [ "${CI_DST_CANARY:-0}" = "1" ]; then
    RUSTFLAGS="--cfg dst_canary" cargo test -q --release -p adapt-dst
fi
# Coverage floor: opt-in, requires cargo-llvm-cov.
if [ "${CI_COV:-0}" = "1" ]; then
    cargo llvm-cov --workspace -q --fail-under-lines "$(cat scripts/coverage_floor.txt)"
fi
# Benchmark regression gate: opt-in because it rebuilds and re-runs
# every BENCH_*.json generator (~a minute of wall time).
if [ "${CI_BENCH:-0}" = "1" ]; then
    scripts/bench_gate.sh
fi
