#!/usr/bin/env bash
# Full local CI gate: build, tests, lints, formatting.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
# Chaos smoke: seeded fault-injection scenarios must stay deterministic.
cargo test -q -p visapp chaos_
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check
