#!/usr/bin/env bash
# Full local CI gate: build, tests, lints, formatting.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
# Note: the chaos fault-injection scenarios (visapp `chaos_*` tests) run
# as part of `cargo test -q` above; they used to be a dedicated stage,
# which ran the whole visapp suite a second time for nothing.
cargo clippy --workspace --all-targets -- -D warnings
# The workspace's own code must not call the deprecated pre-obs entry
# points (Trace::events/take/render, AdaptiveRuntime::configure/events,
# RunStats::adapt_events, StatsHandle::with_mut, FaultPlan::loss/...);
# external callers still get the soft deprecation warning only.
cargo clippy --workspace --all-targets -- -D deprecated
# Rustdoc is part of the API surface: broken intra-doc links and bad
# doc examples fail the gate.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps
cargo fmt --check
# Benchmark regression gate: opt-in because it rebuilds and re-runs
# every BENCH_*.json generator (~a minute of wall time).
if [ "${CI_BENCH:-0}" = "1" ]; then
    scripts/bench_gate.sh
fi
