#!/usr/bin/env bash
# Full local CI gate: build, tests, socket smoke, lints, formatting.
#
# Stages run in order and fail fast: the first failing command aborts the
# script and the ERR trap prints which named stage died, so a long log
# always ends with the culprit.
set -euo pipefail
cd "$(dirname "$0")/.."

CURRENT_STAGE="(startup)"
stage() {
    CURRENT_STAGE="$1"
    echo "==== stage: $CURRENT_STAGE ===="
}
trap 'echo "FAILED in stage: $CURRENT_STAGE" >&2' ERR

stage "build"
cargo build --release

stage "tests (SIMNET_THREADS matrix)"
# Tier-1 tests run under both thread settings: SIMNET_THREADS feeds
# `DrainMode::Sharded { threads: 0, .. }` resolution, so =1 exercises
# the sequential fallback and =4 the parallel epoch loop. Digest
# equality between the two is what the sharded determinism tests check.
# Note: the chaos fault-injection scenarios (visapp `chaos_*` tests) run
# as part of `cargo test -q`; they used to be a dedicated stage, which
# ran the whole visapp suite a second time for nothing.
for t in 1 4; do
    SIMNET_THREADS=$t cargo test -q
done

stage "arbiter smoke"
# Saturation smoke: a 200-application arbiter storm must hold the
# arbiter invariant oracles (tier-ordered shedding, no eviction without
# a policing violation) and digest identically whichever way the
# sharded drain's `threads: 0` resolves.
cargo build --release -q -p adapt-bench
d1="$(SIMNET_THREADS=1 ./target/release/arbiter_smoke)"
d4="$(SIMNET_THREADS=4 ./target/release/arbiter_smoke)"
if [ "$d1" != "$d4" ]; then
    echo "arbiter_smoke: digest diverged: threads=1 $d1 != threads=4 $d4" >&2
    exit 1
fi
echo "arbiter_smoke: digest $d1 stable across SIMNET_THREADS={1,4}"

stage "socket smoke"
# Real-socket transport smoke: one adaptive session replayed over
# loopback TCP (and UDS where available; a UDS bind failure is a skip,
# not an error) must make exactly the same adaptive decisions as the
# pure-simnet run — and the decision digest must not depend on how the
# sharded drain resolves, so the same SIMNET_THREADS={1,4} matrix as the
# tier-1 tests applies.
s1="$(SIMNET_THREADS=1 ./target/release/socket_smoke)"
s4="$(SIMNET_THREADS=4 ./target/release/socket_smoke)"
if [ "$s1" != "$s4" ]; then
    echo "socket_smoke: decision digest diverged: threads=1 $s1 != threads=4 $s4" >&2
    exit 1
fi
echo "socket_smoke: decision digest $s1 stable across SIMNET_THREADS={1,4}"

stage "control-plane smoke"
# Live-reconfiguration smoke: the preference_flip example asserts the
# control plane end to end — an empty command schedule leaves the event
# stream byte-identical across reruns, a mid-run Command::Set flips the
# scheduler's choice in the same run with a matching audit event, and a
# pinned knob refuses the Set.
cargo run --release -q --example preference_flip

stage "clippy"
# The pre-obs shims (Trace::events/take/render, StatsHandle::with_mut,
# AdaptiveRuntime::configure/events, FaultPlan::loss/...) are deleted;
# -D deprecated keeps any future soft-deprecated entry point out of the
# workspace's own code from day one.
cargo clippy --workspace --all-targets -- -D warnings
cargo clippy --workspace --all-targets -- -D deprecated

stage "rustdoc"
# Rustdoc is part of the API surface: broken intra-doc links and bad
# doc examples fail the gate.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

stage "fmt"
cargo fmt --check

# Simulation-test canary: the adapt-dst suite compiled with the planted
# dedup bug must find it, shrink it, and replay the committed repro.
# Opt-in because it rebuilds the workspace under a different cfg.
if [ "${CI_DST_CANARY:-0}" = "1" ]; then
    stage "dst canary"
    # Same two-point SIMNET_THREADS matrix as the tier-1 tests: the
    # explorer's every-16th-trial cross-check replays under the sharded
    # drain, so the canary must stay green whichever way `threads: 0`
    # resolves.
    for t in 1 4; do
        SIMNET_THREADS=$t RUSTFLAGS="--cfg dst_canary" cargo test -q --release -p adapt-dst
    done
fi

# Model-drift canary: the adapt-dst suite compiled with the planted
# latency spike must make the refine engine alarm, the explorer must
# capture and shrink the incident, and the committed model_drift repro
# must replay bit-for-bit (digest-pinned) under every drain mode.
if [ "${CI_DST_DRIFT:-0}" = "1" ]; then
    stage "dst drift canary"
    for t in 1 4; do
        SIMNET_THREADS=$t RUSTFLAGS="--cfg dst_drift" cargo test -q --release -p adapt-dst
    done
fi

# Coverage floor: opt-in, requires cargo-llvm-cov. The --workspace scope
# picks up every crates/* member automatically, adapt-transport included.
if [ "${CI_COV:-0}" = "1" ]; then
    stage "coverage floor"
    cargo llvm-cov --workspace -q --fail-under-lines "$(cat scripts/coverage_floor.txt)"
fi

# Benchmark regression gate: opt-in because it rebuilds and re-runs
# every BENCH_*.json generator (several minutes of wall time — the
# load sweep now climbs to 100k sessions and runs a sharded
# threads-vs-throughput curve; see DESIGN.md §14).
if [ "${CI_BENCH:-0}" = "1" ]; then
    stage "bench gate"
    scripts/bench_gate.sh
fi

echo "==== all stages passed ===="
