#!/usr/bin/env bash
# Benchmark regression gate: regenerate every BENCH_*.json with the
# current tree and compare against the committed baselines with a +/-20%
# tolerance (scripts/bench_compare.py documents the exact per-field
# policy: deterministic counts gate symmetrically, speedups/ratios gate
# one-sided, raw wall-clock numbers are reported but never gated).
#
# Run directly, or from scripts/ci.sh via CI_BENCH=1. Knobs:
#   BENCH_GATE_TOL  relative tolerance (default 0.20)
#   BENCH_GATE_ABS  absolute slack for near-zero baselines (default 5)
set -euo pipefail
cd "$(dirname "$0")/.."

fresh="$(mktemp -d)"
trap 'rm -rf "$fresh"' EXIT

echo "== bench gate: regenerating benchmarks =="
cargo build --release -q -p adapt-bench
./target/release/perfdb_bench "$fresh/BENCH_perfdb.json"
./target/release/obs_bench "$fresh/BENCH_obs.json"
./target/release/load_bench "$fresh/BENCH_load.json"
./target/release/dst_bench "$fresh/BENCH_dst.json"
./target/release/arbiter_bench "$fresh/BENCH_arbiter.json"
./target/release/control_bench "$fresh/BENCH_control.json"
./target/release/export_bench "$fresh/BENCH_export.json"
./target/release/refine_bench "$fresh/BENCH_refine.json"

echo "== bench gate: comparing against committed baselines =="
status=0
for name in BENCH_perfdb.json BENCH_obs.json BENCH_load.json BENCH_dst.json BENCH_arbiter.json \
            BENCH_control.json BENCH_export.json BENCH_refine.json; do
    python3 scripts/bench_compare.py "$name" "$fresh/$name" || status=1
done

# DST digest cross-check: bench_compare treats digest strings as
# reported-only (toolchain updates may legitimately shift them), but a
# *stale committed baseline* must still fail CI — when the fresh run on
# this very tree disagrees with the committed BENCH_dst.json digests,
# the baseline was not regenerated alongside a behaviour change.
python3 - BENCH_dst.json "$fresh/BENCH_dst.json" <<'EOF' || status=1
import json, sys
with open(sys.argv[1]) as fh:
    base = json.load(fh)
with open(sys.argv[2]) as fh:
    fresh = json.load(fh)
stale = []
for section in ("deterministic", "knob_axis", "drift_axis"):
    b, f = base[section]["digest"], fresh[section]["digest"]
    if b != f:
        stale.append(f"{section}: committed {b} != fresh {f}")
if stale:
    print("BENCH_dst.json: committed explorer digests are stale — regenerate "
          "the baseline with ./target/release/dst_bench and commit it:",
          file=sys.stderr)
    for line in stale:
        print(f"  {line}", file=sys.stderr)
    sys.exit(1)
print("BENCH_dst.json: explorer digests match the committed baseline")
EOF

# Absolute zero-overhead gate on the *fresh* run (independent of the
# committed baseline): with exporters disabled, the span hot path must
# keep >= 95% of the no-exporter throughput measured in the same
# process. This is the "exporters are free until scraped" contract.
python3 - "$fresh/BENCH_export.json" <<'EOF' || status=1
import json, sys
with open(sys.argv[1]) as fh:
    fresh = json.load(fh)
ratio = fresh["span_hot_path"]["disabled_ratio"]
if ratio < 0.95:
    print(f"BENCH_export.json: disabled-exporter span throughput ratio "
          f"{ratio:.4f} < 0.95 of the no-exporter baseline", file=sys.stderr)
    sys.exit(1)
print(f"BENCH_export.json: disabled-exporter ratio {ratio:.4f} >= 0.95 (zero-overhead gate)")
EOF
exit "$status"
