#!/usr/bin/env python3
"""Compare a freshly generated benchmark JSON against a committed baseline.

Used by scripts/bench_gate.sh. The comparison walks the baseline
recursively and classifies every leaf by its key name:

* ``speedup`` / ``ratio`` — relative measurements taken on one machine;
  these gate one-sided: the fresh value may improve freely but must not
  regress below ``baseline * (1 - tol)``.
* volatile keys (``sum``, ``min``, ``max``, ``p50``, ``p95``, ``p99``,
  ``mean``, anything containing ``wall`` or ending in ``_per_sec``) —
  absolute wall-clock measurements that depend on the host; reported but
  never gated, because the committed baseline and the CI runner are
  different machines.
* strings (run digests) — reported only. Digests are pinned by in-repo
  regression tests on a *single* build; across toolchain or dependency
  updates the exact byte streams may legitimately shift.
* every other number (counts, sizes, simulated times) — deterministic
  outputs of seeded simulation; gated symmetrically at ``+/- tol`` with a
  small absolute floor so a zero baseline tolerates noise of a few units.

Exit status is non-zero iff any gated leaf regressed.
"""

import json
import os
import sys

VOLATILE_KEYS = {"sum", "min", "max", "p50", "p95", "p99", "mean"}
ONE_SIDED_KEYS = {"speedup", "ratio"}


def is_volatile(key: str) -> bool:
    return key in VOLATILE_KEYS or "wall" in key or key.endswith("_per_sec")


def walk(base, fresh, path, key, failures, infos, tol, abs_floor):
    if isinstance(base, dict):
        if not isinstance(fresh, dict):
            failures.append(f"{path}: expected object, fresh has {type(fresh).__name__}")
            return
        for k, v in base.items():
            if k not in fresh:
                failures.append(f"{path}.{k}: missing from fresh output")
                continue
            walk(v, fresh[k], f"{path}.{k}", k, failures, infos, tol, abs_floor)
    elif isinstance(base, list):
        if not isinstance(fresh, list):
            failures.append(f"{path}: expected array, fresh has {type(fresh).__name__}")
            return
        if len(base) != len(fresh):
            failures.append(f"{path}: length {len(fresh)} != baseline {len(base)}")
            return
        for i, (b, f) in enumerate(zip(base, fresh)):
            walk(b, f, f"{path}[{i}]", key, failures, infos, tol, abs_floor)
    elif isinstance(base, bool) or base is None:
        if fresh != base:
            failures.append(f"{path}: {fresh!r} != baseline {base!r}")
    elif isinstance(base, (int, float)):
        if not isinstance(fresh, (int, float)) or isinstance(fresh, bool):
            failures.append(f"{path}: expected number, fresh has {fresh!r}")
            return
        if key in ONE_SIDED_KEYS:
            floor = base * (1.0 - tol)
            if fresh < floor:
                failures.append(
                    f"{path}: {fresh:.4g} regressed below {floor:.4g} "
                    f"(baseline {base:.4g}, tol {tol:.0%})"
                )
            return
        if is_volatile(key):
            infos.append(f"{path}: {fresh:.6g} (baseline {base:.6g}, machine-dependent, not gated)")
            return
        slack = max(tol * abs(base), abs_floor)
        if abs(fresh - base) > slack:
            failures.append(
                f"{path}: {fresh:.6g} outside baseline {base:.6g} +/- {slack:.6g}"
            )
    else:  # strings: digests and labels
        if fresh != base:
            infos.append(f"{path}: {fresh!r} differs from baseline {base!r} (string, not gated)")


def main() -> int:
    if len(sys.argv) != 3:
        print(f"usage: {sys.argv[0]} <committed-baseline.json> <fresh.json>", file=sys.stderr)
        return 2
    tol = float(os.environ.get("BENCH_GATE_TOL", "0.20"))
    abs_floor = float(os.environ.get("BENCH_GATE_ABS", "5"))
    try:
        with open(sys.argv[1]) as fh:
            base = json.load(fh)
    except FileNotFoundError:
        print(
            f"{os.path.basename(sys.argv[1])}: committed baseline not found at "
            f"{sys.argv[1]!r} — generate it with the matching bench binary "
            f"(e.g. ./target/release/<name>_bench) and commit it to the repo root",
            file=sys.stderr,
        )
        return 2
    try:
        with open(sys.argv[2]) as fh:
            fresh = json.load(fh)
    except FileNotFoundError:
        print(
            f"fresh benchmark output not found at {sys.argv[2]!r} — did the "
            f"bench binary fail before writing it?",
            file=sys.stderr,
        )
        return 2
    failures: list = []
    infos: list = []
    name = os.path.basename(sys.argv[1])
    walk(base, fresh, name, "", failures, infos, tol, abs_floor)
    for line in infos:
        print(f"  info: {line}")
    for line in failures:
        print(f"  FAIL: {line}")
    if failures:
        print(f"{name}: {len(failures)} regression(s) beyond {tol:.0%} tolerance")
        return 1
    print(f"{name}: OK ({len(infos)} machine-dependent field(s) reported, tol {tol:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
