//! Offline stub `derive(Serialize, Deserialize)`: emits empty marker
//! impls for the annotated type (which must be non-generic — true for
//! every derived type in this workspace) and accepts-and-ignores
//! `#[serde(...)]` helper attributes.

use proc_macro::{TokenStream, TokenTree};

/// Extract the type name: first ident following a top-level `struct` or
/// `enum` keyword. Attribute bodies are single `Group` tokens at this
/// level, so idents inside them are never seen.
fn type_name(input: TokenStream) -> Option<String> {
    let mut iter = input.into_iter();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                if let Some(TokenTree::Ident(name)) = iter.next() {
                    return Some(name.to_string());
                }
            }
        }
    }
    None
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match type_name(input) {
        Some(name) => format!("impl ::serde::Serialize for {name} {{}}")
            .parse()
            .expect("stub Serialize impl parses"),
        None => TokenStream::new(),
    }
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match type_name(input) {
        Some(name) => format!("impl ::serde::Deserialize for {name} {{}}")
            .parse()
            .expect("stub Deserialize impl parses"),
        None => TokenStream::new(),
    }
}
