//! Offline stub of `proptest`: a seeded random-case runner with the
//! strategy combinators this workspace uses. No shrinking and no
//! failure persistence — a failing case prints its inputs and the case
//! seed, and re-running reproduces it (the sampler is deterministic).

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

pub mod test_runner {
    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case failed an assertion.
        Fail(String),
        /// The case asked to be discarded (`prop_assume!`).
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration. Only `cases` is honoured by the stub.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

/// Deterministic SplitMix64 sampler handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

pub mod strategy {
    use super::*;

    /// A generator of values. The stub samples directly (no value
    /// trees, no shrinking).
    pub trait Strategy {
        type Value: Debug;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U: Debug, F: Fn(Self::Value) -> U + 'static>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S + 'static>(
            self,
            f: F,
        ) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Resample until `pred` holds (bounded; panics if the
        /// predicate looks unsatisfiable).
        fn prop_filter<F: Fn(&Self::Value) -> bool + 'static>(
            self,
            reason: &'static str,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter { inner: self, reason, pred }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.sample(rng)))
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) reason: &'static str,
        pub(crate) pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.sample(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter({}) rejected 1000 consecutive samples", self.reason);
        }
    }

    pub struct BoxedStrategy<T>(pub(crate) Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// `prop_oneof!` support: pick one of N same-typed strategies.
    pub struct Union<T> {
        pub options: Vec<BoxedStrategy<T>>,
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            assert!(!self.options.is_empty(), "prop_oneof! needs at least one option");
            let i = rng.below(self.options.len() as u64) as usize;
            (self.options[i].0)(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.next_f64() * (self.end() - self.start())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

use strategy::Strategy;

/// Whole-domain strategies (`any::<T>()`).
pub trait Arbitrary: Sized + Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign- and magnitude-diverse. Good enough for the
        // numeric properties in this workspace.
        let mag = rng.next_f64() * 10f64.powi((rng.next_u64() % 7) as i32);
        if rng.next_u64() & 1 == 0 {
            mag
        } else {
            -mag
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// Acceptable size arguments for [`vec()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_exclusive: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi_exclusive: r.end }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_exclusive: *r.end() + 1 }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let n = self.size.lo + (rng.next_u64() % span.max(1)) as usize;
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }
}

pub mod bool {
    use super::strategy::Strategy;
    use super::TestRng;

    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    pub const ANY: BoolAny = BoolAny;
}

pub mod option {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::fmt::Debug;

    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Some ~75% of the time, like upstream's default weight.
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

/// Drive one property: sample `cases` inputs, run the body, panic on
/// the first failure with the inputs and case seed attached.
pub fn run_cases<V>(
    config: &test_runner::Config,
    name: &str,
    sample: impl Fn(&mut TestRng) -> V,
    body: impl Fn(V) -> test_runner::TestCaseResult + std::panic::RefUnwindSafe,
) where
    V: Debug + std::panic::UnwindSafe,
{
    let mut rejected = 0u64;
    let mut case = 0u64;
    let max_rejects = 20 * config.cases as u64 + 100;
    let mut run = 0u32;
    while run < config.cases {
        // Per-case seed: deterministic, printable, independent of how
        // many draws earlier cases made.
        let seed = 0xC0FF_EE00_0000_0000u64 ^ (case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        case += 1;
        let mut rng = TestRng::new(seed);
        let value = sample(&mut rng);
        let desc = format!("{value:?}");
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(value))) {
            Ok(Ok(())) => run += 1,
            Ok(Err(test_runner::TestCaseError::Reject(_))) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!("property {name}: too many rejected cases ({rejected})");
                }
            }
            Ok(Err(test_runner::TestCaseError::Fail(msg))) => {
                panic!("property {name} failed: {msg}\n  case seed: {seed:#x}\n  inputs: {desc}");
            }
            Err(payload) => {
                eprintln!("property {name} panicked\n  case seed: {seed:#x}\n  inputs: {desc}");
                std::panic::resume_unwind(payload);
            }
        }
    }
}

/// The proptest entry point. Mirrors upstream syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0u64..10, v in collection::vec(any::<u8>(), 0..16)) { .. }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::run_cases(
                &__config,
                stringify!($name),
                |__rng| ($($crate::strategy::Strategy::sample(&($strat), __rng),)+),
                |($($pat,)+)| {
                    $body
                    Ok(())
                },
            );
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if __a != __b {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                __a,
                __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if __a != __b {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                __a,
                __b
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if __a == __b {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                __a
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union {
            options: vec![$($crate::strategy::Strategy::boxed($strat)),+],
        }
    };
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary,
    };

    pub mod prop {
        pub use crate::{bool, collection, option};
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_vecs(x in 1u64..100, v in crate::collection::vec(any::<u8>(), 0..32)) {
            prop_assert!((1..100).contains(&x));
            prop_assert!(v.len() < 32);
        }

        #[test]
        fn oneof_and_assume(dr in prop_oneof![Just(8usize), Just(16), Just(32)], y in 0u64..10) {
            prop_assume!(y > 0);
            prop_assert!(dr == 8 || dr == 16 || dr == 32);
            prop_assert_ne!(y, 0);
        }

        #[test]
        fn maps_compose(n in (1usize..8).prop_map(|v| v * 2)) {
            prop_assert_eq!(n % 2, 0);
        }
    }
}
