//! Offline stub of `parking_lot`: the non-poisoning `Mutex`/`RwLock`
//! API over `std::sync`. Poisoned locks are recovered transparently
//! (matching parking_lot's "no poisoning" semantics).

use std::fmt;

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        let rw = RwLock::new(5);
        assert_eq!(*rw.read(), 5);
        *rw.write() = 6;
        assert_eq!(rw.into_inner(), 6);
    }
}
