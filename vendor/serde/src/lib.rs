//! Offline stub of `serde`: marker traits plus no-op derives. Types
//! deriving these compile and link, but cannot actually round-trip —
//! `serde_json::to_string*` renders a placeholder for them and
//! `serde_json::from_str` always errors. The one real serializer lives
//! in the `serde_json` stub's `Value`, which overrides
//! [`Serialize::stub_render`].

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait emitted by the stub derive. `stub_render` returns the
/// JSON text for the few types that can really serialize (the
/// `serde_json::Value` tree); everything else falls back to `None` and
/// callers substitute a placeholder document.
pub trait Serialize {
    fn stub_render(&self, _pretty: bool) -> Option<String> {
        None
    }
}

/// Marker trait emitted by the stub derive; no stub type can actually
/// deserialize.
pub trait Deserialize: Sized {}

macro_rules! impl_markers {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl Deserialize for $t {}
    )*};
}
impl_markers!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool, String, char);

impl Serialize for str {}
impl<T: Serialize> Serialize for Vec<T> {}
impl<T: Deserialize> Deserialize for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<T: Deserialize> Deserialize for Option<T> {}
impl<T: Serialize + ?Sized> Serialize for &T {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {}
impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {}
impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {}
