//! Offline stub of `serde_json`. The [`Value`] tree, the [`json!`]
//! macro, and the (pretty-)printers are real — report writers that
//! build a `Value` produce genuine JSON. The *typed* paths are
//! placeholders: `to_string*` of a derived type renders a stub
//! document, and [`from_str`] always errors (callers must tolerate
//! that; see `vendor/README.md`).

use std::fmt;

pub use serde::Serialize;

/// A JSON document. Object keys keep insertion order (like serde_json
/// with `preserve_order`), which keeps hand-built reports readable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn object(entries: impl IntoIterator<Item = (String, Value)>) -> Value {
        Value::Object(entries.into_iter().collect())
    }

    fn write(&self, out: &mut String, pretty: bool, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => write_number(out, *n),
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => write_seq(out, pretty, indent, '[', ']', items, |v, o, i| {
                v.write(o, pretty, i);
            }),
            Value::Object(entries) => {
                write_seq(out, pretty, indent, '{', '}', entries, |(k, v), o, i| {
                    write_escaped(o, k);
                    o.push(':');
                    if pretty {
                        o.push(' ');
                    }
                    v.write(o, pretty, i);
                })
            }
        }
    }

    fn render(&self, pretty: bool) -> String {
        let mut out = String::new();
        self.write(&mut out, pretty, 0);
        out
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq<T>(
    out: &mut String,
    pretty: bool,
    indent: usize,
    open: char,
    close: char,
    items: &[T],
    mut each: impl FnMut(&T, &mut String, usize),
) {
    out.push(open);
    if items.is_empty() {
        out.push(close);
        return;
    }
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if pretty {
            out.push('\n');
            out.push_str(&"  ".repeat(indent + 1));
        }
        each(item, out, indent + 1);
    }
    if pretty {
        out.push('\n');
        out.push_str(&"  ".repeat(indent));
    }
    out.push(close);
}

impl serde::Serialize for Value {
    fn stub_render(&self, pretty: bool) -> Option<String> {
        Some(self.render(pretty))
    }
}

impl serde::Deserialize for Value {}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render(false))
    }
}

macro_rules! impl_from_num {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(v as f64) }
        }
    )*};
}
impl_from_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

/// Build a [`Value`] with JSON-ish syntax. Supports nested objects and
/// arrays, literals, and arbitrary Rust expressions as values.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($body:tt)* }) => {{
        #[allow(unused_mut, clippy::vec_init_then_push)]
        let mut entries: Vec<(String, $crate::Value)> = Vec::new();
        #[allow(clippy::vec_init_then_push)]
        {
            $crate::json_object_entries!(entries; $($body)*);
        }
        $crate::Value::Object(entries)
    }};
    ([ $($body:tt)* ]) => {{
        #[allow(unused_mut, clippy::vec_init_then_push)]
        let mut items: Vec<$crate::Value> = Vec::new();
        #[allow(clippy::vec_init_then_push)]
        {
            $crate::json_array_items!(items; $($body)*);
        }
        $crate::Value::Array(items)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_object_entries {
    ($out:ident;) => {};
    ($out:ident; $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $out.push(($key.to_string(), $crate::json!({ $($inner)* })));
        $($crate::json_object_entries!($out; $($rest)*);)?
    };
    ($out:ident; $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $out.push(($key.to_string(), $crate::json!([ $($inner)* ])));
        $($crate::json_object_entries!($out; $($rest)*);)?
    };
    ($out:ident; $key:literal : $val:expr $(, $($rest:tt)*)?) => {
        $out.push(($key.to_string(), $crate::Value::from($val)));
        $($crate::json_object_entries!($out; $($rest)*);)?
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_array_items {
    ($out:ident;) => {};
    ($out:ident; { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $out.push($crate::json!({ $($inner)* }));
        $($crate::json_array_items!($out; $($rest)*);)?
    };
    ($out:ident; [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $out.push($crate::json!([ $($inner)* ]));
        $($crate::json_array_items!($out; $($rest)*);)?
    };
    ($out:ident; $val:expr $(, $($rest:tt)*)?) => {
        $out.push($crate::Value::from($val));
        $($crate::json_array_items!($out; $($rest)*);)?
    };
}

/// The placeholder emitted for types the stub cannot serialize.
pub const STUB_PLACEHOLDER: &str =
    "{\"__serde_stub__\":\"offline stub build: typed serialization unavailable\"}";

/// Error type for the stub's always-failing typed paths.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.stub_render(false).unwrap_or_else(|| STUB_PLACEHOLDER.to_string()))
}

pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.stub_render(true).unwrap_or_else(|| STUB_PLACEHOLDER.to_string()))
}

pub fn from_str<T: serde::Deserialize>(_s: &str) -> Result<T, Error> {
    Err(Error { msg: "offline serde_json stub cannot deserialize".to_string() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_renders_real_documents() {
        let count = 3u64;
        let v = json!({
            "name": "storm",
            "nested": { "ratio": 2.5, "ok": true },
            "items": [1, 2, count],
            "derived": count * 2,
        });
        assert_eq!(
            v.to_string(),
            r#"{"name":"storm","nested":{"ratio":2.5,"ok":true},"items":[1,2,3],"derived":6}"#
        );
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"name\": \"storm\""));
    }

    #[test]
    fn typed_paths_are_placeholders() {
        #[derive(serde::Serialize, serde::Deserialize)]
        struct Thing {
            _x: u32,
        }
        let rendered = to_string_pretty(&Thing { _x: 1 }).unwrap();
        assert_eq!(rendered, STUB_PLACEHOLDER);
        assert!(from_str::<Thing>(&rendered).is_err());
    }
}
