//! Offline stub of `criterion`. Benchmarks compile and run: each
//! `bench_function` executes a handful of timed iterations and prints
//! a single mean-time line. There is no statistical analysis, no
//! warm-up tuning, and no HTML report — enough to keep `cargo test`
//! and ad-hoc `cargo bench` runs working without the real crate.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const STUB_ITERS: u64 = 10;

/// Measurement routine handle passed to benchmark closures.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..STUB_ITERS {
            black_box(routine());
        }
        self.total = start.elapsed();
        self.iters = STUB_ITERS;
    }

    pub fn iter_batched<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: F,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..STUB_ITERS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.total = total;
        self.iters = STUB_ITERS;
    }

    pub fn iter_batched_ref<I, O, S: FnMut() -> I, F: FnMut(&mut I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: F,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..STUB_ITERS {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            total += start.elapsed();
        }
        self.total = total;
        self.iters = STUB_ITERS;
    }
}

#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, group: name.to_string() }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        run_one(name.as_ref(), f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.group, name.as_ref()), f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    let mut b = Bencher { total: Duration::ZERO, iters: 1 };
    f(&mut b);
    let mean_ns = b.total.as_nanos() as f64 / b.iters.max(1) as f64;
    println!("bench {name}: {mean_ns:.0} ns/iter (stub, {} iters)", b.iters);
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("stub");
        g.throughput(Throughput::Bytes(1024));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn stub_group_runs() {
        benches();
    }
}
