//! Offline stub of the `rand` crate: the subset of the 0.8 API this
//! workspace uses, over a SplitMix64 core. Deterministic for a given
//! seed, but **not** stream-compatible with upstream `rand` — any
//! baseline derived from seeded draws differs from one produced against
//! the real crate.

use std::ops::{Range, RangeInclusive};

/// Seedable generators (stub: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// The uniform-draw surface used by this workspace.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p
    }

    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T)
    where
        Self: Sized,
    {
        dest.fill_with(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types drawable uniformly over their whole domain (`rng.gen::<T>()`).
pub trait Standard: Sized {
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for f32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_f64() as f32
    }
}

/// Ranges drawable with `gen_range`.
pub trait SampleRange<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + rng.next_f64() * (hi - lo)
    }
}

impl SampleRange<f32> for RangeInclusive<f32> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f32 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + (rng.next_f64() as f32) * (hi - lo)
    }
}

/// Slice types fillable by `Rng::fill`.
pub trait Fill {
    fn fill_with<R: Rng>(&mut self, rng: &mut R);
}

macro_rules! impl_fill_int {
    ($($t:ty),*) => {$(
        impl Fill for [$t] {
            fn fill_with<R: Rng>(&mut self, rng: &mut R) {
                for v in self.iter_mut() {
                    *v = rng.next_u64() as $t;
                }
            }
        }
    )*};
}
impl_fill_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// SplitMix64-backed stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        for _ in 0..1000 {
            let v: u8 = a.gen_range(1..=255u8);
            assert!(v >= 1);
            let w = a.gen_range(-512..512);
            assert!((-512..512).contains(&w));
            let f = a.gen_range(0.5f64..2.0);
            assert!((0.5..2.0).contains(&f));
            let u: f64 = a.gen();
            assert!((0.0..1.0).contains(&u));
        }
        let mut buf = [0u8; 64];
        a.fill(&mut buf[..]);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
